//! Replays the committed regression corpus through the full
//! differential toolchain.
//!
//! Every `tests/regressions/*.sm` file is a machine in
//! [`umlsm::gen`] text form plus a trailing `events ...` line. Each is
//! validated, then driven through [`bench::fuzz::check_full_chain`]:
//! the model interpreter oracle vs the `tlang` reference interpreter vs
//! compiled EM32 on both engines, every implementation pattern × every
//! optimization level. A machine lands here either as one of the five
//! re-serialized samples (the seed population, written by
//! `cargo run -p bench --bin fuzz -- emit-samples`) or as a shrunk
//! fuzz divergence promoted via `FUZZ_PROMOTE=1` — after the bug it
//! exposed was fixed. Replaying forever keeps it fixed.

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

#[test]
fn regression_corpus_replays_clean() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/regressions exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sm"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 5,
        "regression corpus unexpectedly small: {files:?}"
    );

    let mut cells = 0;
    for path in &files {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).expect("readable corpus file");
        let (machine, events) =
            bench::fuzz::parse_regression(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        machine
            .validate()
            .unwrap_or_else(|e| panic!("{name}: no longer validates: {e}"));
        cells += bench::fuzz::check_full_chain(&machine, &events)
            .unwrap_or_else(|e| panic!("{name}: regression came back: {e}"));
    }
    // 3 patterns × 4 levels per machine.
    assert_eq!(cells, files.len() * 12);
}

#[test]
fn corpus_files_are_shrink_stable_text() {
    // Re-serializing a parsed corpus machine must reproduce the exact
    // committed body — the corpus stays canonical under round-trips, so
    // a promoted finding never drifts when regenerated.
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/regressions exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "sm") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let (machine, _) =
            bench::fuzz::parse_regression(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let body = umlsm::gen::to_text(&machine).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            text.contains(&body),
            "{name}: committed text is not the canonical serialization"
        );
    }
}
