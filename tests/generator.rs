//! Cross-layer guarantees of the seeded machine generator
//! ([`umlsm::gen`]): determinism across runs and thread counts, and
//! that every generated machine clears the whole toolchain — validate,
//! the model interpreter, and code generation under every pattern.

use occ::driver::parallel_map;
use umlsm::gen::{self, GenConfig};

/// Fingerprint a machine by its canonical text form.
fn text_of(seed: u64, cfg: &GenConfig) -> String {
    gen::to_text(&gen::generate(seed, cfg)).expect("generated machines serialize")
}

#[test]
fn same_seed_and_knobs_is_byte_identical() {
    let cfg = GenConfig::default();
    for seed in [0, 1, 7, 0xdead_beef, u64::MAX] {
        assert_eq!(
            text_of(seed, &cfg),
            text_of(seed, &cfg),
            "seed {seed} not reproducible"
        );
    }
    // Different knobs are a different machine (the knobs are part of
    // the generator's identity, not a post-filter).
    assert_ne!(text_of(3, &cfg), text_of(3, &GenConfig::tiny()));
}

#[test]
fn generation_is_identical_across_thread_counts() {
    let cfg = GenConfig::default();
    let seeds: Vec<u64> = (0..24).collect();
    let serial = parallel_map(&seeds, 1, |s| text_of(*s, &cfg));
    let wide = parallel_map(&seeds, 4, |s| text_of(*s, &cfg));
    assert_eq!(serial, wide, "generator output depends on thread count");
}

#[test]
fn generated_machines_clear_the_whole_front_end() {
    let cfg = GenConfig::default();
    for seed in 0..40u64 {
        let machine = gen::generate(seed, &cfg);
        machine
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: validate: {e}"));

        // The model interpreter boots and survives one alphabet pass.
        let mut interp = umlsm::Interp::new(&machine)
            .unwrap_or_else(|e| panic!("seed {seed}: interp boot: {e:?}"));
        let events: Vec<String> = machine.events().map(|(_, e)| e.name.clone()).collect();
        for e in &events {
            interp
                .step_by_name(e)
                .unwrap_or_else(|e2| panic!("seed {seed}: step {e}: {e2:?}"));
        }

        // Every implementation pattern generates code for it.
        for pattern in cgen::Pattern::all() {
            cgen::generate(&machine, pattern)
                .unwrap_or_else(|e| panic!("seed {seed}: cgen {pattern}: {e}"));
        }
    }
}

#[test]
fn text_form_is_a_fixpoint() {
    let cfg = GenConfig::default();
    for seed in 0..20u64 {
        let machine = gen::generate(seed, &cfg);
        let text = gen::to_text(&machine).expect("serializes");
        let reparsed = gen::from_text(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let again = gen::to_text(&reparsed).expect("re-serializes");
        assert_eq!(text, again, "seed {seed}: text form not a fixpoint");
    }
}
