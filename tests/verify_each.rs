//! Whole-matrix verify-each plus a mutation smoke test of the
//! [`occ::verify`] static checker.
//!
//! The first test drives every bench cell — 4 sample machines × 3
//! implementation patterns × 4 optimization levels, the exact matrix the
//! paper's tables measure — through the mid-end with per-pass
//! verification forced on ([`occ::opt::run_pipeline_with_verify`]), so a
//! pass that breaks an SSA or memory invariant on *real* generated
//! state-machine code fails here with the pass and round named, not as
//! an unexplained trace divergence three passes later.
//!
//! The second test goes the other way: it randomly corrupts valid
//! SSA-form MIR from the same matrix (seeded, deterministic) in ways
//! that are violations *by construction* and checks the verifier
//! actually reports the expected [`occ::verify::Rule`] — the smoke test
//! that the checker has no blind spots for the corruption shapes the
//! negative unit table covers one by one.

use std::collections::BTreeSet;

use cgen::Pattern;
use occ::mir::{BlockId, Inst, MirFunction, Term, VReg};
use occ::opt::{self, VerifyMode};
use occ::verify::{self, Rule, Tier};
use occ::{lower, ssa, OptLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use umlsm::{samples, StateMachine};

fn machines() -> Vec<StateMachine> {
    vec![
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
        samples::cruise_control(),
        samples::protocol_handler(),
    ]
}

/// Every machine × pattern × level cell of the bench matrix optimizes
/// cleanly under verify-each. In debug builds the pipeline hooks check
/// after every pass; the explicit final check below also covers release
/// runs (where in-pipeline verification is compiled out).
#[test]
fn bench_matrix_is_clean_under_verify_each() {
    for machine in machines() {
        for pattern in Pattern::all() {
            let generated = cgen::generate(&machine, pattern).expect("generates");
            generated.module.check().expect("checks");
            let program = lower::lower_module(&generated.module).expect("lowers");
            for level in OptLevel::all() {
                let mut p = program.clone();
                opt::run_pipeline_with_verify(&mut p, level, VerifyMode::Each);
                let vs = verify::verify_program(&p, Tier::PhiFree);
                assert!(
                    vs.is_empty(),
                    "{} / {pattern} / {level}:{}",
                    machine.name(),
                    verify::report(&vs)
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Mutation smoke test
// ---------------------------------------------------------------------

/// Retargets one block's terminator past the last block. Always yields
/// `target-out-of-range` when the block has successors.
fn corrupt_goto_out_of_range(f: &mut MirFunction, rng: &mut StdRng) -> Option<Rule> {
    let b = BlockId(rng.gen_range(0..f.blocks.len() as u32));
    if f.block(b).term.succs().is_empty() {
        return None;
    }
    let bogus = BlockId(f.blocks.len() as u32 + 7);
    f.block_mut(b).term = Term::Goto(bogus);
    Some(Rule::TargetOutOfRange)
}

/// Rewrites one instruction operand to a register that is defined
/// nowhere (and is out of `next_vreg` range on top).
fn corrupt_operand(f: &mut MirFunction, rng: &mut StdRng) -> Option<Rule> {
    let bogus = VReg(f.next_vreg + 100);
    let mut candidates: Vec<(BlockId, usize)> = Vec::new();
    for b in f.block_ids() {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if !inst.uses().is_empty() {
                candidates.push((b, i));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (b, i) = candidates[rng.gen_range(0..candidates.len())];
    let mut first = true;
    f.block_mut(b).insts[i].map_uses(&mut |v| {
        if std::mem::take(&mut first) {
            bogus
        } else {
            v
        }
    });
    Some(Rule::UndefinedUse)
}

/// Makes a second instruction redefine an already-defined register —
/// fatal in SSA form.
fn corrupt_double_def(f: &mut MirFunction, rng: &mut StdRng) -> Option<Rule> {
    let mut defs: Vec<(BlockId, usize)> = Vec::new();
    for b in f.block_ids() {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if inst.def().is_some() {
                defs.push((b, i));
            }
        }
    }
    if defs.len() < 2 {
        return None;
    }
    let first = rng.gen_range(0..defs.len());
    let second = (first + 1 + rng.gen_range(0..defs.len() - 1)) % defs.len();
    let (fb, fi) = defs[first];
    let reg = f.block(fb).insts[fi].def().expect("filtered on def");
    let (sb, si) = defs[second];
    *f.block_mut(sb).insts[si]
        .def_mut()
        .expect("filtered on def") = reg;
    Some(Rule::MultipleDefs)
}

/// Retargets one φ-argument at a block that is not a predecessor of the
/// join.
fn corrupt_phi_pred(f: &mut MirFunction, rng: &mut StdRng) -> Option<Rule> {
    let mut phis: Vec<(BlockId, usize)> = Vec::new();
    for b in f.block_ids() {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if matches!(inst, Inst::Phi { .. }) {
                phis.push((b, i));
            }
        }
    }
    if phis.is_empty() {
        return None;
    }
    let (b, i) = phis[rng.gen_range(0..phis.len())];
    let Inst::Phi { args, .. } = &f.block(b).insts[i] else {
        unreachable!("filtered on Phi");
    };
    let preds: BTreeSet<BlockId> = args.iter().map(|(p, _)| *p).collect();
    let non_pred = f.block_ids().find(|c| !preds.contains(c))?;
    let slot = rng.gen_range(0..args.len());
    let Inst::Phi { args, .. } = &mut f.block_mut(b).insts[i] else {
        unreachable!("filtered on Phi");
    };
    args[slot].0 = non_pred;
    Some(Rule::PhiPredMismatch)
}

/// Points one block's terminator back at the entry block, which must
/// have no predecessors.
fn corrupt_entry_edge(f: &mut MirFunction, rng: &mut StdRng) -> Option<Rule> {
    let b = BlockId(rng.gen_range(0..f.blocks.len() as u32));
    f.block_mut(b).term = Term::Goto(BlockId(0));
    Some(Rule::EntryHasPred)
}

/// Seeded random corruptions of valid SSA snapshots from the bench
/// matrix: the verifier must flag each one with the rule the corruption
/// was built to break.
#[test]
fn mutation_smoke_verifier_catches_random_corruptions() {
    let machine = samples::cruise_control();
    let generated = cgen::generate(&machine, Pattern::all()[0]).expect("generates");
    generated.module.check().expect("checks");
    let program = lower::lower_module(&generated.module).expect("lowers");
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut hits = 0;
    for _ in 0..96 {
        let fi = rng.gen_range(0..program.functions.len());
        let mut f = program.functions[fi].clone();
        opt::simplify_cfg(&mut f);
        ssa::construct(&mut f);
        let expected = match rng.gen_range(0..5) {
            0 => corrupt_goto_out_of_range(&mut f, &mut rng),
            1 => corrupt_operand(&mut f, &mut rng),
            2 => corrupt_double_def(&mut f, &mut rng),
            3 => corrupt_phi_pred(&mut f, &mut rng),
            _ => corrupt_entry_edge(&mut f, &mut rng),
        };
        // Not every corruption applies to every function (a φ retarget
        // needs a φ); skipped draws don't count as coverage.
        let Some(expected) = expected else { continue };
        let vs = verify::verify_function(&f, Tier::Ssa);
        assert!(
            vs.iter().any(|v| v.rule == expected),
            "corruption expected {expected:?}, verifier reported:{}\n{f}",
            verify::report(&vs)
        );
        hits += 1;
    }
    assert!(
        hits >= 48,
        "mutation smoke exercised too few corruptions: {hits}"
    );
}
