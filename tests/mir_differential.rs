//! Differential tests of the mid-end at the MIR level: randomly built MIR
//! programs — duplicated pure expressions (GVN/CSE fodder), branches and
//! switches with shared or all-equal targets (terminator-folding fodder),
//! latch-guarded back edges (loop fodder for SCCP's executable-edge
//! analysis and LICM's preheader insertion), and `Load`/`Store`/`Addr`
//! mixes over overlapping and disjoint cells of mutable and rodata
//! globals (memory-pass fodder: stores landing in loop bodies, and
//! store/load mixes *across* block boundaries — cross-block forwarding
//! and load-PRE fodder) — must produce the same EM32 extern-call trace
//! at `-O1`/`-O2`/`-Os` as at `-O0`, and under each new pass applied in
//! isolation.
//!
//! Every load's value is emitted through the `emit` extern, so a memory
//! pass that forwards, removes or hoists the wrong thing changes the
//! observable trace. Addresses respect the alias model's in-object
//! contract (offsets stay inside their global; the one run-time index is
//! masked in-bounds), exactly as front-end-lowered code does.
//!
//! The same corpus also holds the two EM32 execution engines to the
//! [`occ::vm`] contract: fast engine and reference oracle must agree on
//! result, extern trace and executed-instruction count at every level,
//! including runs truncated by the fuel budget (identical `OutOfFuel`
//! faults and trace prefixes).
//!
//! The property depth is CI-tunable: `MIR_DIFF_CASES=<n>` overrides the
//! per-property case count (default 96), so the full `ci.sh` gate runs
//! the net deeper than a local `--fast` iteration.
//!
//! In debug builds every property additionally runs the [`occ::verify`]
//! static checker in verify-each mode (forced via
//! [`opt::run_pipeline_with_verify`], independent of the `OCC_VERIFY`
//! knob): a broken invariant panics with the offending pass and round,
//! and proptest then prints the generated program that provoked it — a
//! violation is attributed to a pass *and* to a reproducer case.

use proptest::prelude::*;

use occ::mem::MemoryModel;
use occ::mir::{BinOp, Block, GlobalData, Inst, MirFunction, Program, Term, VReg, Word};
use occ::vm::{DecodedProgram, FastVm, Vm};
use occ::{opt, ssa, verify, OptLevel};
use tlang::RecordingEnv;

/// Per-property case count: `MIR_DIFF_CASES` when set (CI's full gate
/// raises it), 96 otherwise.
fn cases() -> u32 {
    std::env::var("MIR_DIFF_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(96)
}

const BIN_OPS: [BinOp; 14] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

/// Builds a terminating single-function program.
///
/// * Block 0 defines constants, then every op of `ops` **twice** — the
///   duplicates are exactly what GVN/CSE must collapse without changing
///   the trace — and an address pool over three globals (two mutable,
///   one rodata): exact cells that overlap through distinct expressions
///   (`&m0+4` vs `Addr(m0,4)`), disjoint cells, an unaligned cell whose
///   word straddles two aligned ones (sub-word overlap), and one masked
///   run-time index (`&m0 + (v & 12)`), so every [`occ::mem::AddrInfo`]
///   shape is live.
/// * Every block emits its id and a computed value through the `emit`
///   extern, so both the path taken and the values computed are
///   observable. A block's fourth tuple byte may add memory traffic —
///   stores, loads (always emitted), store-then-reload (forwarding
///   fodder), double stores (dead-store fodder), double loads
///   (redundant-load fodder) — which lands inside loop bodies whenever
///   the block is on a cycle.
/// * `pressure > 0` appends a register-pressure cluster to block 0:
///   `pressure` distinct values derived from a load of mutable data (so
///   no level can constant-fold them away), then an extern call, then an
///   emit of every value — all `pressure + 1` values are simultaneously
///   live across the call, driving the allocator's callee-saved
///   save/restore and spill/reload paths.
/// * Non-final terminators cycle through `Goto`, an ordinary `Br`, a
///   `Br` with equal arms, a `Switch` (sometimes with all-equal
///   targets) — the terminator-folding pass must collapse the redundant
///   ones without changing the trace — and a **latch**: a back edge
///   guarded by a shared countdown register, so loops (headers with φs,
///   back edges into the GVN scope, threadable latches) are exercised
///   too. Every cycle passes through a latch and every latch decrements
///   the countdown, so all programs terminate.
fn build_program(
    consts: &[i32],
    ops: &[(u8, u8, u8)],
    blocks: &[(u8, u8, u8, u8)],
    pressure: u8,
) -> Program {
    let nb = blocks.len().max(1);
    let mut defined: Vec<VReg> = Vec::new();
    let mut next = 0u32;
    let mut fresh = || {
        let v = VReg(next);
        next += 1;
        v
    };

    // Block 0: loop budget + constants + duplicated expression chain.
    let mut entry = Vec::new();
    let counter = fresh();
    let zero = fresh();
    let one = fresh();
    entry.push(Inst::Const {
        dst: counter,
        value: 1 + (consts.len() as i32 % 5),
    });
    entry.push(Inst::Const {
        dst: zero,
        value: 0,
    });
    entry.push(Inst::Const { dst: one, value: 1 });
    for &c in consts {
        let dst = fresh();
        entry.push(Inst::Const { dst, value: c });
        defined.push(dst);
    }
    for &(op, a, b) in ops {
        let op = BIN_OPS[op as usize % BIN_OPS.len()];
        let lhs = defined[a as usize % defined.len()];
        let rhs = defined[b as usize % defined.len()];
        for _ in 0..2 {
            let dst = fresh();
            entry.push(Inst::Bin { op, dst, lhs, rhs });
            defined.push(dst);
        }
    }

    // Address pool. Stores go to mutable roots only (the type system
    // would reject a store to `const` data); loads read everything.
    let mut addr = |entry: &mut Vec<Inst>, global: usize, offset: i32| {
        let dst = fresh();
        entry.push(Inst::Addr {
            dst,
            global,
            offset,
        });
        dst
    };
    let m0_0 = addr(&mut entry, 0, 0);
    let m0_4 = addr(&mut entry, 0, 4);
    let m0_8 = addr(&mut entry, 0, 8);
    // Unaligned: the word at bytes [2, 6) straddles the two cells above,
    // exercising the sub-word overlap rule of the alias model.
    let m0_2 = addr(&mut entry, 0, 2);
    let m1_0 = addr(&mut entry, 1, 0);
    let m1_4 = addr(&mut entry, 1, 4);
    let ro_0 = addr(&mut entry, 2, 0);
    let ro_4 = addr(&mut entry, 2, 4);
    // &m0 + 4: the same cell as `m0_4` through a different expression.
    let m0_4b = {
        let four = fresh();
        entry.push(Inst::Const {
            dst: four,
            value: 4,
        });
        let dst = fresh();
        entry.push(Inst::Bin {
            op: BinOp::Add,
            dst,
            lhs: m0_0,
            rhs: four,
        });
        dst
    };
    // &m0 + (v & 12): a rooted run-time index, masked in-bounds.
    let m0_dyn = {
        let mask = fresh();
        entry.push(Inst::Const {
            dst: mask,
            value: 12,
        });
        let masked = fresh();
        entry.push(Inst::Bin {
            op: BinOp::And,
            dst: masked,
            lhs: defined[0],
            rhs: mask,
        });
        let dst = fresh();
        entry.push(Inst::Bin {
            op: BinOp::Add,
            dst,
            lhs: m0_0,
            rhs: masked,
        });
        dst
    };
    let store_pool = [m0_0, m0_4, m0_8, m0_2, m0_4b, m1_0, m1_4, m0_dyn];
    let load_pool = [
        m0_0, m0_4, m0_8, m0_2, m0_4b, m1_0, m1_4, m0_dyn, ro_0, ro_4,
    ];

    // Register-pressure cluster: `pressure` distinct values, all derived
    // from a load of a *mutable* global (so no optimization level can
    // fold them to constants), then an extern call, then an emit of every
    // value. Everything in the cluster is live across the call, so the
    // allocator must combine callee-saved registers and spill slots —
    // and every reload is observable in the trace.
    if pressure > 0 {
        let base = fresh();
        entry.push(Inst::Load {
            dst: base,
            addr: m0_0,
        });
        let mut cluster = Vec::new();
        for k in 0..pressure as i32 {
            let c = fresh();
            entry.push(Inst::Const {
                dst: c,
                value: k + 1,
            });
            let v = fresh();
            entry.push(Inst::Bin {
                op: BinOp::Add,
                dst: v,
                lhs: base,
                rhs: c,
            });
            cluster.push(v);
        }
        let barrier_tag = fresh();
        entry.push(Inst::Const {
            dst: barrier_tag,
            value: 990,
        });
        entry.push(Inst::CallExtern {
            dst: None,
            ext: 0,
            args: vec![barrier_tag, base],
        });
        for (k, &v) in cluster.iter().enumerate() {
            let tag = fresh();
            entry.push(Inst::Const {
                dst: tag,
                value: 900 + k as i32,
            });
            entry.push(Inst::CallExtern {
                dst: None,
                ext: 0,
                args: vec![tag, v],
            });
        }
    }

    let mut mir_blocks: Vec<Block> = Vec::new();
    for (i, &(kind, x, y, m)) in blocks.iter().enumerate() {
        let mut insts = if i == 0 {
            std::mem::take(&mut entry)
        } else {
            Vec::new()
        };
        // Observable: emit(block id, some computed value).
        let marker = fresh();
        insts.push(Inst::Const {
            dst: marker,
            value: i as i32,
        });
        let value = defined[x as usize % defined.len()];
        insts.push(Inst::CallExtern {
            dst: None,
            ext: 0,
            args: vec![marker, value],
        });
        // Memory traffic: every loaded value is emitted, so forwarding,
        // dead-store and hoisting mistakes surface in the trace.
        let sel = (m / 8) as usize;
        let store_at = store_pool[sel % store_pool.len()];
        let load_at = load_pool[sel % load_pool.len()];
        let mut emit_load = |insts: &mut Vec<Inst>, tag: i32, at: VReg| {
            let dst = fresh();
            insts.push(Inst::Load { dst, addr: at });
            let mk = fresh();
            insts.push(Inst::Const {
                dst: mk,
                value: tag,
            });
            insts.push(Inst::CallExtern {
                dst: None,
                ext: 0,
                args: vec![mk, dst],
            });
            dst
        };
        match m % 8 {
            3 => {
                insts.push(Inst::Store {
                    addr: store_at,
                    src: defined[y as usize % defined.len()],
                });
            }
            4 => {
                emit_load(&mut insts, 100 + i as i32, load_at);
            }
            5 => {
                // Store then reload the same cell: forwarding fodder.
                insts.push(Inst::Store {
                    addr: store_at,
                    src: defined[y as usize % defined.len()],
                });
                emit_load(&mut insts, 100 + i as i32, store_at);
            }
            6 => {
                // Overwrite before any read: dead-store fodder.
                insts.push(Inst::Store {
                    addr: store_at,
                    src: defined[x as usize % defined.len()],
                });
                insts.push(Inst::Store {
                    addr: store_at,
                    src: defined[y as usize % defined.len()],
                });
                emit_load(&mut insts, 100 + i as i32, store_at);
            }
            7 => {
                // Load the same cell twice: redundant-load fodder.
                emit_load(&mut insts, 100 + i as i32, load_at);
                emit_load(&mut insts, 200 + i as i32, load_at);
            }
            _ => {}
        }
        let term = if i + 1 >= nb {
            Term::Ret(None)
        } else {
            let pick = |sel: u8| occ::mir::BlockId((i + 1 + (sel as usize) % (nb - 1 - i)) as u32);
            match kind % 5 {
                0 => Term::Goto(pick(x)),
                1 => Term::Br {
                    cond: defined[y as usize % defined.len()],
                    then_block: pick(x),
                    else_block: pick(y),
                },
                2 => Term::Br {
                    cond: defined[y as usize % defined.len()],
                    then_block: pick(x),
                    else_block: pick(x),
                },
                3 => {
                    let d = pick(y);
                    let all_equal = x % 2 == 0;
                    let case_target = |sel: u8| if all_equal { d } else { pick(sel) };
                    Term::Switch {
                        val: defined[x as usize % defined.len()],
                        cases: vec![
                            (0, case_target(x)),
                            (1, case_target(y)),
                            (2, case_target(x.wrapping_add(y))),
                        ],
                        default: d,
                    }
                }
                _ if i == 0 => Term::Goto(pick(x)),
                _ => {
                    // Latch: counter -= 1; if counter > 0 jump back. Back
                    // targets start at block 1 — jumping back into the
                    // entry would re-initialize the countdown and loop
                    // forever.
                    insts.push(Inst::Bin {
                        op: BinOp::Sub,
                        dst: counter,
                        lhs: counter,
                        rhs: one,
                    });
                    let again = fresh();
                    insts.push(Inst::Bin {
                        op: BinOp::Gt,
                        dst: again,
                        lhs: counter,
                        rhs: zero,
                    });
                    Term::Br {
                        cond: again,
                        then_block: occ::mir::BlockId((1 + x as usize % i) as u32),
                        else_block: pick(y),
                    }
                }
            }
        };
        mir_blocks.push(Block { insts, term });
    }

    Program {
        functions: vec![MirFunction {
            name: "main".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: mir_blocks,
            next_vreg: next,
        }],
        globals: vec![
            GlobalData {
                name: "m0".into(),
                size: 16,
                words: vec![Word::Int(1), Word::Int(2), Word::Int(3), Word::Int(4)],
                mutable: true,
            },
            GlobalData {
                name: "m1".into(),
                size: 8,
                words: vec![Word::Int(5), Word::Int(6)],
                mutable: true,
            },
            GlobalData {
                name: "ro".into(),
                size: 8,
                words: vec![Word::Int(7), Word::Int(11)],
                mutable: false,
            },
        ],
        externs: vec!["emit".into()],
    }
}

/// Runs `program` through the mid-end at `level`, compiles it, executes it
/// on the EM32 VM and returns the extern-call trace.
fn trace_at(program: &Program, level: OptLevel) -> Vec<(String, Vec<i32>)> {
    let mut p = program.clone();
    opt::run_pipeline_with_verify(&mut p, level, opt::VerifyMode::Each);
    let asm = occ::backend::compile_program(&p, level).expect("compiles");
    let mut vm = Vm::new(&asm, RecordingEnv::new());
    vm.run("main", &[]).expect("runs");
    vm.into_env().calls
}

/// Applies exactly the given SSA passes (plus the SSA round trip) and
/// returns the resulting trace at `-O0` code generation.
fn trace_with_passes(program: &Program, passes: &[opt::SsaPass]) -> Vec<(String, Vec<i32>)> {
    let mut p = program.clone();
    let model = MemoryModel::of(&p);
    for f in &mut p.functions {
        opt::simplify_cfg(f);
        ssa::construct(f);
        for (i, pass) in passes.iter().enumerate() {
            pass(f, &model);
            if cfg!(debug_assertions) {
                let mut vs = verify::verify_function(f, verify::Tier::Ssa);
                vs.extend(verify::verify_memory(f, &model));
                assert!(
                    vs.is_empty(),
                    "pass #{i} broke an invariant in `{}`:{}",
                    f.name,
                    verify::report(&vs)
                );
            }
        }
        ssa::destruct(f);
        opt::simplify_cfg(f);
    }
    let asm = occ::backend::compile_program(&p, OptLevel::O0).expect("compiles");
    let mut vm = Vm::new(&asm, RecordingEnv::new());
    vm.run("main", &[]).expect("runs");
    vm.into_env().calls
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The whole pipeline preserves the trace at every level.
    #[test]
    fn pipeline_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..6),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        prop_assert!(!oracle.is_empty(), "every program emits at least once");
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::Os] {
            let got = trace_at(&program, level);
            prop_assert_eq!(&got, &oracle, "{} diverges from -O0", level);
        }
    }

    /// High register pressure across a call preserves the trace at every
    /// level: the pressure cluster keeps ≥ 10 unfoldable values
    /// simultaneously live across a `CallExtern`, so the allocator's
    /// callee-saved selection, spill-slot assignment and reload insertion
    /// all land on the execution path — any misplaced spill or clobbered
    /// register changes the emitted values.
    #[test]
    fn register_pressure_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
        pressure in 10u8..16,
    ) {
        let program = build_program(&consts, &ops, &blocks, pressure);
        let oracle = trace_at(&program, OptLevel::O0);
        prop_assert!(!oracle.is_empty(), "every program emits at least once");
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::Os] {
            let got = trace_at(&program, level);
            prop_assert_eq!(&got, &oracle, "{} diverges from -O0 under pressure", level);
        }
    }

    /// GVN/CSE alone preserves the trace.
    #[test]
    fn gvn_cse_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..6),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::gvn_cse]);
        prop_assert_eq!(&got, &oracle, "gvn_cse diverges");
        // With cleanup passes stacked on top it still agrees.
        let cleaned = trace_with_passes(
            &program,
            &[opt::gvn_cse, opt::copy_propagate, opt::dead_code_elim],
        );
        prop_assert_eq!(&cleaned, &oracle, "gvn_cse + cleanup diverges");
    }

    /// Terminator folding / jump threading alone preserves the trace.
    #[test]
    fn fold_terminators_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 2..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::fold_terminators]);
        prop_assert_eq!(&got, &oracle, "fold_terminators diverges");
        let cleaned = trace_with_passes(
            &program,
            &[opt::fold_terminators, opt::dead_code_elim],
        );
        prop_assert_eq!(&cleaned, &oracle, "fold_terminators + dce diverges");
    }

    /// SCCP alone preserves the trace — the generated programs fold
    /// entirely to constants (all leaves are `Const`s), so this drives
    /// the executable-edge analysis through every terminator shape,
    /// including back edges.
    #[test]
    fn sccp_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..6),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::sccp]);
        prop_assert_eq!(&got, &oracle, "sccp diverges");
        let cleaned = trace_with_passes(
            &program,
            &[opt::sccp, opt::dead_code_elim],
        );
        prop_assert_eq!(&cleaned, &oracle, "sccp + dce diverges");
    }

    /// LICM alone preserves the trace — the latch-guarded back edges of
    /// `build_program` give it headers with φs, multi-entry headers after
    /// branchy prefixes, and loop bodies full of movable pure ops.
    #[test]
    fn licm_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..6),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 2..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::licm]);
        prop_assert_eq!(&got, &oracle, "licm diverges");
        let cleaned = trace_with_passes(
            &program,
            &[opt::licm, opt::gvn_cse, opt::copy_propagate, opt::dead_code_elim],
        );
        prop_assert_eq!(&cleaned, &oracle, "licm + cleanup diverges");
    }

    /// The φ-free copy coalescer and return-block merger preserve the
    /// trace when stacked on the SSA round trip (they run post-destruct
    /// in the real pipeline; `trace_with_passes` destructs afterwards,
    /// which also proves they tolerate SSA form).
    #[test]
    fn phi_free_cleanups_preserve_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 2..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::coalesce_copies]);
        prop_assert_eq!(&got, &oracle, "coalesce_copies diverges");
        let merged = trace_with_passes(&program, &[opt::merge_return_blocks]);
        prop_assert_eq!(&merged, &oracle, "merge_return_blocks diverges");
    }

    /// Store-to-load forwarding / redundant-load elimination alone
    /// preserves the trace — the memory blocks store and reload
    /// overlapping cells through distinct address expressions, so the
    /// alias resolution (exact cells, rooted run-time indices, rodata)
    /// is what is on trial here.
    #[test]
    fn store_load_forward_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::store_load_forward]);
        prop_assert_eq!(&got, &oracle, "store_load_forward diverges");
        let cleaned = trace_with_passes(
            &program,
            &[opt::store_load_forward, opt::copy_propagate, opt::dead_code_elim],
        );
        prop_assert_eq!(&cleaned, &oracle, "store_load_forward + cleanup diverges");
    }

    /// Dead-store elimination alone preserves the trace — the
    /// double-store blocks are its fodder; every cell's final content is
    /// observed through emitted loads.
    #[test]
    fn dead_store_elim_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::dead_store_elim]);
        prop_assert_eq!(&got, &oracle, "dead_store_elim diverges");
        let cleaned = trace_with_passes(
            &program,
            &[opt::dead_store_elim, opt::dead_code_elim],
        );
        prop_assert_eq!(&cleaned, &oracle, "dead_store_elim + dce diverges");
    }

    /// Cross-block store-to-load forwarding alone preserves the trace —
    /// the generated blocks store and reload overlapping cells across
    /// branch, switch and latch edges, so the availability dataflow
    /// (loop-transparent cells included) and the φ threading at joins
    /// are what is on trial here.
    #[test]
    fn cross_block_forward_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::cross_block_forward]);
        prop_assert_eq!(&got, &oracle, "cross_block_forward diverges");
        let cleaned = trace_with_passes(
            &program,
            &[opt::cross_block_forward, opt::copy_propagate, opt::dead_code_elim],
        );
        prop_assert_eq!(&cleaned, &oracle, "cross_block_forward + cleanup diverges");
    }

    /// Load partial-redundancy elimination alone preserves the trace —
    /// its speculative compensating loads must read the same cell the
    /// deleted join load would have, on every path.
    #[test]
    fn load_pre_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 2..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(&program, &[opt::load_pre]);
        prop_assert_eq!(&got, &oracle, "load_pre diverges");
        // PRE makes the join load fully redundant; cross-block forwarding
        // stacked on top must agree too.
        let stacked = trace_with_passes(
            &program,
            &[opt::load_pre, opt::cross_block_forward, opt::dead_code_elim],
        );
        prop_assert_eq!(&stacked, &oracle, "load_pre + cross_block_forward diverges");
    }

    /// The whole memory family stacked — load-hoisting LICM over blocks
    /// whose loops store to the very globals being read, then block-local
    /// and cross-block forwarding, PRE and dead-store elimination, then
    /// cleanup — preserves the trace.
    #[test]
    fn memory_pass_family_preserves_em32_trace(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 2..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        let oracle = trace_at(&program, OptLevel::O0);
        let got = trace_with_passes(
            &program,
            &[
                opt::licm,
                opt::store_load_forward,
                opt::cross_block_forward,
                opt::load_pre,
                opt::dead_store_elim,
                opt::gvn_cse,
                opt::copy_propagate,
                opt::dead_code_elim,
            ],
        );
        prop_assert_eq!(&got, &oracle, "memory pass family diverges");
    }

    /// The two EM32 execution engines agree on every generated program at
    /// every level — the [`occ::vm`] two-engine contract under the same
    /// corpus that exercises the mid-end. The fast engine's pre-decode
    /// (branch pre-resolution, superinstruction fusion, `r0`-write
    /// erasure) must be invisible: same return value, same extern-call
    /// trace, same executed-instruction count. And it must stay invisible
    /// when the fuel budget truncates the run mid-way: both engines fault
    /// with `OutOfFuel` at the same instruction boundary — probe points
    /// land inside fused pairs, where the fast engine re-checks fuel
    /// between the two halves — with identical trace prefixes.
    #[test]
    fn engines_agree_on_generated_mir(
        consts in prop::collection::vec(-8i32..8, 2..5),
        ops in prop::collection::vec((0u8..14, any::<u8>(), any::<u8>()), 1..4),
        blocks in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let program = build_program(&consts, &ops, &blocks, 0);
        for level in OptLevel::all() {
            let mut p = program.clone();
            opt::run_pipeline_with_verify(&mut p, level, opt::VerifyMode::Each);
            let asm = occ::backend::compile_program(&p, level).expect("compiles");
            let decoded = DecodedProgram::decode(&asm).expect("decodes");

            let mut oracle = Vm::new(&asm, RecordingEnv::new());
            let want = oracle.run("main", &[]);
            prop_assert!(want.is_ok(), "{} oracle faults: {:?}", level, want);
            let total = oracle.executed();
            let mut fast = FastVm::new(&decoded, RecordingEnv::new());
            let got = fast.run("main", &[]);
            prop_assert_eq!(&got, &want, "{} engines disagree on result", level);
            prop_assert_eq!(
                fast.executed(),
                total,
                "{} executed-instruction counts diverge",
                level
            );
            prop_assert_eq!(
                fast.into_env().calls,
                oracle.into_env().calls,
                "{} extern traces diverge",
                level
            );

            // Truncated budgets: both engines must exhaust the budget at
            // the same instruction, with identical trace prefixes.
            for budget in [0, 1, total / 3, total / 2, total - 1] {
                let mut oracle = Vm::new(&asm, RecordingEnv::new()).with_fuel(budget);
                let want = oracle.run("main", &[]);
                prop_assert_eq!(
                    &want,
                    &Err(occ::vm::VmError::OutOfFuel),
                    "{} oracle should run out at budget {}",
                    level,
                    budget
                );
                let mut fast = FastVm::new(&decoded, RecordingEnv::new()).with_fuel(budget);
                let got = fast.run("main", &[]);
                prop_assert_eq!(&got, &want, "{} fault kinds diverge at budget {}", level, budget);
                prop_assert_eq!(
                    fast.executed(),
                    oracle.executed(),
                    "{} truncated counts diverge at budget {}",
                    level,
                    budget
                );
                prop_assert_eq!(
                    fast.into_env().calls,
                    oracle.into_env().calls,
                    "{} truncated traces diverge at budget {}",
                    level,
                    budget
                );
            }
        }
    }
}

/// The env knob parses and has the documented default.
#[test]
fn mir_diff_cases_env_default() {
    if std::env::var("MIR_DIFF_CASES").is_err() {
        assert_eq!(cases(), 96);
    } else {
        assert!(cases() > 0, "MIR_DIFF_CASES must parse to a positive count");
    }
}
