//! Smoke test: every example must build, run to completion and exit 0.
//!
//! The examples double as end-to-end documentation of the toolchain
//! (model → optimizer → codegen → compiler → VM); a panic or non-zero
//! exit in any of them means a user-visible flow is broken even if the
//! unit tests pass.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "cruise_control",
    "protocol_handler",
    "pattern_shootout",
];

#[test]
fn all_examples_exit_zero() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    // `cargo test` has already released the build lock by the time tests
    // run, so nested cargo invocations are safe; they reuse the build
    // cache from the enclosing `cargo test`/`cargo build`.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
