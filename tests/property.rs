//! Property-based tests of the core invariants:
//!
//! * guard-expression constant folding never changes evaluation results,
//! * model optimization preserves observable traces on *random* machines,
//! * generated + compiled code matches the model on random event sequences.

use proptest::prelude::*;

use cgen::Pattern;
use mbo::equivalence::{check_trace_equivalence, EquivConfig};
use mbo::Optimizer;
use umlsm::{Action, Expr, Interp, MachineBuilder, StateMachine};

// ---------------------------------------------------------------------
// Expression folding
// ---------------------------------------------------------------------

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i64..64).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.add(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.sub(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.mul(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.div(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.rem(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.lt(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.le(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.eq(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            inner.clone().prop_map(|e| e.not()),
            inner.prop_map(|e| e.neg()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fold_preserves_evaluation(e in arb_expr(), a in -8i64..8, b in -8i64..8, c in -8i64..8) {
        let env = [("a".to_string(), a), ("b".to_string(), b), ("c".to_string(), c)]
            .into_iter()
            .collect();
        let folded = e.fold();
        prop_assert_eq!(e.eval(&env), folded.eval(&env));
    }

    #[test]
    fn fold_is_idempotent(e in arb_expr()) {
        let once = e.fold();
        prop_assert_eq!(once.clone().fold(), once);
    }
}

// ---------------------------------------------------------------------
// Random machines
// ---------------------------------------------------------------------

/// Blueprint for one random transition.
#[derive(Debug, Clone)]
struct TransitionSpec {
    source: usize,
    target: usize,
    event: usize,
    guarded: bool,
    completion: bool,
    emit: u8,
}

fn arb_transitions(states: usize, events: usize) -> impl Strategy<Value = Vec<TransitionSpec>> {
    prop::collection::vec(
        (
            0..states,
            0..states,
            0..events,
            any::<bool>(),
            prop::bool::weighted(0.15),
            any::<u8>(),
        )
            .prop_map(|(source, target, event, guarded, completion, emit)| {
                TransitionSpec {
                    source,
                    target,
                    event,
                    guarded,
                    completion,
                    emit,
                }
            }),
        1..12,
    )
}

/// Builds a random (but always valid) flat machine from blueprints.
fn build_machine(states: usize, events: usize, specs: &[TransitionSpec]) -> Option<StateMachine> {
    let mut b = MachineBuilder::new("random");
    b.variable("x", 1);
    let sids: Vec<_> = (0..states).map(|i| b.state(format!("St{i}"))).collect();
    let eids: Vec<_> = (0..events).map(|i| b.event(format!("ev{i}"))).collect();
    b.initial(sids[0]);
    for (i, s) in sids.iter().enumerate() {
        b.on_entry(
            *s,
            vec![
                Action::assign("x", Expr::var("x").add(Expr::int(i as i64 + 1))),
                Action::emit_arg(format!("in{i}"), Expr::var("x")),
            ],
        );
    }
    for spec in specs {
        let t = b.transition(sids[spec.source], sids[spec.target]);
        let t = if spec.completion {
            // Guarded completion only: unguarded completion transitions
            // can easily form chains/cycles that code generation rejects;
            // a guard keeps the machine compilable while still exercising
            // completion semantics.
            t.on_completion()
                .when(Expr::var("x").rem(Expr::int(3)).eq(Expr::int(1)))
        } else if spec.guarded {
            t.on(eids[spec.event])
                .when(Expr::var("x").rem(Expr::int(2)).eq(Expr::int(0)))
        } else {
            t.on(eids[spec.event])
        };
        t.then(vec![Action::emit_arg(
            format!("t{}", spec.emit % 8),
            Expr::var("x"),
        )])
        .build();
    }
    b.finish().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimizer preserves observable traces on arbitrary machines.
    #[test]
    fn optimizer_preserves_behaviour(
        states in 2usize..5,
        events in 1usize..4,
        specs in arb_transitions(5, 4),
    ) {
        let specs: Vec<_> = specs
            .into_iter()
            .map(|mut s| { s.source %= states; s.target %= states; s.event %= events; s })
            .collect();
        let Some(machine) = build_machine(states, events, &specs) else {
            return Ok(()); // blueprint produced an invalid machine; skip
        };
        // Skip machines whose completion structure the interpreter itself
        // rejects (cycles hit the chain bound).
        if Interp::new(&machine).is_err() {
            return Ok(());
        }
        let outcome = Optimizer::with_all().optimize(&machine).expect("optimizes");
        let config = EquivConfig {
            exhaustive_depth: 3,
            random_sequences: 32,
            random_length: 10,
            ..EquivConfig::default()
        };
        let report = check_trace_equivalence(&machine, &outcome.machine, &config)
            .expect("check runs");
        prop_assert!(report.equivalent, "counterexample: {:?}", report.counterexample);
    }

    /// Generated (and source-interpreted) code matches the model on random
    /// event sequences, for every pattern.
    #[test]
    fn generated_code_matches_model(
        states in 2usize..4,
        events in 1usize..3,
        specs in arb_transitions(4, 3),
        seq in prop::collection::vec(0usize..3, 1..10),
    ) {
        let specs: Vec<_> = specs
            .into_iter()
            .map(|mut s| { s.source %= states; s.target %= states; s.event %= events; s })
            .collect();
        let Some(machine) = build_machine(states, events, &specs) else {
            return Ok(());
        };
        if Interp::new(&machine).is_err() {
            return Ok(());
        }
        let names: Vec<String> = seq.iter().map(|i| format!("ev{}", i % events)).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut model = Interp::new(&machine).expect("starts");
        for n in &name_refs {
            model.step_by_name(n).expect("steps");
        }
        let oracle = model.trace().observable();
        for pattern in Pattern::all() {
            let Ok(generated) = cgen::generate(&machine, pattern) else {
                return Ok(()); // e.g. conservative completion-cycle rejection
            };
            let run = cgen::run_generated(&generated, &name_refs).expect("runs");
            prop_assert_eq!(
                &run.observable, &oracle,
                "{} diverges on {:?}", pattern, name_refs
            );
        }
    }
}
