//! End-to-end integration: model interpreter ≡ generated code ≡ compiled
//! EM32 program, for every sample machine, every implementation pattern and
//! every compiler optimization level — the correctness backbone of all
//! experiments.

use cgen::{Generated, Pattern};
use mbo::Optimizer;
use occ::{vm::Vm, OptLevel};
use tlang::RecordingEnv;
use umlsm::{samples, Interp, StateMachine};

fn model_trace(machine: &StateMachine, events: &[&str]) -> Vec<(String, i64)> {
    let mut interp = Interp::new(machine).expect("model starts");
    for e in events {
        interp.step_by_name(e).expect("model steps");
    }
    interp.trace().observable()
}

fn compiled_trace(generated: &Generated, level: OptLevel, events: &[&str]) -> Vec<(String, i64)> {
    let artifact = occ::compile(&generated.module, level).expect("compiles");
    let mut vm = Vm::new(artifact.assembly(), RecordingEnv::new());
    vm.run("sm_init", &[]).expect("init runs");
    for e in events {
        if let Some(code) = generated.codes.event_code(e) {
            vm.run("sm_step", &[code as i32]).expect("step runs");
        }
    }
    vm.into_env()
        .calls
        .iter()
        .map(|(_, args)| {
            (
                generated
                    .codes
                    .signal_name(i64::from(args[0]))
                    .unwrap_or("<unknown>")
                    .to_string(),
                i64::from(args[1]),
            )
        })
        .collect()
}

fn assert_chain(machine: &StateMachine, events: &[&str]) {
    let oracle = model_trace(machine, events);
    for pattern in Pattern::all() {
        let generated = cgen::generate(machine, pattern).expect("generates");
        // Source level: the tlang reference interpreter.
        let run = cgen::run_generated(&generated, events).expect("interprets");
        assert_eq!(
            run.observable,
            oracle,
            "{} / {pattern}: generated code diverges from the model",
            machine.name()
        );
        // Machine level: compiled EM32 at every level.
        for level in OptLevel::all() {
            let trace = compiled_trace(&generated, level, events);
            assert_eq!(
                trace,
                oracle,
                "{} / {pattern} / {level}: compiled program diverges",
                machine.name()
            );
        }
    }
}

#[test]
fn flat_machine_full_chain() {
    let m = samples::flat_unreachable();
    assert_chain(&m, &["e1", "e2", "e1", "e3"]);
    assert_chain(&m, &["e3", "e2", "e1", "e1", "e2", "e3", "e1"]);
}

#[test]
fn hierarchical_machine_full_chain() {
    let m = samples::hierarchical_never_active();
    assert_chain(&m, &["e1", "e2", "e3", "e4"]);
    assert_chain(&m, &["e2", "e1", "e2", "e4", "e3", "e1"]);
}

#[test]
fn cruise_control_full_chain() {
    let mut m = samples::cruise_control();
    m.set_variable("speed", 64);
    assert_chain(
        &m,
        &[
            "power", "set", "accel", "set", "accel", "brake", "resume", "power", "kill",
        ],
    );
}

#[test]
fn protocol_handler_full_chain() {
    let m = samples::protocol_handler();
    assert_chain(
        &m,
        &[
            "open",
            "ack",
            "data",
            "data",
            "data",
            "close",
            "downgrade",
            "ack",
            "open",
        ],
    );
}

#[test]
fn scaling_family_full_chain() {
    let m = samples::flat_with_unreachable(4);
    assert_chain(&m, &["start", "toggle", "toggle", "stop", "start"]);
}

#[test]
fn two_step_preserves_behaviour_through_the_whole_chain() {
    // The paper's proposal end to end: the optimized model, generated and
    // compiled at -Os, behaves exactly like the *original* model.
    for machine in [
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
        samples::protocol_handler(),
    ] {
        let events = ["e1", "e2", "e3", "e4", "open", "ack", "data", "close", "e1"];
        let oracle = model_trace(&machine, &events);
        let optimized = Optimizer::with_all()
            .check_behaviour(true)
            .optimize(&machine)
            .expect("optimizes")
            .machine;
        for pattern in Pattern::all() {
            let generated = cgen::generate(&optimized, pattern).expect("generates");
            let trace = compiled_trace(&generated, OptLevel::Os, &events);
            assert_eq!(
                trace,
                oracle,
                "{} / {pattern}: two-step pipeline changed behaviour",
                machine.name()
            );
        }
    }
}

#[test]
fn optimization_levels_never_grow_code() {
    for machine in [
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
    ] {
        for pattern in Pattern::all() {
            let generated = cgen::generate(&machine, pattern).expect("generates");
            let o0 = occ::compile(&generated.module, OptLevel::O0)
                .expect("compiles")
                .sizes()
                .total();
            let os = occ::compile(&generated.module, OptLevel::Os)
                .expect("compiles")
                .sizes()
                .total();
            assert!(
                os <= o0,
                "{} / {pattern}: -Os ({os}) larger than -O0 ({o0})",
                machine.name()
            );
        }
    }
}

#[test]
fn model_optimization_shrinks_every_pattern() {
    let machine = samples::hierarchical_never_active();
    let optimized = Optimizer::with_all()
        .optimize(&machine)
        .expect("optimizes")
        .machine;
    for pattern in Pattern::all() {
        let before = occ::compile(
            &cgen::generate(&machine, pattern).expect("generates").module,
            OptLevel::Os,
        )
        .expect("compiles")
        .sizes()
        .total();
        let after = occ::compile(
            &cgen::generate(&optimized, pattern)
                .expect("generates")
                .module,
            OptLevel::Os,
        )
        .expect("compiles")
        .sizes()
        .total();
        assert!(
            after < before,
            "{pattern}: expected shrink, got {before} -> {after}"
        );
    }
}

#[test]
fn new_passes_fire_on_sample_machines_at_o2() {
    // Acceptance: SCCP, LICM, GVN/CSE and terminator folding must each
    // rewrite something on at least one sample machine at -O2 — and the
    // full machine × pattern × level matrix above proves the rewrites
    // preserve the reference trace. SCCP and LICM firing on the sample
    // machines is PR 3's acceptance criterion; the STT dispatch loops are
    // LICM's designed target.
    let machines = [
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
        samples::cruise_control(),
        samples::protocol_handler(),
    ];
    let mut fired: std::collections::BTreeMap<&str, bool> = std::collections::BTreeMap::new();
    for machine in &machines {
        for pattern in Pattern::all() {
            let generated = cgen::generate(machine, pattern).expect("generates");
            let artifact = occ::compile(&generated.module, OptLevel::O2).expect("compiles");
            let stats = artifact.pass_stats();
            for name in [
                "sccp",
                "const-fold",
                "copy-prop",
                "gvn-cse",
                "store-load-fwd",
                "cross-load-fwd",
                "load-pre",
                "dse",
                "licm",
                "term-fold",
                "dce",
                "copy-coalesce",
                "tail-merge",
            ] {
                let st = stats.get(name).unwrap_or_else(|| panic!("{name} missing"));
                assert!(st.runs > 0, "{name} never ran on {}", machine.name());
                *fired.entry(name).or_default() |= st.changes > 0;
            }
        }
    }
    for name in [
        "sccp",
        "licm",
        "gvn-cse",
        "store-load-fwd",
        "cross-load-fwd",
        "dse",
        "term-fold",
        "copy-coalesce",
    ] {
        assert!(fired[name], "{name} fired on no sample machine at -O2");
    }
}

#[test]
fn licm_fires_on_every_stt_dispatch_loop_at_o2() {
    // The state-transition-table engine is the pattern whose dispatch
    // loop LICM targets: invariant table-address arithmetic recomputed
    // per iteration. It must fire on *every* sample machine's STT build.
    for machine in [
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
        samples::cruise_control(),
        samples::protocol_handler(),
    ] {
        let generated = cgen::generate(&machine, Pattern::StateTable).expect("generates");
        let artifact = occ::compile(&generated.module, OptLevel::O2).expect("compiles");
        let licm = artifact.pass_stats().get("licm").expect("licm ran");
        assert!(
            licm.changes > 0,
            "licm must hoist out of {}'s STT dispatch loop",
            machine.name()
        );
    }
}

#[test]
fn store_load_forward_fires_on_every_stt_cell_at_o2() {
    // Every generated handler emits load-global → test → store-global
    // context traffic; block-local store-to-load forwarding (plus
    // redundant-load elimination) must catch some of it on *every*
    // sample machine's STT build — the tentpole's acceptance criterion.
    for machine in [
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
        samples::cruise_control(),
        samples::protocol_handler(),
    ] {
        let generated = cgen::generate(&machine, Pattern::StateTable).expect("generates");
        let artifact = occ::compile(&generated.module, OptLevel::O2).expect("compiles");
        let slf = artifact
            .pass_stats()
            .get("store-load-fwd")
            .expect("store-load-fwd ran");
        assert!(
            slf.changes > 0,
            "store-to-load forwarding must fire on {}'s STT build",
            machine.name()
        );
    }
}

#[test]
fn cross_block_forwarding_fires_on_every_state_pattern_cell_at_o2() {
    // The tentpole's acceptance criterion. The State Pattern is the
    // pattern block-local forwarding helps least — its call-heavy
    // handlers re-load the same context cells *across* block boundaries
    // (the region dispatcher alone re-reads the active-state field past
    // the guard block, like the naive generated C++ it stands in for).
    // The dominator-scoped available-load analysis must catch that on
    // every sample machine: the pass deletes the forwarded loads, so its
    // `insts_removed` is the direct count of loads eliminated and must
    // be nonzero — not just `changes`.
    for machine in [
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
        samples::cruise_control(),
        samples::protocol_handler(),
    ] {
        let generated = cgen::generate(&machine, Pattern::StatePattern).expect("generates");
        let artifact = occ::compile(&generated.module, OptLevel::O2).expect("compiles");
        let xfwd = artifact
            .pass_stats()
            .get("cross-load-fwd")
            .expect("cross-load-fwd ran");
        assert!(
            xfwd.insts_removed > 0,
            "cross-block forwarding must delete loads on {}'s State Pattern build \
             (changes {}, insts_removed {})",
            machine.name(),
            xfwd.changes,
            xfwd.insts_removed
        );
    }
}

#[test]
fn licm_hoists_loads_out_of_stt_dispatch_loops() {
    // The memory-aware LICM extension: the dispatch engine reads its
    // per-state exit table through a loop-invariant rodata address every
    // iteration; that load must leave the loop even though the body
    // makes indirect guard/effect calls (rodata survives calls — no
    // callee can store to `const` data). Measured at the MIR level so
    // the hoist itself is observed, not a proxy statistic.
    use occ::mem::MemoryModel;
    use occ::mir::{BlockId, Inst, MirFunction};
    use std::collections::BTreeSet;

    fn loads_in_loop_bodies(f: &MirFunction) -> usize {
        let mut in_loops: BTreeSet<BlockId> = BTreeSet::new();
        for lp in occ::cfg::natural_loops(f) {
            in_loops.extend(lp.body.iter().copied());
        }
        in_loops
            .iter()
            .map(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .filter(|i| matches!(i, Inst::Load { .. }))
                    .count()
            })
            .sum()
    }

    for machine in [
        samples::flat_unreachable(),
        samples::hierarchical_never_active(),
        samples::cruise_control(),
        samples::protocol_handler(),
    ] {
        let generated = cgen::generate(&machine, Pattern::StateTable).expect("generates");
        generated.module.check().expect("typed");
        let mut program = occ::lower::lower_module(&generated.module).expect("lowers");
        let model = MemoryModel::of(&program);
        let mut before = 0usize;
        let mut after = 0usize;
        for f in &mut program.functions {
            occ::opt::simplify_cfg(f);
            occ::ssa::construct(f);
            // Canonicalize as the -O2 roster would before LICM runs.
            occ::opt::sccp(f, &model);
            occ::opt::copy_propagate(f, &model);
            occ::opt::gvn_cse(f, &model);
            before += loads_in_loop_bodies(f);
            occ::opt::licm(f, &model);
            after += loads_in_loop_bodies(f);
        }
        assert!(
            after < before,
            "{}: no load left a dispatch loop ({before} -> {after})",
            machine.name()
        );
    }
}

#[test]
fn pass_stats_absent_at_o0() {
    let generated =
        cgen::generate(&samples::flat_unreachable(), Pattern::NestedSwitch).expect("generates");
    let artifact = occ::compile(&generated.module, OptLevel::O0).expect("compiles");
    assert!(
        artifact.pass_stats().passes().iter().all(|s| s.runs == 0),
        "-O0 must run no mid-end passes"
    );
    assert!(artifact.pass_log().is_empty());
}
