//! Driver-layer integration tests: content-hash determinism,
//! byte-identical artifacts across repeat runs and thread counts, cache
//! tier equivalence (memory and disk) including statistics, and clean
//! recovery from corrupted disk entries.

use std::path::PathBuf;
use std::sync::Arc;

use cgen::Pattern;
use occ::driver::{job_hash, parallel_map, serialize_artifact, Driver, DEFAULT_CACHE_DIR};
use occ::{Artifact, OptLevel};

/// A realistic job: the flat sample machine generated with the Nested
/// Switch pattern.
fn sample_module() -> tlang::Module {
    cgen::generate(&umlsm::samples::flat_unreachable(), Pattern::NestedSwitch)
        .expect("generates")
        .module
}

/// A scratch cache directory unique to this test, outside the repo's
/// conventional [`DEFAULT_CACHE_DIR`].
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("occ-driver-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_artifacts_equal(a: &Artifact, b: &Artifact) {
    assert_eq!(a.assembly(), b.assembly(), "assembly must be identical");
    assert_eq!(a.pass_stats(), b.pass_stats(), "PassStats must be equal");
    assert_eq!(
        a.regalloc_stats(),
        b.regalloc_stats(),
        "RegAllocStats must be equal"
    );
    assert_eq!(a.surviving_functions(), b.surviving_functions());
    assert_eq!(a.level(), b.level());
    assert_eq!(
        serialize_artifact(a),
        serialize_artifact(b),
        "serialized artifacts must be byte-identical"
    );
}

#[test]
fn same_job_hashes_and_compiles_identically_across_repeat_runs() {
    let module = sample_module();
    assert_eq!(
        job_hash(&module, OptLevel::O2),
        job_hash(&sample_module(), OptLevel::O2),
        "independent generations of the same machine must hash equal"
    );
    // Two fresh compiles (no cache involved) are byte-identical.
    let a = occ::compile(&module, OptLevel::O2).expect("compiles");
    let b = occ::compile(&module, OptLevel::O2).expect("compiles");
    assert_artifacts_equal(&a, &b);
}

#[test]
fn batch_artifacts_are_byte_identical_across_thread_counts() {
    let module = sample_module();
    let jobs: Vec<(tlang::Module, OptLevel)> = OptLevel::all()
        .into_iter()
        .map(|level| (module.clone(), level))
        .collect();
    // One driver per thread count: each batch compiles cold, so the
    // comparison is compile-vs-compile, not compile-vs-cache.
    let serial = Driver::new().compile_batch(&jobs, 1);
    let parallel = Driver::new().compile_batch(&jobs, 4);
    assert_eq!(serial.results.len(), parallel.results.len());
    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        let (s, p) = (s.as_ref().expect("ok"), p.as_ref().expect("ok"));
        assert_artifacts_equal(s, p);
        assert_eq!(p.level(), jobs[i].1, "results must come back in job order");
    }
}

#[test]
fn cached_artifacts_equal_fresh_compiles_on_both_tiers() {
    let module = sample_module();
    let fresh = occ::compile(&module, OptLevel::Os).expect("compiles");

    // Memory tier.
    let driver = Driver::new();
    let cold = driver.compile(&module, OptLevel::Os).expect("compiles");
    let warm = driver.compile(&module, OptLevel::Os).expect("hits");
    assert!(Arc::ptr_eq(&cold, &warm), "memory tier must share the Arc");
    assert_artifacts_equal(&fresh, &warm);
    let stats = driver.stats();
    assert_eq!((stats.mem_hits, stats.misses), (1, 1));

    // Disk tier: a second session over the first session's cache dir.
    let dir = scratch_dir("tiers");
    let writer = Driver::with_disk_cache(&dir);
    writer.compile(&module, OptLevel::Os).expect("compiles");
    let reader = Driver::with_disk_cache(&dir);
    let loaded = reader.compile(&module, OptLevel::Os).expect("loads");
    let stats = reader.stats();
    assert_eq!(
        (stats.disk_hits, stats.misses),
        (1, 0),
        "second session must load from disk: {stats:?}"
    );
    assert_artifacts_equal(&fresh, &loaded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_truncated_disk_entries_recompile_cleanly() {
    let module = sample_module();
    let dir = scratch_dir("corrupt");
    let writer = Driver::with_disk_cache(&dir);
    let original = writer.compile(&module, OptLevel::O1).expect("compiles");

    let entry = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "occart"))
        .expect("one cache entry")
        .path();
    let bytes = std::fs::read(&entry).expect("reads entry");

    for (label, mangled) in [
        ("truncated", bytes[..bytes.len() / 2].to_vec()),
        ("bit-flipped", {
            let mut b = bytes.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x40;
            b
        }),
        ("emptied", Vec::new()),
    ] {
        std::fs::write(&entry, &mangled).expect("writes mangled entry");
        let session = Driver::with_disk_cache(&dir);
        let healed = session.compile(&module, OptLevel::O1).expect("recompiles");
        let stats = session.stats();
        assert_eq!(
            (stats.disk_hits, stats.misses),
            (0, 1),
            "{label}: must recompile, not adopt the bad entry: {stats:?}"
        );
        assert_eq!(stats.rejected, 1, "{label}: must count the rejection");
        assert_artifacts_equal(&original, &healed);
        // The recompile rewrote the entry; restore the corruption for
        // the next round from the known-good bytes.
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_map_is_order_preserving_and_complete() {
    let items: Vec<u32> = (0..257).collect();
    for threads in [1, 3, 8, 0] {
        let doubled = parallel_map(&items, threads, |x| x * 2);
        assert_eq!(doubled.len(), items.len());
        assert!(doubled.iter().enumerate().all(|(i, v)| *v == 2 * i as u32));
    }
}

#[test]
fn default_cache_dir_is_the_gitignored_name() {
    // The conventional directory CI uses must stay in sync with
    // `.gitignore`; a rename breaks the hygiene silently otherwise.
    assert_eq!(DEFAULT_CACHE_DIR, ".occ-cache");
}
