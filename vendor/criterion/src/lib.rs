//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the bench-definition API this workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up once, then timed over `sample_size` batches; the stand-in
//! prints median per-iteration time without statistical analysis or
//! plots.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, discarding its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass (also sizes the batch for fast routines).
        let warmup_start = Instant::now();
        let _ = std::hint::black_box(routine());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                let _ = std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id.id, &mut bencher);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &mut bencher);
        self
    }

    fn report(&self, id: &str, bencher: &mut Bencher) {
        println!(
            "{}/{:<28} median {:>12?}  ({} samples x {} iters)",
            self.name,
            id,
            bencher.median(),
            bencher.sample_size,
            bencher.iters_per_sample
        );
    }

    /// Ends the group (no-op in the stand-in; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
