//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the strategy/runner surface this workspace uses:
//! [`Strategy`] with `prop_map`, `prop_recursive` and `boxed`; ranges,
//! tuples, [`Just`] and [`any`] as strategies; `prop::collection::vec`
//! and `prop::bool::weighted`; the [`proptest!`], [`prop_oneof!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros; and
//! [`ProptestConfig`]. Cases are generated from a fixed deterministic
//! seed; failing cases are reported but **not shrunk**.
//!
//! [`Strategy`]: strategy::Strategy
//! [`Just`]: strategy::Just
//! [`any`]: arbitrary::any
//! [`ProptestConfig`]: test_runner::ProptestConfig

#![forbid(unsafe_code)]

/// Test-runner types: RNG, config and case errors.
pub mod test_runner {
    use std::fmt;

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed seed, so test runs are reproducible.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x853c_49e6_748f_ea9b,
            }
        }

        /// Returns the next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound` must be non-zero).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// How many cases each property runs, etc.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// deterministic function of the RNG state.
    pub trait Strategy: 'static {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O + 'static,
        {
            Map { inner: self, f }
        }

        /// Recursive strategy: `recurse` receives the strategy built so
        /// far and wraps it one level deeper, up to `depth` levels.
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                recurse: Arc::new(move |inner| recurse(inner).boxed()),
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + 'static,
        O: 'static,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        #[allow(clippy::type_complexity)]
        recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            // Build base | recurse(base | recurse(...)) so generated values
            // have varied depth up to `self.depth` levels.
            let mut strat = self.base.clone();
            for _ in 0..self.depth {
                strat = Union::new(vec![self.base.clone(), (self.recurse)(strat)]).boxed();
            }
            strat.generate(rng)
        }
    }

    /// Uniform choice between alternative strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Domain-specific strategy constructors (`prop::collection`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths in `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end - self.size.start;
                let len = self.size.start + rng.below(span);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy generating `true` with the given probability.
        pub struct Weighted {
            probability: f64,
        }

        /// Generates `true` with probability `probability`.
        pub fn weighted(probability: f64) -> Weighted {
            Weighted { probability }
        }

        impl Strategy for Weighted {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.unit_f64() < self.probability
            }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property-test functions: each `arg in strategy` binding is
/// generated fresh per case, and the body may `return Ok(())` to skip a
/// case or fail via [`prop_assert!`]/[`prop_assert_eq!`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body;
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case #{} of {} failed: {}", __case, stringify!($name), e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property body; failure fails the case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), left, right),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -8i64..8, y in 0usize..5) {
            prop_assert!((-8..8).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..10, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn recursive_respects_depth(
            t in Just(Tree::Leaf(0)).prop_map(|t| t).boxed().prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            })
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} too deep: {:?}", depth(&t), t);
        }

        #[test]
        fn oneof_picks_every_arm_eventually(x in prop_oneof![Just(1), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn weighted_bool_is_biased() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = prop::bool::weighted(0.15);
        let trues = (0..1000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 50 && trues < 300, "got {trues} trues");
    }
}
