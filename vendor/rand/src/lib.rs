//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges. The generator is a
//! `splitmix64`-seeded xoshiro256** — deterministic and fast, which is
//! exactly what the seeded equivalence checker needs.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange {
    /// The value type produced.
    type Output;
    /// Samples one value from `self` using `next` as the word source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (next() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng {
    /// Returns the next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

/// Commonly used generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for rand's `StdRng`: xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
