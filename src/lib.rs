//! `mbot` — facade crate re-exporting the model-based optimization
//! toolchain (a reproduction of Charfi et al., DATE 2010).
//!
//! The pipeline, bottom to top:
//!
//! * [`umlsm`] — executable UML state-machine models (the paper's input),
//! * [`mbo`] — the model-level optimizer (the paper's contribution),
//! * [`cgen`] — the three implementation-pattern code generators,
//! * [`tlang`] — the generated target language (the "C++" of the paper),
//! * [`occ`] — the optimizing compiler + EM32 backend and VM (the "GCC").
//!
//! See `examples/quickstart.rs` for the whole chain in one page and the
//! `bench` crate for the binaries regenerating every table and figure.

pub use cgen;
pub use mbo;
pub use occ;
pub use tlang;
pub use umlsm;
