#!/usr/bin/env bash
# CI gate for the mbot workspace. Run from the repository root:
#
#   ./ci.sh            # full gate: fmt, clippy, build, tests
#   ./ci.sh --fast     # skip the release build (dev-profile tests only)
#
# Mirrors the tier-1 verify command of ROADMAP.md plus style gates.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# The whole workspace is clippy-clean; keep it that way. (The issue floor
# was umlsm + mbo only, but every crate currently passes -D warnings.)
echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
    echo "==> cargo build --release --workspace --all-targets"
    cargo build --release --workspace --all-targets
fi

echo "==> cargo test --workspace"
cargo test --workspace -q

# Smoke-run every bench binary: a mid-end regression that only breaks
# artifact generation (a panic, a failed shape check, an incomplete
# table) must fail CI, not wait for the next manual regeneration.
# BENCH_SMOKE=1 shortens the scaling sweep.
for bin in figure1 table1 table2 scaling deadcode twostep; do
    echo "==> bench smoke: $bin"
    BENCH_SMOKE=1 cargo run --release -q -p bench --bin "$bin" > /dev/null
done

echo "CI gate passed."
