#!/usr/bin/env bash
# CI gate for the mbot workspace. Run from the repository root:
#
#   ./ci.sh            # full gate: fmt, clippy, rustdoc, build, deep
#                      # tests, bench smoke, throughput smoke,
#                      # batch-compile smoke, differential fuzz smoke,
#                      # bench-regression gate
#   ./ci.sh --fast     # quick gate: fmt, clippy, rustdoc, dev tests
#
# Mirrors the tier-1 verify command of ROADMAP.md plus style gates, the
# bench-binary smoke loop, the event-storm throughput smoke and the
# regression gate (sizes, pass activity and per-cell dynamic instruction
# counts) against the committed bench_baseline.json. Every stage's
# wall-clock time is reported at the end so slow stages are visible in
# CI logs.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

# The full gate runs the MIR differential property net deeper than the
# local default (96 cases per property).
full_gate_diff_cases=256

# The full gate's dev-profile stage runs the occ::verify static checker
# after *every* mid-end pass (OCC_VERIFY=each), not just at pipeline
# boundaries, so an invariant breakage is blamed on the pass and round
# that introduced it. Debug-build-only, like the VCode verifier; the
# --fast gate keeps the default boundary-only checks.
occ_verify_mode=each

rustdoc_check() {
    # The occ::opt / occ::mem module rustdoc is the canonical pipeline
    # and alias-model documentation (ROADMAP.md only points there), so
    # broken links and missing docs fail both gates.
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

stage_names=()
stage_secs=()

# run_stage <name> <command...> — echoes, times, and records one stage.
run_stage() {
    local name="$1"
    shift
    echo "==> $name"
    local t0=$SECONDS
    "$@"
    stage_names+=("$name")
    stage_secs+=($((SECONDS - t0)))
}

bench_smoke() {
    # Smoke-run every bench binary: a mid-end regression that only breaks
    # artifact generation (a panic, a failed shape check, an incomplete
    # table) must fail CI, not wait for the next manual regeneration.
    # BENCH_SMOKE=1 shortens the scaling sweep.
    local bin
    for bin in figure1 table1 table2 scaling deadcode twostep; do
        echo "    bench smoke: $bin"
        BENCH_SMOKE=1 cargo run --release -q -p bench --bin "$bin" > /dev/null
    done
}

run_stage "cargo fmt --check" cargo fmt --all -- --check

# The whole workspace is clippy-clean; keep it that way. (The issue floor
# was umlsm + mbo only, but every crate currently passes -D warnings.)
run_stage "cargo clippy --workspace -D warnings" \
    cargo clippy --workspace --all-targets -- -D warnings

run_stage "cargo doc (rustdoc -D warnings)" rustdoc_check

if [[ $fast -eq 1 ]]; then
    run_stage "cargo test --workspace (dev)" cargo test --workspace -q
else
    run_stage "cargo build --release" \
        cargo build --release --workspace --all-targets
    run_stage "cargo test --workspace --release (MIR_DIFF_CASES=$full_gate_diff_cases)" \
        env MIR_DIFF_CASES=$full_gate_diff_cases cargo test --workspace --release -q
    # The backend's VCode verifier and the occ::verify pipeline hooks are
    # debug-only (`cfg!(debug_assertions)` compiles them out of release
    # artifacts), so the gate must run the occ and root-matrix tests
    # under the dev profile too — this is the stage where every
    # register-allocation constraint and every MIR/SSA invariant is
    # actually re-checked, per pass (OCC_VERIFY=$occ_verify_mode).
    run_stage "cargo test -p occ -p mbot (debug: verifiers active, OCC_VERIFY=$occ_verify_mode)" \
        env OCC_VERIFY=$occ_verify_mode cargo test -p occ -p mbot -q
    run_stage "bench smoke (6 binaries)" bench_smoke
    # Event-storm throughput smoke: run the full machine×pattern×level
    # storm matrix (BENCH_SMOKE=1 shortens the timed storms to the
    # canonical length) so a fast-engine/oracle divergence or a storm
    # fault fails CI. Its own timed stage — the storms dominate, and the
    # timing line is how a dispatch-loop slowdown shows up in CI logs.
    run_stage "bench throughput smoke (BENCH_SMOKE=1)" \
        env BENCH_SMOKE=1 cargo run --release -q -p bench --bin throughput
    # Batch-compile smoke: cold pass then warm passes (memory + disk
    # artifact-cache tiers) over the full 48-cell matrix. The bin itself
    # asserts 100% warm hit rates and a machines/sec improvement over
    # cold, and prints both; a caching or hashing regression fails here.
    # Its timed stage line is the toolchain-throughput trajectory in CI
    # logs (cache dir: .occ-cache/ci-batch, gitignored).
    run_stage "bench batch-compile smoke (cold+warm, 48 cells)" \
        cargo run --release -q -p bench --bin batch
    # Differential fuzz smoke: a deterministic-seed corpus of generated
    # machines (umlsm::gen) runs the whole chain differentially — model
    # interpreter oracle vs tlang reference vs compiled EM32 on both
    # engines, 3 patterns × 4 levels per case, with coverage-guided
    # event sequences — plus the coverage duel (guided evolution must
    # reach ops pure random never does at the same budget). Exit is
    # nonzero on any divergence; deepen ad hoc with e.g.
    # FUZZ_CASES=5000 FUZZ_SECS=600. Its own timed stage line tracks
    # corpus throughput in CI logs.
    run_stage "bench differential fuzz smoke (FUZZ_CASES=${FUZZ_CASES:-500})" \
        env FUZZ_CASES="${FUZZ_CASES:-500}" cargo run --release -q -p bench --bin fuzz
    # Regression gate: snapshot the current toolchain, then compare
    # against the committed baseline. Any machine×pattern×level cell
    # (total or text/rodata section) growing beyond the tolerance fails
    # the gate, as does a cell's canonical-storm dynamic instruction
    # count (the deterministic "time" axis — an optimization that saves
    # bytes by re-executing work fails here), cell-set drift in either
    # direction, or a pass whose insts_removed drops to zero matrix-wide
    # (silently inert); refresh the baseline deliberately with:
    #   cargo run --release -p bench --bin snapshot -- bench_baseline.json
    run_stage "bench snapshot (BENCH_PR3.json)" \
        cargo run --release -q -p bench --bin snapshot
    run_stage "bench regression gate" \
        cargo run --release -q -p bench --bin regress
fi

echo
echo "stage timings:"
for i in "${!stage_names[@]}"; do
    printf '  %3ss  %s\n' "${stage_secs[$i]}" "${stage_names[$i]}"
done
echo "CI gate passed."
