//! Pattern shoot-out: generate the same machine with all three
//! implementation patterns, compile at every optimization level, verify
//! identical behaviour, and print the full size matrix — Table I's
//! methodology as a reusable tool.
//!
//! Run with `cargo run --example pattern_shootout`.

use cgen::Pattern;
use occ::OptLevel;
use tlang::RecordingEnv;
use umlsm::{samples, Interp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = samples::hierarchical_never_active();
    let events = ["e1", "e2", "e1", "e2", "e3", "e4", "e1"];

    // Oracle: the model interpreter.
    let mut model = Interp::new(&machine)?;
    for e in &events {
        model.step_by_name(e)?;
    }
    let oracle = model.trace().observable();
    println!("oracle trace ({} emissions)", oracle.len());

    println!(
        "\n{:<14} {:>8} {:>8} {:>8} {:>8}   behaviour",
        "pattern", "-O0", "-O1", "-O2", "-Os"
    );
    for pattern in Pattern::all() {
        let generated = cgen::generate(&machine, pattern)?;
        let mut sizes = Vec::new();
        let mut all_match = true;
        for level in OptLevel::all() {
            let artifact = occ::compile(&generated.module, level)?;
            sizes.push(artifact.sizes().total());
            // Execute the compiled program and compare with the oracle.
            let mut vm = occ::vm::Vm::new(artifact.assembly(), RecordingEnv::new());
            vm.run("sm_init", &[])?;
            for e in &events {
                if let Some(code) = generated.codes.event_code(e) {
                    vm.run("sm_step", &[code as i32])?;
                }
            }
            let trace: Vec<(String, i64)> = vm
                .into_env()
                .calls
                .iter()
                .map(|(_, args)| {
                    (
                        generated
                            .codes
                            .signal_name(i64::from(args[0]))
                            .unwrap_or("?")
                            .to_string(),
                        i64::from(args[1]),
                    )
                })
                .collect();
            all_match &= trace == oracle;
        }
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8}   {}",
            pattern.label(),
            sizes[0],
            sizes[1],
            sizes[2],
            sizes[3],
            if all_match { "== model" } else { "DIVERGES" }
        );
        assert!(all_match, "{pattern} diverges from the model");
    }

    println!("\nnote how -Os beats -O2 on bytes while every level preserves behaviour;");
    println!("the remaining waste (the dead composite) is only removable at the model level.");
    Ok(())
}
