//! Quickstart: the full toolchain in one page.
//!
//! Build a UML state machine, optimize it at the model level, generate
//! code, compile it at `-Os`, run the compiled program on the EM32 VM and
//! check it behaves exactly like the model.
//!
//! Run with `cargo run --example quickstart`.

use cgen::Pattern;
use mbo::{Optimization, Optimizer};
use occ::OptLevel;
use tlang::RecordingEnv;
use umlsm::{Action, Expr, Interp, MachineBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Model: a tiny controller with a dead diagnostic state.
    let mut b = MachineBuilder::new("quickstart");
    b.variable("ticks", 0);
    let idle = b.state("Idle");
    let busy = b.state("Busy");
    let diag = b.state("Diagnostics"); // no incoming transition: dead
    let start = b.event("start");
    let stop = b.event("stop");
    b.initial(idle);
    b.on_entry(
        busy,
        vec![
            Action::assign("ticks", Expr::var("ticks").add(Expr::int(1))),
            Action::emit_arg("busy", Expr::var("ticks")),
        ],
    );
    b.on_entry(diag, vec![Action::emit("diagnostics")]);
    b.transition(idle, busy).on(start).build();
    b.transition(busy, idle).on(stop).build();
    b.transition(diag, idle).on(stop).build();
    let machine = b.finish()?;

    // 2. Model-level optimization (the paper's contribution): the user
    //    picks the optimization, the tool rewrites the model.
    let outcome = Optimizer::new()
        .select(Optimization::RemoveUnreachableStates)
        .select(Optimization::RemoveUnusedEvents)
        .check_behaviour(true)
        .optimize(&machine)?;
    println!("model optimization report:\n{}", outcome.report);
    assert!(outcome.machine.state_by_name("Diagnostics").is_none());

    // 3. Code generation (Nested Switch) + compilation at -Os, before
    //    and after model optimization. -Os runs occ's full mid-end
    //    roster — SCCP, GVN/CSE, the block-local and cross-block
    //    store-to-load forwarding family, load-PRE, DSE, LICM, DCE,
    //    crossjumping (see the occ::opt module rustdoc); where measured
    //    orderings deviate from the paper's tables, EXPERIMENTS.md is
    //    the ledger of record.
    for (label, model) in [("original ", &machine), ("optimized", &outcome.machine)] {
        let generated = cgen::generate(model, Pattern::NestedSwitch)?;
        let artifact = occ::compile(&generated.module, OptLevel::Os)?;
        println!("{label} model -> {}", artifact.sizes());
    }

    // 4. Behaviour check, end to end: model interpreter vs compiled code.
    let events = ["start", "stop", "start", "start", "stop"];
    let mut model_run = Interp::new(&machine)?;
    for e in &events {
        model_run.step_by_name(e)?;
    }

    let generated = cgen::generate(&outcome.machine, Pattern::NestedSwitch)?;
    let artifact = occ::compile(&generated.module, OptLevel::Os)?;
    let mut vm = occ::vm::Vm::new(artifact.assembly(), RecordingEnv::new());
    vm.run("sm_init", &[])?;
    for e in &events {
        if let Some(code) = generated.codes.event_code(e) {
            vm.run("sm_step", &[code as i32])?;
        }
    }
    let compiled_trace: Vec<(String, i64)> = vm
        .into_env()
        .calls
        .iter()
        .map(|(_, args)| {
            (
                generated
                    .codes
                    .signal_name(i64::from(args[0]))
                    .unwrap_or("?")
                    .to_string(),
                i64::from(args[1]),
            )
        })
        .collect();
    assert_eq!(model_run.trace().observable(), compiled_trace);
    println!("end-to-end check: compiled trace == model trace ({compiled_trace:?})");
    Ok(())
}
