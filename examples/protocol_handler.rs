//! A communication-protocol handler where *both* paper optimizations apply
//! at once: an unreachable diagnostic state and a completion-shadowed
//! legacy composite.
//!
//! Run with `cargo run --example protocol_handler`.

use cgen::Pattern;
use mbo::analysis;
use mbo::Optimizer;
use occ::OptLevel;
use umlsm::samples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = samples::protocol_handler();

    // What the model-level analyses see (and the compiler cannot).
    let reach = analysis::reachable_states(&machine);
    println!("unreachable states:");
    for sid in reach.unreachable_states(&machine) {
        println!("  - {}", machine.state(sid).name);
    }
    println!("completion-shadowed transitions:");
    for tid in analysis::completion_shadowed_transitions(&machine) {
        let t = machine.transition(tid);
        println!(
            "  - {} -> {} (shadowed by an unguarded completion transition)",
            machine.state(t.source).name,
            machine.state(t.target).name
        );
    }

    // Full optimization with the behaviour check on.
    let outcome = Optimizer::with_all()
        .check_behaviour(true)
        .optimize(&machine)?;
    println!("\n{}", outcome.report);
    println!(
        "equivalence: {}",
        outcome.equivalence.expect("behaviour check enabled")
    );

    // The payoff in bytes, per pattern.
    println!("\ntwo-step payoff at -Os:");
    for pattern in Pattern::all() {
        let before = occ::compile(&cgen::generate(&machine, pattern)?.module, OptLevel::Os)?;
        let after = occ::compile(
            &cgen::generate(&outcome.machine, pattern)?.module,
            OptLevel::Os,
        )?;
        println!(
            "  {:<14} {:>6} -> {:>6} bytes ({:.1}% smaller)",
            pattern.label(),
            before.sizes().total(),
            after.sizes().total(),
            100.0 * (before.sizes().total() - after.sizes().total()) as f64
                / before.sizes().total() as f64
        );
    }
    Ok(())
}
