//! An automotive cruise controller — the RTES control workload the paper's
//! introduction motivates.
//!
//! This model is fully live (a negative control): the optimizer must find
//! nothing to remove, and code size must be unchanged. The example also
//! prints the Graphviz rendering and drives the machine through a realistic
//! scenario.
//!
//! Run with `cargo run --example cruise_control`.

use cgen::Pattern;
use mbo::Optimizer;
use occ::OptLevel;
use umlsm::{samples, Interp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = samples::cruise_control();
    machine.set_variable("speed", 72);
    println!("model:\n{machine}");
    println!("graphviz (render with `dot -Tsvg`):\n{}", machine.to_dot());

    // Drive a scenario on the reference interpreter.
    let mut run = Interp::new(&machine)?;
    for e in [
        "power", "set", "accel", "accel", "set", "brake", "resume", "power",
    ] {
        run.step_by_name(e)?;
        println!("after {e:<7} active: {:?}", run.configuration());
    }
    println!("observable trace: {:?}", run.trace().observable());

    // Negative control: nothing to optimize away.
    let outcome = Optimizer::with_all()
        .check_behaviour(true)
        .optimize(&machine)?;
    assert_eq!(
        outcome.machine.metrics().states,
        machine.metrics().states,
        "cruise control is fully live"
    );
    println!(
        "\noptimizer on a fully live model: {} states removed (as expected)",
        outcome.report.total_removed_states()
    );

    // Sizes across patterns: the designer's freedom the paper insists on.
    println!("\nsizes at -Os:");
    for pattern in Pattern::all() {
        let generated = cgen::generate(&machine, pattern)?;
        let artifact = occ::compile(&generated.module, OptLevel::Os)?;
        println!("  {:<14} {}", pattern.label(), artifact.sizes());
    }
    Ok(())
}
