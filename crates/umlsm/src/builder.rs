//! Fluent construction of state machines.
//!
//! [`MachineBuilder`] wraps a [`StateMachine`] under construction and
//! finishes with validation, so a machine obtained from
//! [`finish`](MachineBuilder::finish) is always well-formed.

use crate::action::Action;
use crate::expr::Expr;
use crate::ids::{EventId, RegionId, StateId, TransitionId};
use crate::machine::{StateMachine, Transition, Trigger};
use crate::semantics::Semantics;
use crate::validate::ValidateError;

/// Builder for [`StateMachine`] values.
///
/// # Example
///
/// ```
/// use umlsm::{Action, Expr, MachineBuilder};
///
/// # fn main() -> Result<(), umlsm::ValidateError> {
/// let mut b = MachineBuilder::new("counter");
/// b.variable("n", 0);
/// let idle = b.state("Idle");
/// let busy = b.state("Busy");
/// let start = b.event("start");
/// let done = b.event("done");
/// b.initial(idle);
/// b.on_entry(busy, vec![Action::assign("n", Expr::var("n").add(Expr::int(1)))]);
/// b.transition(idle, busy).on(start).build();
/// b.transition(busy, idle).on(done).build();
/// let machine = b.finish()?;
/// assert_eq!(machine.metrics().transitions, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    machine: StateMachine,
}

impl MachineBuilder {
    /// Starts building a machine with the given name and the paper's default
    /// semantics.
    pub fn new(name: impl Into<String>) -> MachineBuilder {
        MachineBuilder {
            machine: StateMachine::new(name),
        }
    }

    /// Overrides the execution semantics.
    pub fn semantics(&mut self, semantics: Semantics) -> &mut Self {
        self.machine.set_semantics(semantics);
        self
    }

    /// Declares a context variable with an initial value.
    pub fn variable(&mut self, name: impl Into<String>, initial: i64) -> &mut Self {
        self.machine.set_variable(name, initial);
        self
    }

    /// The root region of the machine under construction.
    pub fn root(&self) -> RegionId {
        self.machine.root()
    }

    /// Adds a simple state to the root region.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let root = self.machine.root();
        self.machine.add_state(root, name)
    }

    /// Adds a simple state to a specific region.
    pub fn state_in(&mut self, region: RegionId, name: impl Into<String>) -> StateId {
        self.machine.add_state(region, name)
    }

    /// Adds a final state to the root region.
    pub fn final_state(&mut self, name: impl Into<String>) -> StateId {
        let root = self.machine.root();
        self.machine.add_final_state(root, name)
    }

    /// Adds a final state to a specific region.
    pub fn final_state_in(&mut self, region: RegionId, name: impl Into<String>) -> StateId {
        self.machine.add_final_state(region, name)
    }

    /// Adds a composite state to the root region; returns `(state, region)`.
    pub fn composite(&mut self, name: impl Into<String>) -> (StateId, RegionId) {
        let root = self.machine.root();
        self.machine.add_composite_state(root, name)
    }

    /// Adds a composite state to a specific region; returns
    /// `(state, region)`.
    pub fn composite_in(
        &mut self,
        region: RegionId,
        name: impl Into<String>,
    ) -> (StateId, RegionId) {
        self.machine.add_composite_state(region, name)
    }

    /// Declares an event type (idempotent per name).
    pub fn event(&mut self, name: impl Into<String>) -> EventId {
        self.machine.add_event(name)
    }

    /// Sets the initial state of the root region.
    pub fn initial(&mut self, state: StateId) -> &mut Self {
        let root = self.machine.root();
        self.machine.region_mut(root).initial = Some(state);
        self
    }

    /// Sets the initial state of a specific region.
    pub fn initial_in(&mut self, region: RegionId, state: StateId) -> &mut Self {
        self.machine.region_mut(region).initial = Some(state);
        self
    }

    /// Sets the effect of a region's initial transition.
    pub fn initial_effect(&mut self, region: RegionId, effect: Vec<Action>) -> &mut Self {
        self.machine.region_mut(region).initial_effect = effect;
        self
    }

    /// Sets a state's entry behaviour.
    pub fn on_entry(&mut self, state: StateId, actions: Vec<Action>) -> &mut Self {
        self.machine.state_mut(state).entry = actions;
        self
    }

    /// Sets a state's exit behaviour.
    pub fn on_exit(&mut self, state: StateId, actions: Vec<Action>) -> &mut Self {
        self.machine.state_mut(state).exit = actions;
        self
    }

    /// Starts a transition from `source` to `target`; finish with
    /// [`TransitionBuilder::build`]. Without [`on`](TransitionBuilder::on)
    /// the transition is a completion transition.
    pub fn transition(&mut self, source: StateId, target: StateId) -> TransitionBuilder<'_> {
        TransitionBuilder {
            machine: &mut self.machine,
            transition: Transition {
                source,
                target,
                trigger: Trigger::Completion,
                guard: None,
                effect: Vec::new(),
            },
        }
    }

    /// Direct access to the machine under construction, for setups the
    /// fluent methods do not cover.
    pub fn machine_mut(&mut self) -> &mut StateMachine {
        &mut self.machine
    }

    /// Validates and returns the machine.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found if the model is malformed
    /// (see [`StateMachine::validate`]).
    pub fn finish(self) -> Result<StateMachine, ValidateError> {
        self.machine.validate()?;
        Ok(self.machine)
    }

    /// Returns the machine without validating. Useful in tests that build
    /// deliberately malformed models.
    pub fn finish_unchecked(self) -> StateMachine {
        self.machine
    }
}

/// In-progress transition; created by [`MachineBuilder::transition`].
#[derive(Debug)]
pub struct TransitionBuilder<'a> {
    machine: &'a mut StateMachine,
    transition: Transition,
}

impl TransitionBuilder<'_> {
    /// Sets the trigger to an event.
    pub fn on(mut self, event: EventId) -> Self {
        self.transition.trigger = Trigger::Event(event);
        self
    }

    /// Marks the transition as a completion transition (the default).
    pub fn on_completion(mut self) -> Self {
        self.transition.trigger = Trigger::Completion;
        self
    }

    /// Sets the guard.
    pub fn when(mut self, guard: Expr) -> Self {
        self.transition.guard = Some(guard);
        self
    }

    /// Sets the effect behaviour.
    pub fn then(mut self, effect: Vec<Action>) -> Self {
        self.transition.effect = effect;
        self
    }

    /// Adds the transition to the machine and returns its id.
    pub fn build(self) -> TransitionId {
        self.machine.add_transition(self.transition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn builds_valid_machine() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let f = b.final_state("End");
        let e = b.event("finish");
        b.initial(a);
        b.transition(a, f).on(e).build();
        let m = b.finish().expect("valid machine");
        assert_eq!(m.name(), "m");
        assert_eq!(m.states().count(), 2);
    }

    #[test]
    fn finish_rejects_missing_initial() {
        let mut b = MachineBuilder::new("m");
        let _a = b.state("A");
        assert!(b.finish().is_err());
    }

    #[test]
    fn transition_builder_sets_all_fields() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("C");
        let e = b.event("go");
        b.initial(a);
        let tid = b
            .transition(a, c)
            .on(e)
            .when(Expr::var("x").gt(Expr::int(0)))
            .then(vec![Action::emit("fired")])
            .build();
        b.variable("x", 0);
        let m = b.finish().expect("valid");
        let t = m.transition(tid);
        assert_eq!(t.trigger, Trigger::Event(e));
        assert!(t.guard.is_some());
        assert_eq!(t.effect.len(), 1);
    }

    #[test]
    fn composite_nests_regions() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (c, inner) = b.composite("C");
        let i1 = b.state_in(inner, "I1");
        let fin = b.final_state_in(inner, "IEnd");
        let e = b.event("go");
        let e2 = b.event("step");
        b.initial(a);
        b.initial_in(inner, i1);
        b.transition(a, c).on(e).build();
        b.transition(i1, fin).on(e2).build();
        b.transition(c, a).on_completion().build();
        let m = b.finish().expect("valid");
        assert_eq!(m.depth_of(i1), 1);
        assert_eq!(m.region(inner).owner, Some(c));
    }
}
