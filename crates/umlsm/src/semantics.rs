//! Semantic variation points.
//!
//! UML state machines deliberately leave several execution-semantics choices
//! open ("semantic variation points", §III.B of the paper). The paper fixes
//! one interpretation before generating code; this module makes the same
//! choices explicit and machine-checkable so that the model optimizer, the
//! interpreter and every code generator agree on one semantics — and so the
//! benches can *flip* a variation point to show which optimizations stop
//! being sound (Table II's "independent from semantics: NO" row).

use std::fmt;

/// How to resolve several enabled transitions for the same event occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConflictResolution {
    /// The transition of the innermost active state wins (UML default).
    #[default]
    InnermostFirst,
    /// The transition of the outermost active state wins.
    OutermostFirst,
}

/// What happens to an event occurrence no active state has a transition for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UnhandledEventPolicy {
    /// The event is silently discarded (UML default, and the paper's
    /// choice).
    #[default]
    Discard,
    /// The event is recorded as an observable `unhandled` emission. Useful
    /// when debugging generated code.
    Flag,
}

/// The fixed execution semantics of one machine.
///
/// # Example
///
/// ```
/// use umlsm::Semantics;
///
/// let s = Semantics::default();
/// assert!(s.completion_priority);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Semantics {
    /// If `true` (UML default, and the semantics the paper fixes),
    /// completion transitions fire eagerly during the run-to-completion
    /// step, *before* any further event is dispatched: "the completion
    /// transition is first fired whatever the received event is".
    ///
    /// The never-active-composite optimization (Fig. 1, row 2) is only sound
    /// under this setting — with `false` the optimizer must keep the
    /// composite.
    pub completion_priority: bool,
    /// Conflict resolution between nested enabled transitions.
    pub conflict: ConflictResolution,
    /// Policy for events no active state handles.
    pub unhandled: UnhandledEventPolicy,
    /// Safety bound on chained completion transitions within one
    /// run-to-completion step; exceeding it is reported as a model error
    /// (a completion-transition cycle would otherwise livelock).
    pub max_completion_chain: u32,
}

impl Default for Semantics {
    fn default() -> Self {
        Semantics {
            completion_priority: true,
            conflict: ConflictResolution::default(),
            unhandled: UnhandledEventPolicy::default(),
            max_completion_chain: 64,
        }
    }
}

impl Semantics {
    /// The semantics fixed by the paper before generating code: completion
    /// priority on, innermost-first conflict resolution, unhandled events
    /// discarded.
    pub fn paper() -> Self {
        Semantics::default()
    }

    /// A deliberately non-standard semantics where completion transitions
    /// only fire when no event-triggered transition is enabled. Used by the
    /// ablation benches: under this semantics the "never active composite"
    /// of Fig. 1 *is* reachable and must not be removed.
    pub fn completion_as_fallback() -> Self {
        Semantics {
            completion_priority: false,
            ..Semantics::default()
        }
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completion_priority={}, conflict={:?}, unhandled={:?}",
            self.completion_priority, self.conflict, self.unhandled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        assert_eq!(Semantics::default(), Semantics::paper());
    }

    #[test]
    fn fallback_disables_priority() {
        let s = Semantics::completion_as_fallback();
        assert!(!s.completion_priority);
        assert_eq!(s.conflict, ConflictResolution::InnermostFirst);
    }

    #[test]
    fn display_mentions_priority() {
        let text = Semantics::paper().to_string();
        assert!(text.contains("completion_priority=true"));
    }
}
