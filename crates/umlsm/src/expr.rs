//! The guard/action expression language.
//!
//! Guards on transitions and right-hand sides of assignments are written in
//! a deliberately small expression language over the machine's integer
//! context variables. The language is shared by the model interpreter, the
//! model optimizer (constant analysis of guards) and the code generators
//! (translation to target-language expressions).

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// The static type of an expression (see [`Expr::static_type`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprType {
    /// Integer-valued.
    Int,
    /// Boolean-valued.
    Bool,
}

/// A runtime value of the action language: an integer or a boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Interprets the value as a boolean.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::TypeMismatch`] if the value is an integer.
    pub fn as_bool(self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(b),
            Value::Int(_) => Err(EvalError::TypeMismatch {
                expected: "bool",
                found: "int",
            }),
        }
    }

    /// Interprets the value as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::TypeMismatch`] if the value is a boolean.
    pub fn as_int(self) -> Result<i64, EvalError> {
        match self {
            Value::Int(i) => Ok(i),
            Value::Bool(_) => Err(EvalError::TypeMismatch {
                expected: "int",
                found: "bool",
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division; division by zero evaluates to zero, mirroring the
    /// saturating semantics the generated embedded code uses.
    Div,
    /// Integer remainder; remainder by zero evaluates to zero.
    Rem,
    /// Equality on two values of the same type.
    Eq,
    /// Inequality on two values of the same type.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Boolean conjunction (non-short-circuit at the model level).
    And,
    /// Boolean disjunction (non-short-circuit at the model level).
    Or,
}

impl BinOp {
    /// Returns the surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// An expression over the machine's context variables.
///
/// # Example
///
/// ```
/// use umlsm::Expr;
///
/// // speed >= 30
/// let guard = Expr::var("speed").ge(Expr::int(30));
/// assert_eq!(guard.to_string(), "(speed >= 30)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Reference to a context variable.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// An evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A referenced variable is not defined by the machine.
    UnknownVariable(String),
    /// An operator was applied to a value of the wrong type.
    TypeMismatch {
        /// The type the operator required.
        expected: &'static str,
        /// The type that was found.
        found: &'static str,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            EvalError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

// The fluent builders intentionally shadow the `std::ops` method names:
// `a.add(b)` builds an AST node by value, it does not evaluate, so
// implementing the operator traits would misleadingly suggest arithmetic.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Builds an integer literal.
    pub fn int(value: i64) -> Expr {
        Expr::Int(value)
    }

    /// Builds a boolean literal.
    pub fn bool(value: bool) -> Expr {
        Expr::Bool(value)
    }

    /// Builds a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Builds `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// Builds `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// Builds `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// Builds `self / rhs` (division by zero yields zero).
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// Builds `self % rhs` (remainder by zero yields zero).
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Rem, Box::new(self), Box::new(rhs))
    }

    /// Builds `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// Builds `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// Builds `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// Builds `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// Builds `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(rhs))
    }

    /// Builds `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(rhs))
    }

    /// Builds `self && rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// Builds `self || rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// Builds `!self`.
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }

    /// Builds `-self`.
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }

    /// Evaluates the expression in `env`.
    ///
    /// # Errors
    ///
    /// Returns an error if a variable is undefined or an operator is applied
    /// to a value of the wrong type.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> Result<Value, EvalError> {
        match self {
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Var(name) => env
                .get(name)
                .map(|v| Value::Int(*v))
                .ok_or_else(|| EvalError::UnknownVariable(name.clone())),
            Expr::Unary(op, inner) => {
                let v = inner.eval(env)?;
                match op {
                    UnOp::Neg => Ok(Value::Int(v.as_int()?.wrapping_neg())),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                eval_binop(*op, l, r)
            }
        }
    }

    /// Folds constant sub-expressions, returning a simplified expression.
    ///
    /// Folding never changes evaluation results: ill-typed constant
    /// sub-expressions are left untouched so that [`eval`](Self::eval) still
    /// reports the same error.
    pub fn fold(&self) -> Expr {
        match self {
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) => self.clone(),
            Expr::Unary(op, inner) => {
                let inner = inner.fold();
                if let Some(v) = const_value(&inner) {
                    let folded = match op {
                        UnOp::Neg => v.as_int().map(|i| Expr::Int(i.wrapping_neg())),
                        UnOp::Not => v.as_bool().map(|b| Expr::Bool(!b)),
                    };
                    if let Ok(folded) = folded {
                        return folded;
                    }
                }
                Expr::Unary(*op, Box::new(inner))
            }
            Expr::Binary(op, lhs, rhs) => {
                let lhs = lhs.fold();
                let rhs = rhs.fold();
                if let (Some(l), Some(r)) = (const_value(&lhs), const_value(&rhs)) {
                    if let Ok(v) = eval_binop(*op, l, r) {
                        return match v {
                            Value::Int(i) => Expr::Int(i),
                            Value::Bool(b) => Expr::Bool(b),
                        };
                    }
                }
                // Algebraic identities that require only one constant side.
                // Sound only when the non-constant side is well-typed
                // boolean for every environment: otherwise folding would
                // hide the evaluation error the original expression raises.
                match (*op, &lhs, &rhs) {
                    (BinOp::And, Expr::Bool(false), other)
                    | (BinOp::And, other, Expr::Bool(false))
                        if other.static_type() == Some(ExprType::Bool) =>
                    {
                        return Expr::Bool(false)
                    }
                    (BinOp::Or, Expr::Bool(true), other) | (BinOp::Or, other, Expr::Bool(true))
                        if other.static_type() == Some(ExprType::Bool) =>
                    {
                        return Expr::Bool(true)
                    }
                    (BinOp::And, Expr::Bool(true), other)
                    | (BinOp::And, other, Expr::Bool(true))
                    | (BinOp::Or, Expr::Bool(false), other)
                    | (BinOp::Or, other, Expr::Bool(false))
                        if other.static_type() == Some(ExprType::Bool) =>
                    {
                        return other.clone()
                    }
                    _ => {}
                }
                Expr::Binary(*op, Box::new(lhs), Box::new(rhs))
            }
        }
    }

    /// Infers the expression's static type, or `None` if the expression is
    /// ill-typed for some (equivalently, every) environment. Variables are
    /// integers; a `Some` result guarantees evaluation never fails in an
    /// environment declaring all free variables.
    pub fn static_type(&self) -> Option<ExprType> {
        match self {
            Expr::Int(_) => Some(ExprType::Int),
            Expr::Bool(_) => Some(ExprType::Bool),
            Expr::Var(_) => Some(ExprType::Int),
            Expr::Unary(UnOp::Neg, e) => {
                (e.static_type()? == ExprType::Int).then_some(ExprType::Int)
            }
            Expr::Unary(UnOp::Not, e) => {
                (e.static_type()? == ExprType::Bool).then_some(ExprType::Bool)
            }
            Expr::Binary(op, l, r) => {
                let (lt, rt) = (l.static_type()?, r.static_type()?);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        (lt == ExprType::Int && rt == ExprType::Int).then_some(ExprType::Int)
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        (lt == ExprType::Int && rt == ExprType::Int).then_some(ExprType::Bool)
                    }
                    BinOp::Eq | BinOp::Ne => (lt == rt).then_some(ExprType::Bool),
                    BinOp::And | BinOp::Or => {
                        (lt == ExprType::Bool && rt == ExprType::Bool).then_some(ExprType::Bool)
                    }
                }
            }
        }
    }

    /// Returns `true` if the expression folds to the literal `true`.
    pub fn is_const_true(&self) -> bool {
        matches!(self.fold(), Expr::Bool(true))
    }

    /// Returns `true` if the expression folds to the literal `false`.
    pub fn is_const_false(&self) -> bool {
        matches!(self.fold(), Expr::Bool(false))
    }

    /// Collects the names of all variables referenced by the expression.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Int(_) | Expr::Bool(_) => {}
            Expr::Var(name) => {
                out.insert(name.clone());
            }
            Expr::Unary(_, inner) => inner.collect_vars(out),
            Expr::Binary(_, lhs, rhs) => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }
}

fn const_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Int(i) => Some(Value::Int(*i)),
        Expr::Bool(b) => Some(Value::Bool(*b)),
        _ => None,
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Add => Ok(Value::Int(l.as_int()?.wrapping_add(r.as_int()?))),
        Sub => Ok(Value::Int(l.as_int()?.wrapping_sub(r.as_int()?))),
        Mul => Ok(Value::Int(l.as_int()?.wrapping_mul(r.as_int()?))),
        Div => {
            let (a, b) = (l.as_int()?, r.as_int()?);
            Ok(Value::Int(if b == 0 { 0 } else { a.wrapping_div(b) }))
        }
        Rem => {
            let (a, b) = (l.as_int()?, r.as_int()?);
            Ok(Value::Int(if b == 0 { 0 } else { a.wrapping_rem(b) }))
        }
        Eq => Ok(Value::Bool(values_equal(l, r)?)),
        Ne => Ok(Value::Bool(!values_equal(l, r)?)),
        Lt => Ok(Value::Bool(l.as_int()? < r.as_int()?)),
        Le => Ok(Value::Bool(l.as_int()? <= r.as_int()?)),
        Gt => Ok(Value::Bool(l.as_int()? > r.as_int()?)),
        Ge => Ok(Value::Bool(l.as_int()? >= r.as_int()?)),
        And => Ok(Value::Bool(l.as_bool()? && r.as_bool()?)),
        Or => Ok(Value::Bool(l.as_bool()? || r.as_bool()?)),
    }
}

fn values_equal(l: Value, r: Value) -> Result<bool, EvalError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(a == b),
        (Value::Bool(a), Value::Bool(b)) => Ok(a == b),
        (Value::Int(_), Value::Bool(_)) | (Value::Bool(_), Value::Int(_)) => {
            Err(EvalError::TypeMismatch {
                expected: "operands of one type",
                found: "mixed int/bool",
            })
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Unary(UnOp::Neg, inner) => write!(f, "(-{inner})"),
            Expr::Unary(UnOp::Not, inner) => write!(f, "(!{inner})"),
            Expr::Binary(op, lhs, rhs) => write!(f, "({lhs} {} {rhs})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = Expr::var("x").add(Expr::int(2)).mul(Expr::int(3));
        assert_eq!(e.eval(&env(&[("x", 4)])), Ok(Value::Int(18)));
    }

    #[test]
    fn division_by_zero_is_zero() {
        let e = Expr::int(7).div(Expr::int(0));
        assert_eq!(e.eval(&env(&[])), Ok(Value::Int(0)));
        let e = Expr::int(7).rem(Expr::int(0));
        assert_eq!(e.eval(&env(&[])), Ok(Value::Int(0)));
    }

    #[test]
    fn comparison_and_logic() {
        let e = Expr::var("a")
            .lt(Expr::int(10))
            .and(Expr::var("b").ge(Expr::int(0)));
        assert_eq!(e.eval(&env(&[("a", 3), ("b", 0)])), Ok(Value::Bool(true)));
        assert_eq!(e.eval(&env(&[("a", 30), ("b", 0)])), Ok(Value::Bool(false)));
    }

    #[test]
    fn unknown_variable_errors() {
        let e = Expr::var("missing");
        assert_eq!(
            e.eval(&env(&[])),
            Err(EvalError::UnknownVariable("missing".into()))
        );
    }

    #[test]
    fn type_mismatch_errors() {
        let e = Expr::bool(true).add(Expr::int(1));
        assert!(matches!(
            e.eval(&env(&[])),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn fold_constants() {
        let e = Expr::int(2).add(Expr::int(3)).mul(Expr::int(4));
        assert_eq!(e.fold(), Expr::Int(20));
    }

    #[test]
    fn fold_short_circuits_logic() {
        let e = Expr::bool(false).and(Expr::var("x").eq(Expr::int(1)));
        assert_eq!(e.fold(), Expr::Bool(false));
        let e = Expr::bool(true).or(Expr::var("x").eq(Expr::int(1)));
        assert_eq!(e.fold(), Expr::Bool(true));
        let e = Expr::bool(true).and(Expr::var("x").eq(Expr::int(1)));
        assert_eq!(e.fold(), Expr::var("x").eq(Expr::int(1)));
    }

    #[test]
    fn fold_keeps_ill_typed_expressions() {
        // (true + 1) must keep failing at eval time, so fold leaves it alone.
        let e = Expr::bool(true).add(Expr::int(1));
        assert_eq!(e.fold(), e);
    }

    #[test]
    fn const_true_false_detection() {
        assert!(Expr::int(1).eq(Expr::int(1)).is_const_true());
        assert!(Expr::int(1).eq(Expr::int(2)).is_const_false());
        assert!(!Expr::var("x").eq(Expr::int(2)).is_const_true());
    }

    #[test]
    fn free_vars_collects_all() {
        let e = Expr::var("a").add(Expr::var("b")).lt(Expr::var("a"));
        let vars = e.free_vars();
        assert_eq!(
            vars.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::var("x").add(Expr::int(1)).le(Expr::int(5));
        assert_eq!(e.to_string(), "((x + 1) <= 5)");
    }

    #[test]
    fn neg_wraps() {
        let e = Expr::int(i64::MIN).neg();
        assert_eq!(e.eval(&env(&[])), Ok(Value::Int(i64::MIN)));
    }
}
