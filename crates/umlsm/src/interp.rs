//! Reference interpreter: executable run-to-completion semantics.
//!
//! The interpreter is the behavioural oracle of the toolchain. Model
//! optimizations must preserve its *observable trace* (the sequence of
//! [`Action::Emit`](crate::Action::Emit) occurrences), and generated +
//! compiled code is checked against the same trace end-to-end.
//!
//! The semantics implemented here is the one the paper fixes before
//! generating code (see [`Semantics`](crate::Semantics)): in particular,
//! when [`completion_priority`](crate::Semantics::completion_priority) is
//! set, enabled completion transitions fire eagerly during the
//! run-to-completion step — "the completion transition is first fired
//! whatever the received event is" — which is what makes the composite state
//! of the paper's Fig. 1 unreachable.

use std::collections::BTreeMap;
use std::fmt;

use crate::action::Action;
use crate::expr::EvalError;
use crate::ids::{EventId, StateId};
use crate::machine::{StateKind, StateMachine, Trigger};
use crate::semantics::{ConflictResolution, UnhandledEventPolicy};

/// One entry of an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A state was entered (after its entry actions ran).
    Enter(String),
    /// A state was exited (after its exit actions ran).
    Exit(String),
    /// An observable signal emission.
    Emit {
        /// Signal name.
        signal: String,
        /// Payload (0 when the emission carried none).
        arg: i64,
    },
    /// An event occurrence was dispatched to the machine.
    Dispatch(String),
    /// An event occurrence was discarded (no enabled transition).
    Discard(String),
    /// A completion transition fired.
    Completion {
        /// Source state name.
        from: String,
        /// Target state name.
        to: String,
    },
    /// The machine reached a top-level final state.
    Terminated,
}

/// A full execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Trace entries in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Projects the trace onto its observable part: the emissions.
    ///
    /// This is the behaviour that model optimization and code generation
    /// must preserve bit-for-bit.
    pub fn observable(&self) -> Vec<(String, i64)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Emit { signal, arg } => Some((signal.clone(), *arg)),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            match e {
                TraceEvent::Enter(s) => writeln!(f, "enter {s}")?,
                TraceEvent::Exit(s) => writeln!(f, "exit {s}")?,
                TraceEvent::Emit { signal, arg } => writeln!(f, "emit {signal}({arg})")?,
                TraceEvent::Dispatch(e) => writeln!(f, "dispatch {e}")?,
                TraceEvent::Discard(e) => writeln!(f, "discard {e}")?,
                TraceEvent::Completion { from, to } => writeln!(f, "completion {from} -> {to}")?,
                TraceEvent::Terminated => writeln!(f, "terminated")?,
            }
        }
        Ok(())
    }
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A guard or action failed to evaluate.
    Eval(EvalError),
    /// More chained completion transitions fired in one run-to-completion
    /// step than [`Semantics::max_completion_chain`] allows — the model
    /// contains a completion cycle.
    ///
    /// [`Semantics::max_completion_chain`]: crate::Semantics::max_completion_chain
    CompletionLoop {
        /// The state at which the bound was hit.
        state: String,
    },
    /// The machine has no initial state to start from.
    NoInitialState,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Eval(e) => write!(f, "evaluation failed: {e}"),
            InterpError::CompletionLoop { state } => {
                write!(f, "completion transition loop detected at `{state}`")
            }
            InterpError::NoInitialState => write!(f, "machine has no initial state"),
        }
    }
}

impl std::error::Error for InterpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InterpError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for InterpError {
    fn from(e: EvalError) -> Self {
        InterpError::Eval(e)
    }
}

/// An executing instance of a state machine.
///
/// # Example
///
/// ```
/// use umlsm::{Action, Interp, MachineBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = MachineBuilder::new("m");
/// let a = b.state("A");
/// let c = b.state("B");
/// let go = b.event("go");
/// b.initial(a);
/// b.on_entry(c, vec![Action::emit("arrived")]);
/// b.transition(a, c).on(go).build();
/// let m = b.finish()?;
///
/// let mut interp = Interp::new(&m)?;
/// interp.step(go)?;
/// assert_eq!(interp.trace().observable(), vec![("arrived".to_string(), 0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interp<'m> {
    machine: &'m StateMachine,
    vars: BTreeMap<String, i64>,
    /// Active state path: `config[0]` is the active state of the root
    /// region, `config[i + 1]` the active substate of `config[i]`.
    config: Vec<StateId>,
    trace: Trace,
    terminated: bool,
}

impl<'m> Interp<'m> {
    /// Creates an instance and performs the initial entry (including the
    /// initial run-to-completion step under completion-priority semantics).
    ///
    /// # Errors
    ///
    /// Returns an error if the machine has no initial state, if an
    /// expression fails to evaluate, or if completion transitions cycle.
    pub fn new(machine: &'m StateMachine) -> Result<Interp<'m>, InterpError> {
        let mut interp = Interp {
            machine,
            vars: machine.variables().clone(),
            config: Vec::new(),
            trace: Trace::default(),
            terminated: false,
        };
        let root = machine.root();
        let initial = machine
            .region(root)
            .initial
            .ok_or(InterpError::NoInitialState)?;
        let effect = machine.region(root).initial_effect.clone();
        interp.run_actions(&effect)?;
        interp.enter_state(initial)?;
        if machine.semantics().completion_priority {
            interp.run_to_completion()?;
        }
        Ok(interp)
    }

    /// The machine being executed.
    pub fn machine(&self) -> &'m StateMachine {
        self.machine
    }

    /// Current values of the context variables.
    pub fn vars(&self) -> &BTreeMap<String, i64> {
        &self.vars
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Names of the active states, outermost first.
    pub fn configuration(&self) -> Vec<String> {
        self.config
            .iter()
            .map(|s| self.machine.state(*s).name.clone())
            .collect()
    }

    /// `true` once a top-level final state has been reached.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Dispatches one event occurrence and runs a full run-to-completion
    /// step.
    ///
    /// # Errors
    ///
    /// Returns an error if an expression fails to evaluate or completion
    /// transitions cycle.
    pub fn step(&mut self, event: EventId) -> Result<(), InterpError> {
        let name = self.machine.event(event).name.clone();
        self.trace.events.push(TraceEvent::Dispatch(name.clone()));
        if self.terminated {
            self.discard(&name);
            return Ok(());
        }
        // Select an enabled event-triggered transition per the conflict
        // resolution policy.
        if let Some((depth, tid)) = self.select_transition(Some(event))? {
            self.fire(depth, tid)?;
            if self.machine.semantics().completion_priority {
                self.run_to_completion()?;
            }
            return Ok(());
        }
        // Fallback semantics (ablation): completion transitions fire only
        // when no event-triggered transition handled the occurrence.
        if !self.machine.semantics().completion_priority {
            if let Some((depth, tid)) = self.select_transition(None)? {
                self.fire(depth, tid)?;
                return Ok(());
            }
        }
        self.discard(&name);
        Ok(())
    }

    /// Dispatches an event looked up by name. Unknown names are recorded as
    /// discarded occurrences (the environment sent an event the machine does
    /// not declare).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`step`](Self::step).
    pub fn step_by_name(&mut self, name: &str) -> Result<(), InterpError> {
        match self.machine.event_by_name(name) {
            Some(e) => self.step(e),
            None => {
                self.trace
                    .events
                    .push(TraceEvent::Dispatch(name.to_string()));
                self.discard(name);
                Ok(())
            }
        }
    }

    /// Dispatches a sequence of events.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`step`](Self::step).
    pub fn run(&mut self, events: &[EventId]) -> Result<(), InterpError> {
        for e in events {
            self.step(*e)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------

    fn discard(&mut self, name: &str) {
        match self.machine.semantics().unhandled {
            UnhandledEventPolicy::Discard => {
                self.trace
                    .events
                    .push(TraceEvent::Discard(name.to_string()));
            }
            UnhandledEventPolicy::Flag => {
                self.trace
                    .events
                    .push(TraceEvent::Discard(name.to_string()));
                self.trace.events.push(TraceEvent::Emit {
                    signal: "unhandled".to_string(),
                    arg: 0,
                });
            }
        }
    }

    /// Finds the highest-priority enabled transition. `event: Some(e)`
    /// selects event-triggered transitions for `e`; `None` selects
    /// completion transitions (whose sources must be complete).
    fn select_transition(
        &self,
        event: Option<EventId>,
    ) -> Result<Option<(usize, crate::ids::TransitionId)>, InterpError> {
        let depths: Vec<usize> = match self.machine.semantics().conflict {
            ConflictResolution::InnermostFirst => (0..self.config.len()).rev().collect(),
            ConflictResolution::OutermostFirst => (0..self.config.len()).collect(),
        };
        for depth in depths {
            let sid = self.config[depth];
            if event.is_none() && !self.state_is_complete(depth) {
                continue;
            }
            for tid in self.machine.transitions_from(sid) {
                let t = self.machine.transition(tid);
                let wanted = match (event, t.trigger) {
                    (Some(e), Trigger::Event(te)) => e == te,
                    (None, Trigger::Completion) => true,
                    _ => false,
                };
                if !wanted {
                    continue;
                }
                if let Some(guard) = &t.guard {
                    if !guard.eval(&self.vars)?.as_bool()? {
                        continue;
                    }
                }
                return Ok(Some((depth, tid)));
            }
        }
        Ok(None)
    }

    /// A state of the active configuration is *complete* when it can take
    /// completion transitions: simple states immediately, composite states
    /// once their region's active state is final (or the region is empty).
    fn state_is_complete(&self, depth: usize) -> bool {
        let sid = self.config[depth];
        match self.machine.state(sid).kind {
            StateKind::Simple | StateKind::Final => true,
            StateKind::Composite(_) => match self.config.get(depth + 1) {
                None => true,
                Some(sub) => self.machine.state(*sub).is_final(),
            },
        }
    }

    fn fire(&mut self, depth: usize, tid: crate::ids::TransitionId) -> Result<(), InterpError> {
        let t = self.machine.transition(tid).clone();
        if t.is_completion() {
            self.trace.events.push(TraceEvent::Completion {
                from: self.machine.state(t.source).name.clone(),
                to: self.machine.state(t.target).name.clone(),
            });
        }
        // Exit the source state and everything nested in it, innermost
        // first.
        while self.config.len() > depth {
            let sid = self.config.pop().expect("non-empty config");
            let exit = self.machine.state(sid).exit.clone();
            self.run_actions(&exit)?;
            self.trace
                .events
                .push(TraceEvent::Exit(self.machine.state(sid).name.clone()));
        }
        self.run_actions(&t.effect)?;
        self.enter_state(t.target)?;
        Ok(())
    }

    fn enter_state(&mut self, sid: StateId) -> Result<(), InterpError> {
        let state = self.machine.state(sid).clone();
        self.run_actions(&state.entry)?;
        self.trace
            .events
            .push(TraceEvent::Enter(state.name.clone()));
        self.config.push(sid);
        if state.is_final() && state.parent == self.machine.root() {
            self.terminated = true;
            self.trace.events.push(TraceEvent::Terminated);
        }
        if let StateKind::Composite(region) = state.kind {
            let r = self.machine.region(region).clone();
            if let Some(initial) = r.initial {
                self.run_actions(&r.initial_effect)?;
                self.enter_state(initial)?;
            }
        }
        Ok(())
    }

    fn run_to_completion(&mut self) -> Result<(), InterpError> {
        let max = self.machine.semantics().max_completion_chain;
        for _ in 0..max {
            match self.select_transition(None)? {
                Some((depth, tid)) => self.fire(depth, tid)?,
                None => return Ok(()),
            }
        }
        let state = self
            .config
            .last()
            .map(|s| self.machine.state(*s).name.clone())
            .unwrap_or_default();
        Err(InterpError::CompletionLoop { state })
    }

    fn run_actions(&mut self, actions: &[Action]) -> Result<(), InterpError> {
        for a in actions {
            self.run_action(a)?;
        }
        Ok(())
    }

    fn run_action(&mut self, action: &Action) -> Result<(), InterpError> {
        match action {
            Action::Assign { var, value } => {
                let v = value.eval(&self.vars)?.as_int()?;
                self.vars.insert(var.clone(), v);
            }
            Action::Emit { signal, arg } => {
                let arg = match arg {
                    Some(a) => a.eval(&self.vars)?.as_int()?,
                    None => 0,
                };
                self.trace.events.push(TraceEvent::Emit {
                    signal: signal.clone(),
                    arg,
                });
            }
            Action::If {
                cond,
                then_actions,
                else_actions,
            } => {
                if cond.eval(&self.vars)?.as_bool()? {
                    self.run_actions(then_actions)?;
                } else {
                    self.run_actions(else_actions)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MachineBuilder;
    use crate::expr::Expr;
    use crate::semantics::Semantics;

    fn two_state() -> (StateMachine, EventId) {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        let go = b.event("go");
        b.initial(a);
        b.on_entry(a, vec![Action::emit("in_a")]);
        b.on_exit(a, vec![Action::emit("out_a")]);
        b.on_entry(c, vec![Action::emit("in_b")]);
        b.transition(a, c)
            .on(go)
            .then(vec![Action::emit("effect")])
            .build();
        (b.finish().expect("valid"), go)
    }

    #[test]
    fn entry_exit_effect_order() {
        let (m, go) = two_state();
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("step");
        assert_eq!(
            i.trace().observable(),
            vec![
                ("in_a".to_string(), 0),
                ("out_a".to_string(), 0),
                ("effect".to_string(), 0),
                ("in_b".to_string(), 0),
            ]
        );
        assert_eq!(i.configuration(), vec!["B".to_string()]);
    }

    #[test]
    fn unmatched_event_is_discarded() {
        let (m, _) = two_state();
        let mut i = Interp::new(&m).expect("start");
        i.step_by_name("nonsense").expect("step");
        assert!(i
            .trace()
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Discard(_))));
        assert_eq!(i.configuration(), vec!["A".to_string()]);
    }

    #[test]
    fn guard_blocks_transition() {
        let mut b = MachineBuilder::new("m");
        b.variable("x", 0);
        let a = b.state("A");
        let c = b.state("B");
        let go = b.event("go");
        let inc = b.event("inc");
        b.initial(a);
        b.transition(a, c)
            .on(go)
            .when(Expr::var("x").ge(Expr::int(2)))
            .build();
        b.transition(a, a)
            .on(inc)
            .then(vec![Action::assign("x", Expr::var("x").add(Expr::int(1)))])
            .build();
        let m = b.finish().expect("valid");
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("blocked");
        assert_eq!(i.configuration(), vec!["A".to_string()]);
        i.step(inc).expect("inc");
        i.step(inc).expect("inc");
        i.step(go).expect("now enabled");
        assert_eq!(i.configuration(), vec!["B".to_string()]);
        assert_eq!(i.vars()["x"], 2);
    }

    #[test]
    fn completion_priority_shadows_event_transition() {
        // The paper's Fig. 1 row 2 situation: S2 has an unguarded completion
        // transition to a final state AND an event transition to S3. Under
        // completion-priority semantics, S3 is never entered.
        let mut b = MachineBuilder::new("m");
        let s1 = b.state("S1");
        let s2 = b.state("S2");
        let s3 = b.state("S3");
        let fin = b.final_state("End");
        let e1 = b.event("e1");
        let e2 = b.event("e2");
        b.initial(s1);
        b.on_entry(s3, vec![Action::emit("entered_s3")]);
        b.transition(s1, s2).on(e1).build();
        b.transition(s2, s3).on(e2).build();
        b.transition(s2, fin).on_completion().build();
        let m = b.finish().expect("valid");

        let mut i = Interp::new(&m).expect("start");
        i.step(e1).expect("to s2, then completion to End");
        assert!(i.is_terminated());
        i.step(e2).expect("discarded after termination");
        assert!(i.trace().observable().is_empty(), "S3 never entered");
    }

    #[test]
    fn fallback_semantics_reaches_shadowed_state() {
        // Same machine, ablation semantics: e2 beats the completion
        // transition, so S3 *is* reachable — the optimization would be
        // unsound here.
        let mut b = MachineBuilder::new("m");
        b.semantics(Semantics::completion_as_fallback());
        let s1 = b.state("S1");
        let s2 = b.state("S2");
        let s3 = b.state("S3");
        let fin = b.final_state("End");
        let e1 = b.event("e1");
        let e2 = b.event("e2");
        b.initial(s1);
        b.on_entry(s3, vec![Action::emit("entered_s3")]);
        b.transition(s1, s2).on(e1).build();
        b.transition(s2, s3).on(e2).build();
        b.transition(s2, fin).on_completion().build();
        let m = b.finish().expect("valid");

        let mut i = Interp::new(&m).expect("start");
        i.step(e1).expect("to s2");
        i.step(e2).expect("to s3");
        assert_eq!(i.trace().observable(), vec![("entered_s3".to_string(), 0)]);
    }

    #[test]
    fn composite_entry_descends_to_initial() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (c, inner) = b.composite("C");
        let i1 = b.state_in(inner, "I1");
        let go = b.event("go");
        b.initial(a);
        b.initial_in(inner, i1);
        b.on_entry(c, vec![Action::emit("in_c")]);
        b.on_entry(i1, vec![Action::emit("in_i1")]);
        b.transition(a, c).on(go).build();
        let m = b.finish().expect("valid");
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("step");
        assert_eq!(i.configuration(), vec!["C".to_string(), "I1".to_string()]);
        assert_eq!(
            i.trace().observable(),
            vec![("in_c".to_string(), 0), ("in_i1".to_string(), 0)]
        );
    }

    #[test]
    fn composite_completion_fires_when_region_finishes() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (c, inner) = b.composite("C");
        let i1 = b.state_in(inner, "I1");
        let ifin = b.final_state_in(inner, "IEnd");
        let d = b.state("D");
        let go = b.event("go");
        let finish = b.event("finish");
        b.initial(a);
        b.initial_in(inner, i1);
        b.on_entry(d, vec![Action::emit("in_d")]);
        b.transition(a, c).on(go).build();
        b.transition(i1, ifin).on(finish).build();
        b.transition(c, d).on_completion().build();
        let m = b.finish().expect("valid");
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("enter composite");
        assert_eq!(i.configuration(), vec!["C".to_string(), "I1".to_string()]);
        i.step(finish).expect("finish region; completion to D");
        assert_eq!(i.configuration(), vec!["D".to_string()]);
        assert_eq!(i.trace().observable(), vec![("in_d".to_string(), 0)]);
    }

    #[test]
    fn event_on_composite_exits_substates_innermost_first() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (c, inner) = b.composite("C");
        let i1 = b.state_in(inner, "I1");
        let go = b.event("go");
        let abort = b.event("abort");
        b.initial(a);
        b.initial_in(inner, i1);
        b.on_exit(i1, vec![Action::emit("out_i1")]);
        b.on_exit(c, vec![Action::emit("out_c")]);
        b.transition(a, c).on(go).build();
        b.transition(c, a).on(abort).build();
        let m = b.finish().expect("valid");
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("in");
        i.step(abort).expect("out");
        assert_eq!(
            i.trace().observable(),
            vec![("out_i1".to_string(), 0), ("out_c".to_string(), 0)]
        );
        assert_eq!(i.configuration(), vec!["A".to_string()]);
    }

    #[test]
    fn innermost_transition_wins_conflicts() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (c, inner) = b.composite("C");
        let i1 = b.state_in(inner, "I1");
        let i2 = b.state_in(inner, "I2");
        let go = b.event("go");
        let tick = b.event("tick");
        b.initial(a);
        b.initial_in(inner, i1);
        b.on_entry(i2, vec![Action::emit("inner_won")]);
        b.transition(a, c).on(go).build();
        // Both the composite and the inner state react to `tick`.
        b.transition(c, a).on(tick).build();
        b.transition(i1, i2).on(tick).build();
        let m = b.finish().expect("valid");
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("in");
        i.step(tick).expect("conflict");
        assert_eq!(i.trace().observable(), vec![("inner_won".to_string(), 0)]);
        assert_eq!(i.configuration(), vec!["C".to_string(), "I2".to_string()]);
    }

    #[test]
    fn completion_loop_is_detected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        b.initial(a);
        b.transition(a, c).on_completion().build();
        b.transition(c, a).on_completion().build();
        let m = b.finish().expect("valid");
        assert!(matches!(
            Interp::new(&m),
            Err(InterpError::CompletionLoop { .. })
        ));
    }

    #[test]
    fn self_transition_exits_and_reenters() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let go = b.event("go");
        b.initial(a);
        b.on_entry(a, vec![Action::emit("enter")]);
        b.on_exit(a, vec![Action::emit("exit")]);
        b.transition(a, a).on(go).build();
        let m = b.finish().expect("valid");
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("self");
        assert_eq!(
            i.trace().observable(),
            vec![
                ("enter".to_string(), 0),
                ("exit".to_string(), 0),
                ("enter".to_string(), 0)
            ]
        );
    }

    #[test]
    fn emit_with_argument_evaluates_payload() {
        let mut b = MachineBuilder::new("m");
        b.variable("x", 20);
        let a = b.state("A");
        let go = b.event("go");
        b.initial(a);
        b.transition(a, a)
            .on(go)
            .then(vec![
                Action::assign("x", Expr::var("x").add(Expr::int(3))),
                Action::emit_arg("level", Expr::var("x")),
            ])
            .build();
        let m = b.finish().expect("valid");
        let mut i = Interp::new(&m).expect("start");
        i.step(go).expect("step");
        assert_eq!(i.trace().observable(), vec![("level".to_string(), 23)]);
    }
}
