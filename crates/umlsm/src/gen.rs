//! Seeded random-machine generation and a line-based text form for
//! regression corpora.
//!
//! This module is the scenario scale-out substrate: the five hand-written
//! [`samples`](crate::samples) exercise the toolchain on machines a human
//! thought of, while [`generate`] produces an unbounded, *fully
//! deterministic* stream of machines over the whole implemented feature
//! space — hierarchy depth, guard density, completion-transition chains,
//! final states, unreachable states, variable counts — for the
//! differential fuzz harness (`bench::fuzz`) to drive through every code
//! generator and optimization level against the [`Interp`](crate::Interp)
//! oracle.
//!
//! # Determinism
//!
//! `generate(seed, cfg)` is a pure function of its arguments: the same
//! seed and knobs produce a byte-identical machine (asserted via
//! [`to_text`]) on every run, on every thread, in any order. All
//! randomness comes from a self-contained [`GenRng`] (splitmix64); no
//! global state, time, or platform entropy is consulted. That is what
//! makes a fuzz finding reproducible from its seed alone.
//!
//! # Generated shape invariants
//!
//! Every generated machine passes [`validate`](crate::StateMachine::validate)
//! *by construction*, and stays inside the subset the code generators
//! accept (the paper's fixed semantics — completion priority on,
//! innermost-first; history pseudostates and orthogonal regions are
//! outside the implemented subset, so the generator does not produce
//! them):
//!
//! * every region holds at least one non-final state, and its first
//!   non-final state is the region's initial state;
//! * completion transitions only target *later* states (in creation
//!   order) of the same region, so chained completion transitions form a
//!   DAG — the static acyclicity check of the code generators and the
//!   interpreter's chain bound can never fire;
//! * guards are well-typed boolean expressions; assignments drift each
//!   variable by a small bounded step (`±4`, a small constant, or a
//!   modulus), keeping every intermediate value inside `i32` for the
//!   sequence lengths the harness drives, so the model's `i64` arithmetic
//!   and the EM32's `i32` arithmetic cannot diverge by overflow alone;
//! * a knob-controlled fraction of states is left unreachable (no
//!   incoming arc), exercising the optimizer's dead-state analysis.
//!
//! # Text form
//!
//! [`to_text`] / [`from_text`] round-trip a machine through a line-based
//! format used for the committed regression corpus (`tests/regressions/`
//! at the workspace root). The format preserves everything dispatch
//! priority depends on: per-region state order and global transition
//! order. Grammar (one declaration per line, `#` starts a comment):
//!
//! ```text
//! machine <name>
//! chain <max-completion-chain>
//! var <name> <initial>
//! event <name>
//! state <name> <region>        region = `root` or owning composite name
//! composite <name> <region>
//! final <name> <region>
//! initial <region> <state>
//! ieffect <region> <action>...
//! entry <state> <action>...
//! exit <state> <action>...
//! t <src> <dst> <event|--> [when <expr>] [do <action>...]
//! ```
//!
//! `--` marks a completion trigger. Expressions and actions are
//! s-expressions: `(v x)`, `42`, `true`, `(+ a b)`, `(neg a)`,
//! `(not a)`, `(set x e)`, `(emit sig)`, `(emit1 sig e)`,
//! `(if c (then a...) (else a...))`. [`from_text`] validates the parsed
//! machine, so a corpus file can never smuggle an ill-formed model into a
//! test run. To promote a fuzz divergence to a regression, serialize the
//! shrunk machine with [`to_text`], append its event sequence as an
//! `events <name>...` line, and drop the file in `tests/regressions/`
//! (the `fuzz` bench binary does this with `FUZZ_PROMOTE=1`).

use std::collections::BTreeMap;
use std::fmt;

use crate::action::Action;
use crate::expr::{BinOp, Expr, UnOp};
use crate::ids::{EventId, RegionId, StateId};
use crate::machine::{StateKind, StateMachine, Transition, Trigger};
use crate::semantics::{ConflictResolution, Semantics, UnhandledEventPolicy};

// ----------------------------------------------------------------------
// Deterministic RNG
// ----------------------------------------------------------------------

/// A tiny deterministic generator (splitmix64): one `u64` of state, full
/// 64-bit output, no global state. Good enough statistics for shape
/// generation, and trivially reproducible from the seed.
#[derive(Debug, Clone)]
pub struct GenRng(u64);

impl GenRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> GenRng {
        GenRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..=hi` (collapses to `lo` when `hi <= lo`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `p`% (clamped to 0..=100).
    pub fn pct(&mut self, p: u32) -> bool {
        (self.next_u64() % 100) < u64::from(p.min(100))
    }

    /// Picks a slice element uniformly.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

// ----------------------------------------------------------------------
// Knobs
// ----------------------------------------------------------------------

/// Size and density knobs of the machine generator — the feature-space
/// axes of the fuzz corpus. All percentages are `0..=100`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Minimum number of states (floored at 2).
    pub min_states: usize,
    /// Maximum number of states. Keep below the completion-chain bound
    /// (the generator widens `max_completion_chain` if necessary).
    pub max_states: usize,
    /// Maximum composite-nesting depth below the root region.
    pub max_depth: u32,
    /// Chance that a new state is a composite (opening a nested region).
    pub composite_pct: u32,
    /// Chance that a new state is a final state.
    pub final_pct: u32,
    /// Minimum number of distinct events (floored at 1).
    pub min_events: usize,
    /// Maximum number of distinct events.
    pub max_events: usize,
    /// Minimum number of context variables.
    pub min_variables: usize,
    /// Maximum number of context variables.
    pub max_variables: usize,
    /// Chance that a transition carries a guard.
    pub guard_pct: u32,
    /// Chance that a state grows a completion transition to a later
    /// sibling.
    pub completion_pct: u32,
    /// Chance that a non-initial state is left without incoming arc
    /// (unreachable — optimizer food).
    pub unreachable_pct: u32,
    /// Chance that a state/transition/region carries actions.
    pub action_pct: u32,
    /// Upper bound on extra random transitions per region (cycles,
    /// self-loops, conflicts) beyond the reachability spanning arcs.
    pub max_extra_transitions: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            min_states: 4,
            max_states: 14,
            max_depth: 3,
            composite_pct: 25,
            final_pct: 12,
            min_events: 1,
            max_events: 6,
            min_variables: 0,
            max_variables: 4,
            guard_pct: 40,
            completion_pct: 30,
            unreachable_pct: 10,
            action_pct: 55,
            max_extra_transitions: 5,
        }
    }
}

impl GenConfig {
    /// A smaller shape for quick smoke runs and shrinking experiments.
    pub fn tiny() -> GenConfig {
        GenConfig {
            min_states: 2,
            max_states: 6,
            max_depth: 1,
            max_events: 3,
            max_variables: 2,
            max_extra_transitions: 2,
            ..GenConfig::default()
        }
    }
}

// ----------------------------------------------------------------------
// Generation
// ----------------------------------------------------------------------

/// Per-region bookkeeping while a machine grows.
struct RegionCtx {
    region: RegionId,
    depth: u32,
    /// Non-final states, in creation order (= id order within region).
    states: Vec<StateId>,
    finals: Vec<StateId>,
}

/// Generates one machine. Pure in `(seed, cfg)`: see the
/// [module docs](self) for determinism and shape invariants.
pub fn generate(seed: u64, cfg: &GenConfig) -> StateMachine {
    let mut rng = GenRng::new(seed);
    let mut m = StateMachine::new(format!("fz{seed:016x}"));

    let n_vars = rng.range(cfg.min_variables, cfg.max_variables);
    let vars: Vec<String> = (0..n_vars).map(|i| format!("v{i}")).collect();
    for v in &vars {
        let init = rng.below(9) as i64;
        m.set_variable(v.clone(), init);
    }

    let n_events = rng.range(cfg.min_events.max(1), cfg.max_events.max(1));
    let events: Vec<EventId> = (0..n_events)
        .map(|i| m.add_event(format!("ev{i}")))
        .collect();
    let signals: Vec<String> = (0..5).map(|i| format!("sig{i}")).collect();

    // --- state skeleton -------------------------------------------------
    let n_states = rng.range(cfg.min_states.max(2), cfg.max_states.max(2));
    let mut regions: Vec<RegionCtx> = vec![RegionCtx {
        region: m.root(),
        depth: 0,
        states: Vec::new(),
        finals: Vec::new(),
    }];
    let mut made = 0usize;
    let mut name_idx = 0usize;
    while made < n_states {
        // The first state is a plain root state so the root region is
        // always enterable; afterwards states land in a random region.
        let ri = if made == 0 {
            0
        } else {
            rng.below(regions.len())
        };
        let rid = regions[ri].region;
        let depth = regions[ri].depth;
        let name = format!("S{name_idx}");
        name_idx += 1;
        let want_composite =
            made > 0 && depth < cfg.max_depth && made + 1 < n_states && rng.pct(cfg.composite_pct);
        if want_composite {
            let (sid, nested) = m.add_composite_state(rid, name);
            regions[ri].states.push(sid);
            // A nested region must hold a non-final state to be
            // enterable; seed it with one simple child immediately.
            let child_name = format!("S{name_idx}");
            name_idx += 1;
            let child = m.add_state(nested, child_name);
            regions.push(RegionCtx {
                region: nested,
                depth: depth + 1,
                states: vec![child],
                finals: Vec::new(),
            });
            made += 2;
        } else if made > 0 && !regions[ri].states.is_empty() && rng.pct(cfg.final_pct) {
            let sid = m.add_final_state(rid, name);
            regions[ri].finals.push(sid);
            made += 1;
        } else {
            let sid = m.add_state(rid, name);
            regions[ri].states.push(sid);
            made += 1;
        }
    }

    // --- wiring ---------------------------------------------------------
    for ctx in &regions {
        let ss = &ctx.states;
        m.region_mut(ctx.region).initial = Some(ss[0]);
        if rng.pct(cfg.action_pct) {
            let n = 1 + rng.below(2);
            let acts = gen_actions(&mut rng, &vars, &signals, n);
            m.region_mut(ctx.region).initial_effect = acts;
        }
        // Reachability spanning arcs: state k gets an event arc from an
        // earlier sibling — unless the unreachable knob leaves it dark.
        for k in 1..ss.len() {
            if rng.pct(cfg.unreachable_pct) {
                continue;
            }
            let src = ss[rng.below(k)];
            let t = gen_event_transition(&mut rng, cfg, &vars, &signals, &events, src, ss[k]);
            m.add_transition(t);
        }
        // Final states usually get an entry arc too.
        for &f in &ctx.finals {
            if rng.pct(75) {
                let src = *rng.pick(ss);
                let t = gen_event_transition(&mut rng, cfg, &vars, &signals, &events, src, f);
                m.add_transition(t);
            }
        }
        // Completion transitions, forward-only: a state may complete into
        // a strictly later sibling or a final of its region, so chained
        // completions always make progress (see module docs).
        for (i, &s) in ss.iter().enumerate() {
            if !rng.pct(cfg.completion_pct) {
                continue;
            }
            let mut targets: Vec<StateId> = ss[i + 1..].to_vec();
            targets.extend(&ctx.finals);
            if targets.is_empty() {
                continue;
            }
            let target = *rng.pick(&targets);
            let guard = if rng.pct(cfg.guard_pct) {
                Some(gen_bool_expr(&mut rng, &vars, 1))
            } else {
                None
            };
            let effect = if rng.pct(cfg.action_pct) {
                let n = 1 + rng.below(2);
                gen_actions(&mut rng, &vars, &signals, n)
            } else {
                Vec::new()
            };
            m.add_transition(Transition {
                source: s,
                target,
                trigger: Trigger::Completion,
                guard,
                effect,
            });
        }
        // Extra event arcs: cycles, self-loops, conflicting triggers.
        let extra = rng.range(0, cfg.max_extra_transitions);
        let mut all_targets: Vec<StateId> = ss.clone();
        all_targets.extend(&ctx.finals);
        for _ in 0..extra {
            let src = *rng.pick(ss);
            let dst = *rng.pick(&all_targets);
            let t = gen_event_transition(&mut rng, cfg, &vars, &signals, &events, src, dst);
            m.add_transition(t);
        }
    }

    // --- behaviours -----------------------------------------------------
    for ctx in &regions {
        for &s in &ctx.states {
            if rng.pct(cfg.action_pct) {
                let n = 1 + rng.below(2);
                m.state_mut(s).entry = gen_actions(&mut rng, &vars, &signals, n);
            }
            if rng.pct(cfg.action_pct) {
                let n = 1 + rng.below(2);
                m.state_mut(s).exit = gen_actions(&mut rng, &vars, &signals, n);
            }
        }
    }

    // Forward-only completion chains are bounded by the state count;
    // widen the semantic chain bound if a huge knob setting could
    // otherwise trip the interpreter's safety net.
    m.set_semantics(Semantics {
        max_completion_chain: 64u32.max(n_states as u32 + 1),
        ..Semantics::default()
    });

    debug_assert!(
        m.validate().is_ok(),
        "generator invariant broken: {:?}",
        m.validate()
    );
    m
}

fn gen_event_transition(
    rng: &mut GenRng,
    cfg: &GenConfig,
    vars: &[String],
    signals: &[String],
    events: &[EventId],
    source: StateId,
    target: StateId,
) -> Transition {
    let trigger = Trigger::Event(*rng.pick(events));
    let guard = if rng.pct(cfg.guard_pct) {
        Some(gen_bool_expr(rng, vars, 1))
    } else {
        None
    };
    let effect = if rng.pct(cfg.action_pct) {
        let n = 1 + rng.below(2);
        gen_actions(rng, vars, signals, n)
    } else {
        Vec::new()
    };
    Transition {
        source,
        target,
        trigger,
        guard,
        effect,
    }
}

/// An integer leaf: a small constant or a variable.
fn gen_int_leaf(rng: &mut GenRng, vars: &[String]) -> Expr {
    if !vars.is_empty() && rng.pct(60) {
        Expr::var(rng.pick(vars).clone())
    } else {
        Expr::int(rng.below(17) as i64 - 8)
    }
}

/// A bounded integer expression. Multiplication only ever combines two
/// leaves, so with the bounded variable drift (see [`gen_assign`]) every
/// intermediate stays far inside `i32` — the model's `i64` arithmetic and
/// the target's `i32` arithmetic cannot be told apart by overflow.
fn gen_int_expr(rng: &mut GenRng, vars: &[String], depth: u32) -> Expr {
    if depth == 0 {
        return gen_int_leaf(rng, vars);
    }
    match rng.below(7) {
        0 => gen_int_leaf(rng, vars),
        1 => gen_int_expr(rng, vars, depth - 1).add(gen_int_expr(rng, vars, depth - 1)),
        2 => gen_int_expr(rng, vars, depth - 1).sub(gen_int_expr(rng, vars, depth - 1)),
        3 => gen_int_leaf(rng, vars).mul(gen_int_leaf(rng, vars)),
        4 => gen_int_expr(rng, vars, depth - 1).div(gen_int_expr(rng, vars, depth - 1)),
        5 => gen_int_expr(rng, vars, depth - 1).rem(gen_int_expr(rng, vars, depth - 1)),
        _ => gen_int_expr(rng, vars, depth - 1).neg(),
    }
}

/// A well-typed boolean expression (comparison, conjunction, negation, or
/// rarely a constant — constant-false guards are optimizer food).
fn gen_bool_expr(rng: &mut GenRng, vars: &[String], depth: u32) -> Expr {
    let cmp = |rng: &mut GenRng, vars: &[String]| {
        let l = gen_int_expr(rng, vars, 1);
        let r = gen_int_expr(rng, vars, 1);
        match rng.below(6) {
            0 => l.eq(r),
            1 => l.ne(r),
            2 => l.lt(r),
            3 => l.le(r),
            4 => l.gt(r),
            _ => l.ge(r),
        }
    };
    if depth == 0 {
        return cmp(rng, vars);
    }
    match rng.below(8) {
        0 => gen_bool_expr(rng, vars, depth - 1).and(gen_bool_expr(rng, vars, depth - 1)),
        1 => gen_bool_expr(rng, vars, depth - 1).or(gen_bool_expr(rng, vars, depth - 1)),
        2 => gen_bool_expr(rng, vars, depth - 1).not(),
        3 => Expr::bool(rng.pct(50)),
        _ => cmp(rng, vars),
    }
}

/// A bounded-drift assignment: constants, copies, `±c` steps (`c <= 4`),
/// or a modulus — never `var * var`, so repeated execution drifts each
/// variable by at most a small constant per action.
fn gen_assign(rng: &mut GenRng, vars: &[String]) -> Action {
    let target = rng.pick(vars).clone();
    let value = match rng.below(5) {
        0 => Expr::int(rng.below(17) as i64 - 8),
        1 => Expr::var(rng.pick(vars).clone()),
        2 => Expr::var(target.clone()).add(Expr::int(rng.below(4) as i64 + 1)),
        3 => Expr::var(target.clone()).sub(Expr::int(rng.below(4) as i64 + 1)),
        _ => Expr::var(rng.pick(vars).clone())
            .add(Expr::int(rng.below(9) as i64))
            .rem(Expr::int(rng.below(7) as i64 + 3)),
    };
    Action::assign(target, value)
}

fn gen_action(rng: &mut GenRng, vars: &[String], signals: &[String], depth: u32) -> Action {
    let can_assign = !vars.is_empty();
    match rng.below(if depth > 0 { 4 } else { 3 }) {
        0 if can_assign => gen_assign(rng, vars),
        1 => Action::emit(rng.pick(signals).clone()),
        2 => Action::emit_arg(rng.pick(signals).clone(), gen_int_expr(rng, vars, 2)),
        3 => {
            let cond = gen_bool_expr(rng, vars, 1);
            let then_n = 1 + rng.below(2);
            let then_actions = gen_actions_at(rng, vars, signals, then_n, depth - 1);
            let else_n = rng.below(2);
            let else_actions = gen_actions_at(rng, vars, signals, else_n, depth - 1);
            Action::if_else(cond, then_actions, else_actions)
        }
        _ => Action::emit(rng.pick(signals).clone()),
    }
}

fn gen_actions_at(
    rng: &mut GenRng,
    vars: &[String],
    signals: &[String],
    n: usize,
    depth: u32,
) -> Vec<Action> {
    (0..n)
        .map(|_| gen_action(rng, vars, signals, depth))
        .collect()
}

/// A short action list (possibly containing one level of `if`).
fn gen_actions(rng: &mut GenRng, vars: &[String], signals: &[String], n: usize) -> Vec<Action> {
    gen_actions_at(rng, vars, signals, n, 1)
}

// ----------------------------------------------------------------------
// Text serialization
// ----------------------------------------------------------------------

/// A serialization or parse failure of the regression text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line of the failure; 0 for whole-machine failures.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for TextError {}

fn text_err(line: usize, msg: impl Into<String>) -> TextError {
    TextError {
        line,
        msg: msg.into(),
    }
}

fn ident_ok(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn check_ident(what: &str, s: &str) -> Result<(), TextError> {
    if ident_ok(s) {
        Ok(())
    } else {
        Err(text_err(0, format!("{what} `{s}` is not an identifier")))
    }
}

/// Serializes a machine into the line-based text form (see the
/// [module docs](self) for the grammar).
///
/// # Errors
///
/// Fails when the machine cannot be represented: a name is not an
/// identifier, the semantics differ from the paper's fixed variation
/// points (the chain bound is the one recorded knob), or a region is
/// orphaned (unreachable from the state tree).
pub fn to_text(m: &StateMachine) -> Result<String, TextError> {
    let sem = m.semantics();
    if !sem.completion_priority
        || sem.conflict != ConflictResolution::InnermostFirst
        || sem.unhandled != UnhandledEventPolicy::Discard
    {
        return Err(text_err(
            0,
            "only the paper's fixed semantics can be serialized",
        ));
    }
    check_ident("machine name", m.name())?;
    let mut out = String::new();
    out.push_str(&format!("machine {}\n", m.name()));
    out.push_str(&format!("chain {}\n", sem.max_completion_chain));
    for (name, init) in m.variables() {
        check_ident("variable", name)?;
        out.push_str(&format!("var {name} {init}\n"));
    }
    for (_, e) in m.events() {
        check_ident("event", &e.name)?;
        out.push_str(&format!("event {}\n", e.name));
    }
    // States in region-DFS order, each region's states in id order, a
    // composite's nested region right after its declaration: declaration
    // always precedes use, and per-region order (= dispatch priority
    // order) survives the round-trip.
    let mut region_order: Vec<(RegionId, String)> = Vec::new();
    let mut state_order: Vec<StateId> = Vec::new();
    fn visit(
        m: &StateMachine,
        rid: RegionId,
        label: String,
        out: &mut String,
        region_order: &mut Vec<(RegionId, String)>,
        state_order: &mut Vec<StateId>,
    ) -> Result<(), TextError> {
        region_order.push((rid, label.clone()));
        for sid in m.states_in(rid) {
            let s = m.state(sid);
            check_ident("state", &s.name)?;
            state_order.push(sid);
            match s.kind {
                StateKind::Simple => out.push_str(&format!("state {} {label}\n", s.name)),
                StateKind::Final => out.push_str(&format!("final {} {label}\n", s.name)),
                StateKind::Composite(sub) => {
                    out.push_str(&format!("composite {} {label}\n", s.name));
                    visit(m, sub, s.name.clone(), out, region_order, state_order)?;
                }
            }
        }
        Ok(())
    }
    visit(
        m,
        m.root(),
        "root".to_string(),
        &mut out,
        &mut region_order,
        &mut state_order,
    )?;
    if region_order.len() != m.regions().count() {
        return Err(text_err(
            0,
            "machine has orphan regions unreachable from the state tree",
        ));
    }
    for (rid, label) in &region_order {
        let r = m.region(*rid);
        if let Some(init) = r.initial {
            out.push_str(&format!("initial {label} {}\n", m.state(init).name));
        }
        if !r.initial_effect.is_empty() {
            out.push_str(&format!(
                "ieffect {label} {}\n",
                w_actions(&r.initial_effect)
            ));
        }
    }
    for &sid in &state_order {
        let s = m.state(sid);
        if !s.entry.is_empty() {
            out.push_str(&format!("entry {} {}\n", s.name, w_actions(&s.entry)));
        }
        if !s.exit.is_empty() {
            out.push_str(&format!("exit {} {}\n", s.name, w_actions(&s.exit)));
        }
    }
    for (_, t) in m.transitions() {
        let src = &m.state(t.source).name;
        let dst = &m.state(t.target).name;
        let trig = match t.trigger {
            Trigger::Completion => "--".to_string(),
            Trigger::Event(e) => {
                let name = &m.event(e).name;
                check_ident("event", name)?;
                name.clone()
            }
        };
        out.push_str(&format!("t {src} {dst} {trig}"));
        if let Some(g) = &t.guard {
            out.push_str(&format!(" when {}", w_expr(g)));
        }
        if !t.effect.is_empty() {
            out.push_str(&format!(" do {}", w_actions(&t.effect)));
        }
        out.push('\n');
    }
    Ok(out)
}

fn w_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Var(n) => format!("(v {n})"),
        Expr::Unary(UnOp::Neg, a) => format!("(neg {})", w_expr(a)),
        Expr::Unary(UnOp::Not, a) => format!("(not {})", w_expr(a)),
        Expr::Binary(op, a, b) => format!("({} {} {})", op.symbol(), w_expr(a), w_expr(b)),
    }
}

fn w_action(a: &Action) -> String {
    match a {
        Action::Assign { var, value } => format!("(set {var} {})", w_expr(value)),
        Action::Emit { signal, arg: None } => format!("(emit {signal})"),
        Action::Emit {
            signal,
            arg: Some(arg),
        } => format!("(emit1 {signal} {})", w_expr(arg)),
        Action::If {
            cond,
            then_actions,
            else_actions,
        } => {
            let mut s = format!("(if {} (then", w_expr(cond));
            for a in then_actions {
                s.push(' ');
                s.push_str(&w_action(a));
            }
            s.push(')');
            if !else_actions.is_empty() {
                s.push_str(" (else");
                for a in else_actions {
                    s.push(' ');
                    s.push_str(&w_action(a));
                }
                s.push(')');
            }
            s.push(')');
            s
        }
    }
}

fn w_actions(actions: &[Action]) -> String {
    actions.iter().map(w_action).collect::<Vec<_>>().join(" ")
}

// --- parsing ----------------------------------------------------------

/// Splits a line into whitespace-separated tokens with `(` and `)` as
/// their own tokens.
fn tokenize(s: &str) -> Vec<String> {
    s.replace('(', " ( ")
        .replace(')', " ) ")
        .split_whitespace()
        .map(str::to_string)
        .collect()
}

struct TokStream<'a> {
    toks: &'a [String],
    pos: usize,
    line: usize,
}

impl<'a> TokStream<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<&'a str, TextError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| text_err(self.line, "unexpected end of line"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: &str) -> Result<(), TextError> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(text_err(self.line, format!("expected `{tok}`, got `{t}`")))
        }
    }
}

fn parse_expr(ts: &mut TokStream) -> Result<Expr, TextError> {
    let t = ts.next()?;
    if t != "(" {
        if t == "true" {
            return Ok(Expr::bool(true));
        }
        if t == "false" {
            return Ok(Expr::bool(false));
        }
        return t
            .parse::<i64>()
            .map(Expr::int)
            .map_err(|_| text_err(ts.line, format!("expected expression atom, got `{t}`")));
    }
    let head = ts.next()?;
    let e = match head {
        "v" => Expr::var(ts.next()?.to_string()),
        "neg" => parse_expr(ts)?.neg(),
        "not" => parse_expr(ts)?.not(),
        _ => {
            let op = match head {
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                "%" => BinOp::Rem,
                "==" => BinOp::Eq,
                "!=" => BinOp::Ne,
                "<" => BinOp::Lt,
                "<=" => BinOp::Le,
                ">" => BinOp::Gt,
                ">=" => BinOp::Ge,
                "&&" => BinOp::And,
                "||" => BinOp::Or,
                _ => return Err(text_err(ts.line, format!("unknown operator `{head}`"))),
            };
            let a = parse_expr(ts)?;
            let b = parse_expr(ts)?;
            Expr::Binary(op, Box::new(a), Box::new(b))
        }
    };
    ts.expect(")")?;
    Ok(e)
}

fn parse_action(ts: &mut TokStream) -> Result<Action, TextError> {
    ts.expect("(")?;
    let head = ts.next()?;
    let a = match head {
        "set" => {
            let var = ts.next()?.to_string();
            let value = parse_expr(ts)?;
            Action::assign(var, value)
        }
        "emit" => Action::emit(ts.next()?.to_string()),
        "emit1" => {
            let signal = ts.next()?.to_string();
            let arg = parse_expr(ts)?;
            Action::emit_arg(signal, arg)
        }
        "if" => {
            let cond = parse_expr(ts)?;
            ts.expect("(")?;
            ts.expect("then")?;
            let mut then_actions = Vec::new();
            while ts.peek() == Some("(") {
                then_actions.push(parse_action(ts)?);
            }
            ts.expect(")")?;
            let mut else_actions = Vec::new();
            if ts.peek() == Some("(") {
                // Could be `(else ...)` — nothing else may follow `then`.
                ts.expect("(")?;
                ts.expect("else")?;
                while ts.peek() == Some("(") {
                    else_actions.push(parse_action(ts)?);
                }
                ts.expect(")")?;
            }
            Action::if_else(cond, then_actions, else_actions)
        }
        _ => return Err(text_err(ts.line, format!("unknown action `{head}`"))),
    };
    ts.expect(")")?;
    Ok(a)
}

fn parse_actions(ts: &mut TokStream) -> Result<Vec<Action>, TextError> {
    let mut out = Vec::new();
    while ts.peek() == Some("(") {
        out.push(parse_action(ts)?);
    }
    if let Some(t) = ts.peek() {
        return Err(text_err(ts.line, format!("trailing token `{t}`")));
    }
    Ok(out)
}

/// Parses the line-based text form back into a machine and validates it.
///
/// # Errors
///
/// Fails on malformed syntax, references to undeclared names, or a
/// machine that does not pass [`validate`](StateMachine::validate).
pub fn from_text(text: &str) -> Result<StateMachine, TextError> {
    let mut m: Option<StateMachine> = None;
    let mut chain: u32 = Semantics::default().max_completion_chain;
    let mut states: BTreeMap<String, StateId> = BTreeMap::new();
    let mut regions: BTreeMap<String, RegionId> = BTreeMap::new();
    let mut events: BTreeMap<String, EventId> = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = tokenize(line);
        let mut ts = TokStream {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        let kw = ts.next()?;
        if kw == "machine" {
            if m.is_some() {
                return Err(text_err(lineno, "duplicate `machine` line"));
            }
            let name = ts.next()?.to_string();
            let sm = StateMachine::new(name);
            regions.insert("root".to_string(), sm.root());
            m = Some(sm);
            continue;
        }
        let sm = m
            .as_mut()
            .ok_or_else(|| text_err(lineno, "`machine` line must come first"))?;
        let lookup_region =
            |regions: &BTreeMap<String, RegionId>, name: &str| -> Result<RegionId, TextError> {
                regions
                    .get(name)
                    .copied()
                    .ok_or_else(|| text_err(lineno, format!("unknown region `{name}`")))
            };
        let lookup_state =
            |states: &BTreeMap<String, StateId>, name: &str| -> Result<StateId, TextError> {
                states
                    .get(name)
                    .copied()
                    .ok_or_else(|| text_err(lineno, format!("unknown state `{name}`")))
            };
        match kw {
            "chain" => {
                chain = ts
                    .next()?
                    .parse::<u32>()
                    .map_err(|_| text_err(lineno, "bad chain bound"))?;
            }
            "var" => {
                let name = ts.next()?.to_string();
                let init = ts
                    .next()?
                    .parse::<i64>()
                    .map_err(|_| text_err(lineno, "bad variable initial value"))?;
                sm.set_variable(name, init);
            }
            "event" => {
                let name = ts.next()?.to_string();
                let id = sm.add_event(name.clone());
                events.insert(name, id);
            }
            "state" | "final" | "composite" => {
                let name = ts.next()?.to_string();
                let region = lookup_region(&regions, ts.next()?)?;
                if states.contains_key(&name) {
                    return Err(text_err(lineno, format!("duplicate state `{name}`")));
                }
                let sid = match kw {
                    "state" => sm.add_state(region, name.clone()),
                    "final" => sm.add_final_state(region, name.clone()),
                    _ => {
                        let (sid, nested) = sm.add_composite_state(region, name.clone());
                        regions.insert(name.clone(), nested);
                        sid
                    }
                };
                states.insert(name, sid);
            }
            "initial" => {
                let region = lookup_region(&regions, ts.next()?)?;
                let init = lookup_state(&states, ts.next()?)?;
                sm.region_mut(region).initial = Some(init);
            }
            "ieffect" => {
                let region = lookup_region(&regions, ts.next()?)?;
                sm.region_mut(region).initial_effect = parse_actions(&mut ts)?;
            }
            "entry" | "exit" => {
                let sid = lookup_state(&states, ts.next()?)?;
                let actions = parse_actions(&mut ts)?;
                if kw == "entry" {
                    sm.state_mut(sid).entry = actions;
                } else {
                    sm.state_mut(sid).exit = actions;
                }
            }
            "t" => {
                let source = lookup_state(&states, ts.next()?)?;
                let target = lookup_state(&states, ts.next()?)?;
                let trig = ts.next()?;
                let trigger = if trig == "--" {
                    Trigger::Completion
                } else {
                    let id = events
                        .get(trig)
                        .copied()
                        .ok_or_else(|| text_err(lineno, format!("unknown event `{trig}`")))?;
                    Trigger::Event(id)
                };
                let mut guard = None;
                if ts.peek() == Some("when") {
                    ts.expect("when")?;
                    guard = Some(parse_expr(&mut ts)?);
                }
                let mut effect = Vec::new();
                if ts.peek() == Some("do") {
                    ts.expect("do")?;
                    effect = parse_actions(&mut ts)?;
                } else if let Some(t) = ts.peek() {
                    return Err(text_err(lineno, format!("trailing token `{t}`")));
                }
                sm.add_transition(Transition {
                    source,
                    target,
                    trigger,
                    guard,
                    effect,
                });
            }
            _ => return Err(text_err(lineno, format!("unknown keyword `{kw}`"))),
        }
    }
    let mut sm = m.ok_or_else(|| text_err(0, "missing `machine` line"))?;
    sm.set_semantics(Semantics {
        max_completion_chain: chain,
        ..Semantics::default()
    });
    sm.validate()
        .map_err(|e| text_err(0, format!("parsed machine is ill-formed: {e}")))?;
    Ok(sm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interp;

    #[test]
    fn same_seed_same_machine() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = to_text(&generate(seed, &cfg)).expect("serializes");
            let b = to_text(&generate(seed, &cfg)).expect("serializes");
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = to_text(&generate(1, &cfg)).expect("serializes");
        let b = to_text(&generate(2, &cfg)).expect("serializes");
        assert_ne!(a, b);
    }

    #[test]
    fn generated_machines_validate_and_boot() {
        for seed in 0..200 {
            let m = generate(seed, &GenConfig::default());
            m.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Initial entry + completion chains must settle without
            // tripping the chain bound or an evaluation error.
            Interp::new(&m).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn knobs_steer_the_shape() {
        // All-composite vs never-composite: the nesting knob must bite.
        let deep = GenConfig {
            composite_pct: 100,
            max_depth: 4,
            min_states: 12,
            max_states: 12,
            ..GenConfig::default()
        };
        let flat = GenConfig {
            composite_pct: 0,
            ..deep.clone()
        };
        let has_composite = |m: &StateMachine| {
            m.states()
                .any(|(_, s)| matches!(s.kind, StateKind::Composite(_)))
        };
        assert!(has_composite(&generate(7, &deep)));
        assert!(!has_composite(&generate(7, &flat)));
        // Guard density at 0 produces no guards at all.
        let unguarded = GenConfig {
            guard_pct: 0,
            ..GenConfig::default()
        };
        let m = generate(7, &unguarded);
        assert!(m.transitions().all(|(_, t)| t.guard.is_none()));
    }

    #[test]
    fn roundtrip_is_a_fixpoint() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let m = generate(seed, &cfg);
            let text = to_text(&m).expect("serializes");
            let parsed = from_text(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
            let text2 = to_text(&parsed).expect("re-serializes");
            assert_eq!(text, text2, "seed {seed}: round-trip not a fixpoint");
            assert_eq!(m.semantics(), parsed.semantics());
        }
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        // The oracle's observable trace must survive the round-trip —
        // the property the committed regression corpus depends on.
        let cfg = GenConfig::default();
        for seed in 0..30 {
            let m = generate(seed, &cfg);
            let parsed = from_text(&to_text(&m).expect("serializes")).expect("reparses");
            let names: Vec<String> = m.events().map(|(_, e)| e.name.clone()).collect();
            let mut a = Interp::new(&m).expect("boots");
            let mut b = Interp::new(&parsed).expect("boots");
            for name in names.iter().cycle().take(12) {
                a.step_by_name(name).expect("steps");
                b.step_by_name(name).expect("steps");
            }
            assert_eq!(
                a.trace().observable(),
                b.trace().observable(),
                "seed {seed}"
            );
            assert_eq!(a.configuration(), b.configuration(), "seed {seed}");
        }
    }

    #[test]
    fn samples_roundtrip() {
        for (name, m) in [
            ("flat", crate::samples::flat_unreachable()),
            ("hier", crate::samples::hierarchical_never_active()),
            ("cruise", crate::samples::cruise_control()),
            ("protocol", crate::samples::protocol_handler()),
            ("scaling", crate::samples::flat_with_unreachable(4)),
        ] {
            let text = to_text(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
            let parsed = from_text(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            let text2 = to_text(&parsed).expect("re-serializes");
            assert_eq!(text, text2, "{name}: round-trip not a fixpoint");
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("state A root").is_err(), "machine line required");
        assert!(from_text("machine m\nstate A nowhere").is_err());
        assert!(from_text("machine m\nt A B go").is_err());
        // Parses but fails validation: a region with states needs an
        // initial state.
        assert!(from_text("machine m\nstate A root").is_err());
        // Ill-typed constructs still parse (validation is structural),
        // but unknown variables are rejected.
        let err = from_text("machine m\nstate A root\ninitial root A\nentry A (set ghost 1)")
            .expect_err("unknown variable");
        assert!(err.msg.contains("ill-formed"), "{err}");
    }

    #[test]
    fn adversarial_mutations_of_generated_machines_are_rejected() {
        // Drive the validator's reject paths from *generated* shapes: the
        // fuzz harness leans on validate() to keep shrink candidates
        // honest, so these paths must actually fire.
        let cfg = GenConfig {
            composite_pct: 100,
            min_states: 10,
            max_states: 14,
            ..GenConfig::default()
        };
        let m0 = generate(3, &cfg);
        let (cid, nested) = m0
            .states()
            .find_map(|(sid, s)| match s.kind {
                StateKind::Composite(r) => Some((sid, r)),
                _ => None,
            })
            .expect("composite_pct=100 yields a composite");

        // Orphan region: clear the composite's back-pointer.
        let mut m = m0.clone();
        m.region_mut(nested).owner = None;
        assert!(matches!(
            m.validate(),
            Err(crate::ValidateError::OrphanRegion { .. })
        ));

        // Cross-region transition: retarget an outer arc into the nested
        // region.
        let mut m = m0.clone();
        let inner_state = m.states_in(nested)[0];
        let tid = m
            .transitions()
            .find_map(|(tid, t)| (t.source != cid && t.target != cid).then_some(tid))
            .expect("an unrelated transition exists");
        let source = m.transition(tid).source;
        if m.state(source).parent != m.state(inner_state).parent {
            m.transition_mut(tid).target = inner_state;
            assert!(matches!(
                m.validate(),
                Err(crate::ValidateError::CrossRegionTransition { .. })
            ));
        }

        // Duplicate state name: rename one state onto another.
        let mut m = m0.clone();
        let names: Vec<StateId> = m.states().map(|(sid, _)| sid).collect();
        let stolen = m.state(names[0]).name.clone();
        m.state_mut(names[1]).name = stolen;
        assert!(matches!(
            m.validate(),
            Err(crate::ValidateError::DuplicateStateName(_))
        ));
    }

    #[test]
    fn rng_is_stable() {
        // The splitmix64 stream is part of the reproducibility contract:
        // changing it silently re-rolls every seed in the corpus.
        let mut r = GenRng::new(42);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                13679457532755275413,
                2949826092126892291,
                5139283748462763858,
                6349198060258255764,
            ]
        );
    }
}
