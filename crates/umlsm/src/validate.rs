//! Well-formedness checking for state machines.
//!
//! Validation is the model-level analogue of a front-end's semantic checks:
//! everything the interpreter, the optimizer and the code generators rely on
//! is established here once, so downstream code can use infallible accessors.

use std::collections::BTreeSet;
use std::fmt;

use crate::action::Action;
use crate::expr::Expr;
use crate::ids::{RegionId, StateId, TransitionId};
use crate::machine::{StateKind, StateMachine, Trigger};

/// A model well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Two states share a name; names must be unique machine-wide because
    /// code generators use them as identifiers.
    DuplicateStateName(String),
    /// Two events share a name.
    DuplicateEventName(String),
    /// A region that can be entered has no initial state.
    MissingInitial {
        /// The offending region.
        region: RegionId,
        /// The region's name.
        name: String,
    },
    /// A region's initial state belongs to a different region.
    ForeignInitial {
        /// The offending region.
        region: RegionId,
        /// The state pointed to.
        state: StateId,
    },
    /// A region's initial state is a final state (UML forbids this: an
    /// initial transition must target a real state).
    InitialIsFinal {
        /// The offending region.
        region: RegionId,
    },
    /// A non-root region is not the nested region of any live composite
    /// state: its owner is absent, removed, or no longer points back at
    /// it. States inside such a region could never be entered, and the
    /// code generators' region walk would never visit them.
    OrphanRegion {
        /// The offending region.
        region: RegionId,
        /// The region's name.
        name: String,
    },
    /// A transition connects states of different regions.
    CrossRegionTransition {
        /// The offending transition.
        transition: TransitionId,
    },
    /// A transition's source is a final state (final states have no outgoing
    /// transitions).
    TransitionFromFinal {
        /// The offending transition.
        transition: TransitionId,
    },
    /// A transition refers to a removed state.
    DanglingEndpoint {
        /// The offending transition.
        transition: TransitionId,
    },
    /// A transition is triggered by a removed event.
    DanglingTrigger {
        /// The offending transition.
        transition: TransitionId,
    },
    /// A guard or action references an undeclared context variable.
    UnknownVariable {
        /// The variable name.
        variable: String,
        /// Where it was referenced.
        location: String,
    },
    /// An emission carries more than one argument (the toolchain's runtime
    /// convention allows at most one payload).
    TooManyEmitArgs {
        /// The signal name.
        signal: String,
    },
    /// The machine has no states at all.
    EmptyMachine,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DuplicateStateName(name) => {
                write!(f, "duplicate state name `{name}`")
            }
            ValidateError::DuplicateEventName(name) => {
                write!(f, "duplicate event name `{name}`")
            }
            ValidateError::MissingInitial { region, name } => {
                write!(f, "region {region} `{name}` has no initial state")
            }
            ValidateError::ForeignInitial { region, state } => {
                write!(
                    f,
                    "initial state {state} does not belong to region {region}"
                )
            }
            ValidateError::InitialIsFinal { region } => {
                write!(f, "initial state of region {region} is a final state")
            }
            ValidateError::OrphanRegion { region, name } => {
                write!(f, "region {region} `{name}` has no owning composite state")
            }
            ValidateError::CrossRegionTransition { transition } => {
                write!(f, "transition {transition} connects different regions")
            }
            ValidateError::TransitionFromFinal { transition } => {
                write!(f, "transition {transition} leaves a final state")
            }
            ValidateError::DanglingEndpoint { transition } => {
                write!(f, "transition {transition} references a removed state")
            }
            ValidateError::DanglingTrigger { transition } => {
                write!(f, "transition {transition} is triggered by a removed event")
            }
            ValidateError::UnknownVariable { variable, location } => {
                write!(f, "unknown variable `{variable}` referenced in {location}")
            }
            ValidateError::TooManyEmitArgs { signal } => {
                write!(f, "emission of `{signal}` carries more than one argument")
            }
            ValidateError::EmptyMachine => write!(f, "machine has no states"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl StateMachine {
    /// Checks well-formedness of the whole model.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in a deterministic order (names,
    /// regions, transitions, then action-language references).
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.states().next().is_none() {
            return Err(ValidateError::EmptyMachine);
        }
        self.validate_names()?;
        self.validate_regions()?;
        self.validate_transitions()?;
        self.validate_actions()?;
        Ok(())
    }

    fn validate_names(&self) -> Result<(), ValidateError> {
        let mut seen = BTreeSet::new();
        for (_, s) in self.states() {
            if !seen.insert(s.name.clone()) {
                return Err(ValidateError::DuplicateStateName(s.name.clone()));
            }
        }
        let mut seen = BTreeSet::new();
        for (_, e) in self.events() {
            if !seen.insert(e.name.clone()) {
                return Err(ValidateError::DuplicateEventName(e.name.clone()));
            }
        }
        Ok(())
    }

    fn validate_regions(&self) -> Result<(), ValidateError> {
        for (rid, region) in self.regions() {
            // Every non-root region must be reachable from the state tree:
            // some live composite state must own it and point back at it.
            if rid != self.root() {
                let owned = region
                    .owner
                    .and_then(|o| self.try_state(o))
                    .is_some_and(|s| matches!(s.kind, StateKind::Composite(r) if r == rid));
                if !owned {
                    return Err(ValidateError::OrphanRegion {
                        region: rid,
                        name: region.name.clone(),
                    });
                }
            }
            let non_final_states = self
                .states_in(rid)
                .into_iter()
                .filter(|s| !self.state(*s).is_final())
                .count();
            match region.initial {
                None => {
                    // A region with at least one non-final state must be
                    // enterable deterministically.
                    if non_final_states > 0 {
                        return Err(ValidateError::MissingInitial {
                            region: rid,
                            name: region.name.clone(),
                        });
                    }
                }
                Some(init) => {
                    let Some(state) = self.try_state(init) else {
                        return Err(ValidateError::ForeignInitial {
                            region: rid,
                            state: init,
                        });
                    };
                    if state.parent != rid {
                        return Err(ValidateError::ForeignInitial {
                            region: rid,
                            state: init,
                        });
                    }
                    if state.is_final() {
                        return Err(ValidateError::InitialIsFinal { region: rid });
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_transitions(&self) -> Result<(), ValidateError> {
        for (tid, t) in self.transitions() {
            let (Some(src), Some(dst)) = (self.try_state(t.source), self.try_state(t.target))
            else {
                return Err(ValidateError::DanglingEndpoint { transition: tid });
            };
            if src.parent != dst.parent {
                return Err(ValidateError::CrossRegionTransition { transition: tid });
            }
            if src.is_final() {
                return Err(ValidateError::TransitionFromFinal { transition: tid });
            }
            if let Trigger::Event(e) = t.trigger {
                if self.events().all(|(id, _)| id != e) {
                    return Err(ValidateError::DanglingTrigger { transition: tid });
                }
            }
        }
        Ok(())
    }

    fn validate_actions(&self) -> Result<(), ValidateError> {
        let declared: BTreeSet<&String> = self.variables().keys().collect();
        let check_expr = |expr: &Expr, location: &str| -> Result<(), ValidateError> {
            for v in expr.free_vars() {
                if !declared.contains(&v) {
                    return Err(ValidateError::UnknownVariable {
                        variable: v,
                        location: location.to_string(),
                    });
                }
            }
            Ok(())
        };
        fn check_actions(
            actions: &[Action],
            location: &str,
            check_expr: &dyn Fn(&Expr, &str) -> Result<(), ValidateError>,
        ) -> Result<(), ValidateError> {
            for a in actions {
                match a {
                    Action::Assign { value, .. } => check_expr(value, location)?,
                    Action::Emit { signal, arg } => {
                        if let Some(arg) = arg {
                            check_expr(arg, location)?;
                        }
                        let _ = signal;
                    }
                    Action::If {
                        cond,
                        then_actions,
                        else_actions,
                    } => {
                        check_expr(cond, location)?;
                        check_actions(then_actions, location, check_expr)?;
                        check_actions(else_actions, location, check_expr)?;
                    }
                }
            }
            Ok(())
        }
        // Assigned variables must also be declared: the context struct of the
        // generated code is fixed at generation time.
        let check_writes = |actions: &[Action], location: &str| -> Result<(), ValidateError> {
            let mut writes = BTreeSet::new();
            for a in actions {
                a.written_vars(&mut writes);
            }
            for w in writes {
                if !declared.contains(&w) {
                    return Err(ValidateError::UnknownVariable {
                        variable: w,
                        location: location.to_string(),
                    });
                }
            }
            Ok(())
        };

        for (_, s) in self.states() {
            let loc_entry = format!("entry of `{}`", s.name);
            let loc_exit = format!("exit of `{}`", s.name);
            check_actions(&s.entry, &loc_entry, &check_expr)?;
            check_actions(&s.exit, &loc_exit, &check_expr)?;
            check_writes(&s.entry, &loc_entry)?;
            check_writes(&s.exit, &loc_exit)?;
        }
        for (tid, t) in self.transitions() {
            let loc = format!("transition {tid}");
            if let Some(g) = &t.guard {
                check_expr(g, &loc)?;
            }
            check_actions(&t.effect, &loc, &check_expr)?;
            check_writes(&t.effect, &loc)?;
        }
        for (rid, r) in self.regions() {
            let loc = format!("initial effect of region {rid}");
            check_actions(&r.initial_effect, &loc, &check_expr)?;
            check_writes(&r.initial_effect, &loc)?;
        }

        // Emission arity: one payload max (runtime convention).
        for sig in self.emitted_signals() {
            let _ = sig; // arity is enforced structurally by Action::Emit
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MachineBuilder;
    use crate::expr::Expr;

    #[test]
    fn duplicate_state_names_rejected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        b.state("A");
        b.initial(a);
        assert!(matches!(
            b.finish_unchecked().validate(),
            Err(ValidateError::DuplicateStateName(_))
        ));
    }

    #[test]
    fn missing_initial_rejected() {
        let mut b = MachineBuilder::new("m");
        b.state("A");
        assert!(matches!(
            b.finish_unchecked().validate(),
            Err(ValidateError::MissingInitial { .. })
        ));
    }

    #[test]
    fn initial_must_be_in_region() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (_, inner) = b.composite("C");
        let i = b.state_in(inner, "I");
        b.initial(a);
        // Root's initial points into the nested region: invalid.
        let mut m = b.finish_unchecked();
        let root = m.root();
        m.region_mut(root).initial = Some(i);
        m.region_mut(inner).initial = Some(i);
        assert!(matches!(
            m.validate(),
            Err(ValidateError::ForeignInitial { .. })
        ));
    }

    #[test]
    fn initial_must_not_be_final() {
        let mut b = MachineBuilder::new("m");
        let f = b.final_state("End");
        b.state("A");
        let mut m = b.finish_unchecked();
        let root = m.root();
        m.region_mut(root).initial = Some(f);
        assert!(matches!(
            m.validate(),
            Err(ValidateError::InitialIsFinal { .. })
        ));
    }

    #[test]
    fn cross_region_transition_rejected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (_, inner) = b.composite("C");
        let i = b.state_in(inner, "I");
        b.initial(a);
        b.initial_in(inner, i);
        b.transition(a, i).build();
        assert!(matches!(
            b.finish_unchecked().validate(),
            Err(ValidateError::CrossRegionTransition { .. })
        ));
    }

    #[test]
    fn transition_from_final_rejected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let f = b.final_state("End");
        b.initial(a);
        b.transition(f, a).build();
        assert!(matches!(
            b.finish_unchecked().validate(),
            Err(ValidateError::TransitionFromFinal { .. })
        ));
    }

    #[test]
    fn orphan_region_with_cleared_owner_rejected() {
        // Hollowing out the back-pointer leaves the nested region
        // unreachable from the state tree.
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (_, inner) = b.composite("C");
        let i = b.state_in(inner, "I");
        b.initial(a);
        b.initial_in(inner, i);
        let mut m = b.finish_unchecked();
        m.region_mut(inner).owner = None;
        assert!(matches!(
            m.validate(),
            Err(ValidateError::OrphanRegion { .. })
        ));
    }

    #[test]
    fn orphan_region_with_dead_owner_rejected() {
        // A region whose recorded owner never existed (or was removed
        // without cascading) is equally unreachable — even when it is
        // otherwise empty and so needs no initial state.
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        b.initial(a);
        let mut m = b.finish_unchecked();
        m.alloc_region(crate::Region {
            name: "ghost".into(),
            owner: Some(crate::StateId::from_index(99)),
            initial: None,
            initial_effect: Vec::new(),
        });
        assert!(matches!(
            m.validate(),
            Err(ValidateError::OrphanRegion { .. })
        ));
    }

    #[test]
    fn orphan_region_owned_by_simple_state_rejected() {
        // The owner must actually be a composite whose kind points back
        // at the region; a simple state cannot anchor a region.
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (_, inner) = b.composite("C");
        let i = b.state_in(inner, "I");
        b.initial(a);
        b.initial_in(inner, i);
        let mut m = b.finish_unchecked();
        m.region_mut(inner).owner = Some(a);
        assert!(matches!(
            m.validate(),
            Err(ValidateError::OrphanRegion { .. })
        ));
    }

    #[test]
    fn duplicate_event_names_rejected() {
        // `add_event` dedups by name, so forge the duplicate through the
        // raw arena — exactly the shape a broken deserializer could build.
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        b.initial(a);
        b.event("go");
        let mut m = b.finish_unchecked();
        m.alloc_event(crate::machine::Event { name: "go".into() });
        assert!(matches!(
            m.validate(),
            Err(ValidateError::DuplicateEventName(_))
        ));
    }

    #[test]
    fn dangling_trigger_rejected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        let e = b.event("go");
        b.initial(a);
        b.transition(a, c).on(e).build();
        let mut m = b.finish_unchecked();
        m.remove_event(e);
        assert!(matches!(
            m.validate(),
            Err(ValidateError::DanglingTrigger { .. })
        ));
    }

    #[test]
    fn unknown_guard_variable_rejected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        let e = b.event("go");
        b.initial(a);
        b.transition(a, c)
            .on(e)
            .when(Expr::var("ghost").gt(Expr::int(0)))
            .build();
        assert!(matches!(
            b.finish_unchecked().validate(),
            Err(ValidateError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn unknown_assigned_variable_rejected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        b.initial(a);
        b.on_entry(a, vec![crate::Action::assign("ghost", Expr::int(1))]);
        assert!(matches!(
            b.finish_unchecked().validate(),
            Err(ValidateError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn empty_machine_rejected() {
        let b = MachineBuilder::new("m");
        assert_eq!(
            b.finish_unchecked().validate(),
            Err(ValidateError::EmptyMachine)
        );
    }

    #[test]
    fn valid_machine_passes() {
        let mut b = MachineBuilder::new("m");
        b.variable("x", 1);
        let a = b.state("A");
        let c = b.state("B");
        let e = b.event("go");
        b.initial(a);
        b.transition(a, c)
            .on(e)
            .when(Expr::var("x").gt(Expr::int(0)))
            .build();
        assert!(b.finish().is_ok());
    }
}
