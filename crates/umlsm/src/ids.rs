//! Typed identifiers for model elements.
//!
//! Every element of a [`StateMachine`](crate::StateMachine) is addressed by a
//! small copyable id. Ids are allocated by the machine and are stable across
//! model transformations: removing an element never renumbers the others,
//! which lets optimization reports refer to removed elements unambiguously.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw index of this id.
            ///
            /// Raw indices are useful for building dense side tables; they
            /// are unique per machine but not contiguous after removals.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// Intended for deserialization and test helpers; an id built
            /// this way is only meaningful for the machine it came from.
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $tag, self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a [`State`](crate::State) within one machine.
    StateId,
    "s"
);
id_type!(
    /// Identifier of a [`Transition`](crate::Transition) within one machine.
    TransitionId,
    "t"
);
id_type!(
    /// Identifier of an [`Event`](crate::Event) within one machine.
    EventId,
    "e"
);
id_type!(
    /// Identifier of a [`Region`](crate::Region) within one machine.
    RegionId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_tag_prefix() {
        assert_eq!(StateId(3).to_string(), "s3");
        assert_eq!(TransitionId(0).to_string(), "t0");
        assert_eq!(EventId(7).to_string(), "e7");
        assert_eq!(RegionId(1).to_string(), "r1");
    }

    #[test]
    fn index_round_trips() {
        let id = StateId::from_index(42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ids_are_ordered_by_allocation() {
        assert!(StateId(1) < StateId(2));
    }
}
