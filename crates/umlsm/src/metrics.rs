//! Model-size metrics.
//!
//! The paper relates the optimization gain to "the number of removed
//! states/transitions" and "the kind of state machine"; [`ModelMetrics`]
//! quantifies both for reports and the scaling experiment (E5).

use std::fmt;

use crate::machine::{StateKind, StateMachine};

/// Size and shape statistics for a state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelMetrics {
    /// Total states of every kind, all regions included.
    pub states: usize,
    /// Simple states.
    pub simple_states: usize,
    /// Composite states.
    pub composite_states: usize,
    /// Final states.
    pub final_states: usize,
    /// Transitions (completion transitions included).
    pub transitions: usize,
    /// Completion transitions.
    pub completion_transitions: usize,
    /// Declared event types.
    pub events: usize,
    /// Regions, root included.
    pub regions: usize,
    /// Maximum nesting depth (0 for a flat machine).
    pub max_depth: usize,
    /// Primitive action statements across entry/exit/effects.
    pub action_statements: usize,
    /// Declared context variables.
    pub variables: usize,
}

impl ModelMetrics {
    /// Difference `self - other` per field, saturating at zero. Useful to
    /// express "what the optimizer removed".
    pub fn removed_since(&self, optimized: &ModelMetrics) -> ModelMetrics {
        ModelMetrics {
            states: self.states.saturating_sub(optimized.states),
            simple_states: self.simple_states.saturating_sub(optimized.simple_states),
            composite_states: self
                .composite_states
                .saturating_sub(optimized.composite_states),
            final_states: self.final_states.saturating_sub(optimized.final_states),
            transitions: self.transitions.saturating_sub(optimized.transitions),
            completion_transitions: self
                .completion_transitions
                .saturating_sub(optimized.completion_transitions),
            events: self.events.saturating_sub(optimized.events),
            regions: self.regions.saturating_sub(optimized.regions),
            max_depth: self.max_depth.saturating_sub(optimized.max_depth),
            action_statements: self
                .action_statements
                .saturating_sub(optimized.action_statements),
            variables: self.variables.saturating_sub(optimized.variables),
        }
    }
}

impl fmt::Display for ModelMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states ({} simple, {} composite, {} final), {} transitions ({} completion), {} events, {} regions, depth {}, {} action stmts, {} vars",
            self.states,
            self.simple_states,
            self.composite_states,
            self.final_states,
            self.transitions,
            self.completion_transitions,
            self.events,
            self.regions,
            self.max_depth,
            self.action_statements,
            self.variables,
        )
    }
}

impl StateMachine {
    /// Computes size/shape metrics for the whole machine.
    pub fn metrics(&self) -> ModelMetrics {
        let mut m = ModelMetrics {
            events: self.events().count(),
            regions: self.regions().count(),
            variables: self.variables().len(),
            ..ModelMetrics::default()
        };
        for (sid, s) in self.states() {
            m.states += 1;
            match s.kind {
                StateKind::Simple => m.simple_states += 1,
                StateKind::Composite(_) => m.composite_states += 1,
                StateKind::Final => m.final_states += 1,
            }
            m.max_depth = m.max_depth.max(self.depth_of(sid));
            m.action_statements += s
                .entry
                .iter()
                .chain(&s.exit)
                .map(|a| a.statement_count())
                .sum::<usize>();
        }
        for (_, t) in self.transitions() {
            m.transitions += 1;
            if t.is_completion() {
                m.completion_transitions += 1;
            }
            m.action_statements += t.effect.iter().map(|a| a.statement_count()).sum::<usize>();
        }
        for (_, r) in self.regions() {
            m.action_statements += r
                .initial_effect
                .iter()
                .map(|a| a.statement_count())
                .sum::<usize>();
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::builder::MachineBuilder;
    use crate::expr::Expr;

    #[test]
    fn metrics_count_everything() {
        let mut b = MachineBuilder::new("m");
        b.variable("x", 0);
        let a = b.state("A");
        let (c, inner) = b.composite("C");
        let i = b.state_in(inner, "I");
        let fin = b.final_state_in(inner, "F");
        let e = b.event("go");
        b.initial(a);
        b.initial_in(inner, i);
        b.on_entry(a, vec![Action::assign("x", Expr::int(1))]);
        b.transition(a, c).on(e).build();
        b.transition(i, fin).on(e).build();
        b.transition(c, a)
            .on_completion()
            .then(vec![Action::emit("done")])
            .build();
        let m = b.finish().expect("valid");
        let metrics = m.metrics();
        assert_eq!(metrics.states, 4);
        assert_eq!(metrics.simple_states, 2);
        assert_eq!(metrics.composite_states, 1);
        assert_eq!(metrics.final_states, 1);
        assert_eq!(metrics.transitions, 3);
        assert_eq!(metrics.completion_transitions, 1);
        assert_eq!(metrics.regions, 2);
        assert_eq!(metrics.max_depth, 1);
        assert_eq!(metrics.action_statements, 2);
        assert_eq!(metrics.variables, 1);
    }

    #[test]
    fn removed_since_subtracts() {
        let a = ModelMetrics {
            states: 5,
            transitions: 7,
            ..ModelMetrics::default()
        };
        let b = ModelMetrics {
            states: 3,
            transitions: 7,
            ..ModelMetrics::default()
        };
        let d = a.removed_since(&b);
        assert_eq!(d.states, 2);
        assert_eq!(d.transitions, 0);
    }

    #[test]
    fn display_is_informative() {
        let m = ModelMetrics::default();
        assert!(m.to_string().contains("0 states"));
    }
}
