//! The state-machine model: states, regions, transitions, events.
//!
//! A [`StateMachine`] owns arenas of model elements addressed by the typed
//! ids of [`crate::ids`]. The representation supports the mutations the
//! model optimizer needs — removing states (with cascading removal of their
//! transitions and, for composites, their whole sub-region), removing
//! transitions and events — without invalidating other ids.
//!
//! ## Supported UML subset
//!
//! * One region per composite state (no orthogonal regions).
//! * Transitions connect states of the *same* region; composite states
//!   participate as sources/targets at their own level, which is exactly the
//!   shape of the paper's Fig. 1 machines.
//! * Each region has at most one initial state (the initial pseudostate is
//!   represented by the region's `initial` field plus an optional effect).
//! * Final states are ordinary states of kind [`StateKind::Final`].

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use crate::action::Action;
use crate::expr::Expr;
use crate::ids::{EventId, RegionId, StateId, TransitionId};
use crate::semantics::Semantics;

/// An event type the machine can react to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Event {
    /// Unique event name.
    pub name: String,
}

/// What triggers a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// Triggered by the dispatch of an event occurrence.
    Event(EventId),
    /// A completion transition: fires when the source state completes
    /// (immediately after entry for simple states; when the nested region
    /// reaches a final state for composite states).
    Completion,
}

/// The kind of a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// A plain state.
    Simple,
    /// A composite state owning one nested region.
    Composite(RegionId),
    /// A final state; entering it completes the enclosing region.
    Final,
}

/// A state node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Human-readable name, unique within the machine.
    pub name: String,
    /// Kind (simple, composite, final).
    pub kind: StateKind,
    /// Region this state belongs to.
    pub parent: RegionId,
    /// Entry behaviour.
    pub entry: Vec<Action>,
    /// Exit behaviour.
    pub exit: Vec<Action>,
}

impl State {
    /// Returns the nested region if this is a composite state.
    pub fn region(&self) -> Option<RegionId> {
        match self.kind {
            StateKind::Composite(r) => Some(r),
            _ => None,
        }
    }

    /// Returns `true` for final states.
    pub fn is_final(&self) -> bool {
        self.kind == StateKind::Final
    }
}

/// A region: the root region of the machine or the single region nested in
/// a composite state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name.
    pub name: String,
    /// Owning composite state; `None` for the root region.
    pub owner: Option<StateId>,
    /// Target of the region's initial pseudostate.
    pub initial: Option<StateId>,
    /// Effect of the initial transition.
    pub initial_effect: Vec<Action>,
}

/// A transition arc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub source: StateId,
    /// Target state.
    pub target: StateId,
    /// Trigger (event or completion).
    pub trigger: Trigger,
    /// Optional guard; an absent guard is equivalent to `true`.
    pub guard: Option<Expr>,
    /// Effect behaviour executed between exit and entry.
    pub effect: Vec<Action>,
}

impl Transition {
    /// Returns `true` for completion transitions.
    pub fn is_completion(&self) -> bool {
        self.trigger == Trigger::Completion
    }

    /// Returns `true` if the guard is absent or constant-folds to `true`.
    pub fn guard_is_trivially_true(&self) -> bool {
        match &self.guard {
            None => true,
            Some(g) => g.is_const_true(),
        }
    }
}

/// A complete UML state machine model.
///
/// Construct machines with [`MachineBuilder`](crate::MachineBuilder); mutate
/// them through the removal/update methods used by the optimizer; execute
/// them with [`Interp`](crate::Interp).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateMachine {
    pub(crate) name: String,
    pub(crate) semantics: Semantics,
    pub(crate) variables: BTreeMap<String, i64>,
    pub(crate) events: BTreeMap<EventId, Event>,
    pub(crate) regions: BTreeMap<RegionId, Region>,
    pub(crate) states: BTreeMap<StateId, State>,
    pub(crate) transitions: BTreeMap<TransitionId, Transition>,
    pub(crate) root: RegionId,
    pub(crate) next_state: u32,
    pub(crate) next_transition: u32,
    pub(crate) next_event: u32,
    pub(crate) next_region: u32,
}

impl StateMachine {
    /// Creates an empty machine with a root region and default semantics.
    pub fn new(name: impl Into<String>) -> StateMachine {
        let mut m = StateMachine {
            name: name.into(),
            semantics: Semantics::default(),
            variables: BTreeMap::new(),
            events: BTreeMap::new(),
            regions: BTreeMap::new(),
            states: BTreeMap::new(),
            transitions: BTreeMap::new(),
            root: RegionId(0),
            next_state: 0,
            next_transition: 0,
            next_event: 0,
            next_region: 0,
        };
        let root = m.alloc_region(Region {
            name: "root".to_string(),
            owner: None,
            initial: None,
            initial_effect: Vec::new(),
        });
        m.root = root;
        m
    }

    /// Machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fixed execution semantics.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Replaces the execution semantics (a *model-level* decision; see
    /// [`Semantics`]).
    pub fn set_semantics(&mut self, semantics: Semantics) {
        self.semantics = semantics;
    }

    /// The root region id.
    pub fn root(&self) -> RegionId {
        self.root
    }

    /// Context variables and their initial values.
    pub fn variables(&self) -> &BTreeMap<String, i64> {
        &self.variables
    }

    /// Declares (or re-initializes) a context variable.
    pub fn set_variable(&mut self, name: impl Into<String>, initial: i64) {
        self.variables.insert(name.into(), initial);
    }

    /// Removes a context variable. Returns its initial value if it existed.
    pub fn remove_variable(&mut self, name: &str) -> Option<i64> {
        self.variables.remove(name)
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    pub(crate) fn alloc_region(&mut self, region: Region) -> RegionId {
        let id = RegionId(self.next_region);
        self.next_region += 1;
        self.regions.insert(id, region);
        id
    }

    pub(crate) fn alloc_state(&mut self, state: State) -> StateId {
        let id = StateId(self.next_state);
        self.next_state += 1;
        self.states.insert(id, state);
        id
    }

    pub(crate) fn alloc_transition(&mut self, transition: Transition) -> TransitionId {
        let id = TransitionId(self.next_transition);
        self.next_transition += 1;
        self.transitions.insert(id, transition);
        id
    }

    pub(crate) fn alloc_event(&mut self, event: Event) -> EventId {
        let id = EventId(self.next_event);
        self.next_event += 1;
        self.events.insert(id, event);
        id
    }

    /// Adds an event type, returning its id. Reuses the id of an existing
    /// event with the same name.
    pub fn add_event(&mut self, name: impl Into<String>) -> EventId {
        let name = name.into();
        if let Some((id, _)) = self.events.iter().find(|(_, e)| e.name == name) {
            return *id;
        }
        self.alloc_event(Event { name })
    }

    /// Adds a simple state to `region`.
    pub fn add_state(&mut self, region: RegionId, name: impl Into<String>) -> StateId {
        self.alloc_state(State {
            name: name.into(),
            kind: StateKind::Simple,
            parent: region,
            entry: Vec::new(),
            exit: Vec::new(),
        })
    }

    /// Adds a final state to `region`.
    pub fn add_final_state(&mut self, region: RegionId, name: impl Into<String>) -> StateId {
        self.alloc_state(State {
            name: name.into(),
            kind: StateKind::Final,
            parent: region,
            entry: Vec::new(),
            exit: Vec::new(),
        })
    }

    /// Adds a composite state to `region`, creating its nested region.
    /// Returns the state id and the nested region id.
    pub fn add_composite_state(
        &mut self,
        region: RegionId,
        name: impl Into<String>,
    ) -> (StateId, RegionId) {
        let name = name.into();
        let nested = self.alloc_region(Region {
            name: format!("{name}_region"),
            owner: None, // patched below once the state id is known
            initial: None,
            initial_effect: Vec::new(),
        });
        let sid = self.alloc_state(State {
            name,
            kind: StateKind::Composite(nested),
            parent: region,
            entry: Vec::new(),
            exit: Vec::new(),
        });
        self.regions
            .get_mut(&nested)
            .expect("freshly allocated region")
            .owner = Some(sid);
        (sid, nested)
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, transition: Transition) -> TransitionId {
        self.alloc_transition(transition)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Looks up a state.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live state of this machine.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[&id]
    }

    /// Looks up a state, returning `None` if it was removed.
    pub fn try_state(&self, id: StateId) -> Option<&State> {
        self.states.get(&id)
    }

    /// Mutable access to a state.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live state of this machine.
    pub fn state_mut(&mut self, id: StateId) -> &mut State {
        self.states.get_mut(&id).expect("live state id")
    }

    /// Looks up a region.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live region of this machine.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[&id]
    }

    /// Mutable access to a region.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live region of this machine.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        self.regions.get_mut(&id).expect("live region id")
    }

    /// Looks up a transition.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live transition of this machine.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[&id]
    }

    /// Mutable access to a transition.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live transition of this machine.
    pub fn transition_mut(&mut self, id: TransitionId) -> &mut Transition {
        self.transitions.get_mut(&id).expect("live transition id")
    }

    /// Looks up an event.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live event of this machine.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[&id]
    }

    /// Iterates over all live states in id order.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &State)> {
        self.states.iter().map(|(id, s)| (*id, s))
    }

    /// Iterates over all live transitions in id order.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.transitions.iter().map(|(id, t)| (*id, t))
    }

    /// Iterates over all live events in id order.
    pub fn events(&self) -> impl Iterator<Item = (EventId, &Event)> {
        self.events.iter().map(|(id, e)| (*id, e))
    }

    /// Iterates over all live regions in id order.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions.iter().map(|(id, r)| (*id, r))
    }

    /// States that belong to `region`, in id order.
    pub fn states_in(&self, region: RegionId) -> Vec<StateId> {
        self.states
            .iter()
            .filter(|(_, s)| s.parent == region)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Transitions whose source is `state`, in id order.
    pub fn transitions_from(&self, state: StateId) -> Vec<TransitionId> {
        self.transitions
            .iter()
            .filter(|(_, t)| t.source == state)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Transitions whose target is `state`, in id order.
    pub fn transitions_into(&self, state: StateId) -> Vec<TransitionId> {
        self.transitions
            .iter()
            .filter(|(_, t)| t.target == state)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Finds a state by name anywhere in the machine.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .find(|(_, s)| s.name == name)
            .map(|(id, _)| *id)
    }

    /// Finds an event by name.
    pub fn event_by_name(&self, name: &str) -> Option<EventId> {
        self.events
            .iter()
            .find(|(_, e)| e.name == name)
            .map(|(id, _)| *id)
    }

    /// The depth of a state: states of the root region have depth 0.
    pub fn depth_of(&self, state: StateId) -> usize {
        let mut depth = 0;
        let mut region = self.state(state).parent;
        while let Some(owner) = self.region(region).owner {
            depth += 1;
            region = self.state(owner).parent;
        }
        depth
    }

    /// Every signal name any action of the machine may emit, sorted.
    pub fn emitted_signals(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for state in self.states.values() {
            for a in state.entry.iter().chain(&state.exit) {
                a.emitted_signals(&mut out);
            }
        }
        for t in self.transitions.values() {
            for a in &t.effect {
                a.emitted_signals(&mut out);
            }
        }
        for r in self.regions.values() {
            for a in &r.initial_effect {
                a.emitted_signals(&mut out);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Mutation (used by the model optimizer)
    // ------------------------------------------------------------------

    /// Removes a state, cascading:
    ///
    /// * every transition whose source or target is the state is removed;
    /// * if the state is composite, its nested region and everything inside
    ///   it (recursively) is removed;
    /// * if the state was a region's initial state, the region's initial is
    ///   cleared (validation will flag the region if it is still enterable).
    ///
    /// Returns the ids of all removed states (including nested ones) and
    /// transitions.
    pub fn remove_state(&mut self, id: StateId) -> (Vec<StateId>, Vec<TransitionId>) {
        let mut removed_states = Vec::new();
        let mut removed_transitions = Vec::new();
        self.remove_state_rec(id, &mut removed_states, &mut removed_transitions);
        (removed_states, removed_transitions)
    }

    fn remove_state_rec(
        &mut self,
        id: StateId,
        removed_states: &mut Vec<StateId>,
        removed_transitions: &mut Vec<TransitionId>,
    ) {
        let Some(state) = self.states.get(&id).cloned() else {
            return;
        };
        // Remove nested region first.
        if let StateKind::Composite(region) = state.kind {
            for sub in self.states_in(region) {
                self.remove_state_rec(sub, removed_states, removed_transitions);
            }
            self.regions.remove(&region);
        }
        // Remove touching transitions.
        let touching: Vec<TransitionId> = self
            .transitions
            .iter()
            .filter(|(_, t)| t.source == id || t.target == id)
            .map(|(tid, _)| *tid)
            .collect();
        for tid in touching {
            self.transitions.remove(&tid);
            removed_transitions.push(tid);
        }
        // Clear dangling initial pointers.
        for region in self.regions.values_mut() {
            if region.initial == Some(id) {
                region.initial = None;
            }
        }
        self.states.remove(&id);
        removed_states.push(id);
    }

    /// Removes a transition. Returns it if it was live.
    pub fn remove_transition(&mut self, id: TransitionId) -> Option<Transition> {
        self.transitions.remove(&id)
    }

    /// Removes an event type. Returns it if it was live. The caller is
    /// responsible for first removing transitions triggered by the event
    /// (validation flags dangling triggers).
    pub fn remove_event(&mut self, id: EventId) -> Option<Event> {
        self.events.remove(&id)
    }

    /// Redirects every transition targeting `from` to target `into`, and
    /// every transition sourced at `from` to source at `into`. Used by the
    /// equivalent-state merging pass. Self-loops created by the redirection
    /// are kept (they were loops between equivalent states).
    pub fn redirect_state(&mut self, from: StateId, into: StateId) {
        for t in self.transitions.values_mut() {
            if t.source == from {
                t.source = into;
            }
            if t.target == from {
                t.target = into;
            }
        }
        for region in self.regions.values_mut() {
            if region.initial == Some(from) {
                region.initial = Some(into);
            }
        }
    }
}

impl fmt::Display for StateMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "state machine `{}` [{}]", self.name, self.semantics)?;
        for (rid, region) in &self.regions {
            let owner = match region.owner {
                Some(s) => format!(" in {}", self.state(s).name),
                None => String::new(),
            };
            writeln!(f, "  region {rid} `{}`{owner}:", region.name)?;
            if let Some(init) = region.initial {
                writeln!(f, "    initial -> {}", self.state(init).name)?;
            }
            for sid in self.states_in(*rid) {
                let s = self.state(sid);
                let kind = match s.kind {
                    StateKind::Simple => "state",
                    StateKind::Composite(_) => "composite",
                    StateKind::Final => "final",
                };
                writeln!(f, "    {kind} {sid} `{}`", s.name)?;
            }
        }
        for (tid, t) in &self.transitions {
            let trig = match t.trigger {
                Trigger::Event(e) => self.event(e).name.clone(),
                Trigger::Completion => "<completion>".to_string(),
            };
            let guard = t
                .guard
                .as_ref()
                .map(|g| format!(" [{g}]"))
                .unwrap_or_default();
            writeln!(
                f,
                "  {tid}: {} -{trig}{guard}-> {}",
                self.state(t.source).name,
                self.state(t.target).name
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_machine() -> (StateMachine, StateId, StateId, EventId) {
        let mut m = StateMachine::new("m");
        let root = m.root();
        let a = m.add_state(root, "A");
        let b = m.add_state(root, "B");
        let e = m.add_event("go");
        m.region_mut(root).initial = Some(a);
        m.add_transition(Transition {
            source: a,
            target: b,
            trigger: Trigger::Event(e),
            guard: None,
            effect: Vec::new(),
        });
        (m, a, b, e)
    }

    #[test]
    fn add_and_query_states() {
        let (m, a, b, _) = simple_machine();
        assert_eq!(m.state(a).name, "A");
        assert_eq!(m.states_in(m.root()), vec![a, b]);
        assert_eq!(m.state_by_name("B"), Some(b));
        assert_eq!(m.state_by_name("Z"), None);
    }

    #[test]
    fn add_event_dedups_by_name() {
        let mut m = StateMachine::new("m");
        let e1 = m.add_event("tick");
        let e2 = m.add_event("tick");
        assert_eq!(e1, e2);
        assert_eq!(m.events().count(), 1);
    }

    #[test]
    fn transitions_from_and_into() {
        let (m, a, b, _) = simple_machine();
        assert_eq!(m.transitions_from(a).len(), 1);
        assert_eq!(m.transitions_into(b).len(), 1);
        assert!(m.transitions_from(b).is_empty());
    }

    #[test]
    fn remove_state_cascades_transitions() {
        let (mut m, a, b, _) = simple_machine();
        let (states, transitions) = m.remove_state(b);
        assert_eq!(states, vec![b]);
        assert_eq!(transitions.len(), 1);
        assert!(m.try_state(b).is_none());
        assert!(m.transitions_from(a).is_empty());
    }

    #[test]
    fn remove_composite_cascades_region() {
        let mut m = StateMachine::new("m");
        let root = m.root();
        let (comp, nested) = m.add_composite_state(root, "C");
        let inner = m.add_state(nested, "Inner");
        m.region_mut(nested).initial = Some(inner);
        let e = m.add_event("go");
        m.add_transition(Transition {
            source: inner,
            target: inner,
            trigger: Trigger::Event(e),
            guard: None,
            effect: Vec::new(),
        });

        let (states, transitions) = m.remove_state(comp);
        assert_eq!(states.len(), 2, "inner and composite removed");
        assert_eq!(transitions.len(), 1);
        assert!(m.regions().all(|(id, _)| id != nested));
    }

    #[test]
    fn remove_initial_state_clears_region_initial() {
        let (mut m, a, _, _) = simple_machine();
        m.remove_state(a);
        assert_eq!(m.region(m.root()).initial, None);
    }

    #[test]
    fn depth_of_nested_state() {
        let mut m = StateMachine::new("m");
        let root = m.root();
        let (c1, r1) = m.add_composite_state(root, "C1");
        let (_c2, r2) = m.add_composite_state(r1, "C2");
        let leaf = m.add_state(r2, "Leaf");
        assert_eq!(m.depth_of(c1), 0);
        assert_eq!(m.depth_of(leaf), 2);
    }

    #[test]
    fn redirect_rewires_endpoints_and_initial() {
        let (mut m, a, b, e) = simple_machine();
        let c = m.add_state(m.root(), "C");
        m.add_transition(Transition {
            source: b,
            target: c,
            trigger: Trigger::Event(e),
            guard: None,
            effect: Vec::new(),
        });
        m.redirect_state(b, a);
        assert!(m.transitions().all(|(_, t)| t.source != b && t.target != b));
        // a -> a self loop plus a -> c.
        assert_eq!(m.transitions_from(a).len(), 2);
    }

    #[test]
    fn emitted_signals_union() {
        let mut m = StateMachine::new("m");
        let root = m.root();
        let a = m.add_state(root, "A");
        m.state_mut(a).entry.push(Action::emit("hello"));
        m.state_mut(a).exit.push(Action::emit("bye"));
        let sigs = m.emitted_signals();
        assert_eq!(
            sigs.into_iter().collect::<Vec<_>>(),
            vec!["bye".to_string(), "hello".to_string()]
        );
    }

    #[test]
    fn display_lists_elements() {
        let (m, ..) = simple_machine();
        let text = m.to_string();
        assert!(text.contains("state machine `m`"));
        assert!(text.contains("`A`"));
        assert!(text.contains("-go->") || text.contains("-go"), "{text}");
    }
}
