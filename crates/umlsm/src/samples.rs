//! Ready-made models: the paper's Fig. 1 machines and richer RTES-flavoured
//! workloads used by the examples and the experiment harness.
//!
//! Every sample validates and runs under the paper's semantics. The
//! Fig. 1 machines follow the paper's structure exactly; their actions are
//! fleshed out (entry/exit behaviour, effects, context variables) so that
//! generated code has realistic mass — the paper's own machines carry
//! behaviour code too, it is just not reproduced in the figure.

use crate::action::Action;
use crate::builder::MachineBuilder;
use crate::expr::Expr;
use crate::machine::StateMachine;

/// A realistic slab of handler behaviour: saturating accumulation, mode
/// bookkeeping and telemetry — the kind of entry/exit code real RTES state
/// handlers contain (the paper's machines carry behaviour too; the figure
/// simply does not show it). Requires the machine to declare `acc` and
/// `mode` variables; emits signals prefixed with `tag`.
fn handler_block(tag: &str, acc: &str, scale: i64) -> Vec<Action> {
    vec![
        Action::assign(
            acc,
            Expr::var(acc)
                .mul(Expr::int(scale))
                .add(Expr::int(scale + 1)),
        ),
        Action::if_else(
            Expr::var(acc).gt(Expr::int(10_000)),
            vec![
                Action::assign(acc, Expr::int(10_000)),
                Action::emit(format!("{tag}_sat")),
            ],
            vec![Action::emit_arg(format!("{tag}_acc"), Expr::var(acc))],
        ),
        Action::assign("mode", Expr::var("mode").add(Expr::int(1))),
        Action::if_then(
            Expr::var("mode").rem(Expr::int(4)).eq(Expr::int(0)),
            vec![Action::emit_arg(format!("{tag}_mode"), Expr::var("mode"))],
        ),
        Action::if_else(
            Expr::var(acc).rem(Expr::int(2)).eq(Expr::int(0)),
            vec![Action::emit_arg(
                format!("{tag}_even"),
                Expr::var(acc).div(Expr::int(2)),
            )],
            vec![Action::emit_arg(
                format!("{tag}_odd"),
                Expr::var(acc).add(Expr::var("mode")),
            )],
        ),
        Action::emit_arg(format!("{tag}_t"), Expr::var(acc).add(Expr::var("mode"))),
    ]
}

/// Fig. 1, row 1: the flat machine with unreachable state `S2`.
///
/// Three states, initial and final pseudostates, five transitions. `S2` has
/// two *outgoing* transitions but no incoming one, so it is unreachable —
/// the model-level dead code the paper shows GCC cannot remove.
///
/// # Example
///
/// ```
/// let m = umlsm::samples::flat_unreachable();
/// let s2 = m.state_by_name("S2").expect("sample has S2");
/// assert!(m.transitions_into(s2).is_empty(), "S2 is unreachable");
/// ```
pub fn flat_unreachable() -> StateMachine {
    let mut b = MachineBuilder::new("fig1_flat");
    b.variable("counter", 0);
    b.variable("mode", 0);

    let s1 = b.state("S1");
    let s2 = b.state("S2");
    let s3 = b.state("S3");
    let fin = b.final_state("Final");

    let e1 = b.event("e1");
    let e2 = b.event("e2");
    let e3 = b.event("e3");

    b.initial(s1);
    b.on_entry(s1, {
        let mut acts = vec![
            Action::assign("counter", Expr::var("counter").add(Expr::int(1))),
            Action::emit_arg("s1_active", Expr::var("counter")),
        ];
        acts.extend(handler_block("s1", "counter", 2));
        acts.extend(handler_block("s1_b", "mode", 3));
        acts
    });
    b.on_exit(s1, vec![Action::emit("s1_left")]);
    // Unreachable state with real behaviour: this is the dead code the
    // compiler keeps and the model optimizer deletes.
    b.on_entry(s2, {
        let acts = vec![
            Action::assign("mode", Expr::int(2)),
            Action::assign("counter", Expr::var("counter").mul(Expr::int(3))),
            Action::emit_arg("s2_active", Expr::var("counter")),
            Action::if_then(
                Expr::var("counter").gt(Expr::int(100)),
                vec![Action::assign("counter", Expr::int(0))],
            ),
        ];
        acts
    });
    b.on_exit(
        s2,
        vec![
            Action::emit("s2_left"),
            Action::assign("mode", Expr::int(0)),
        ],
    );
    b.on_entry(s3, {
        let mut acts = vec![
            Action::assign("mode", Expr::int(3)),
            Action::emit_arg("s3_active", Expr::var("mode")),
        ];
        acts.extend(handler_block("s3", "counter", 4));
        acts.extend(handler_block("s3_b", "mode", 5));
        acts
    });
    b.on_exit(s3, vec![Action::emit("s3_left")]);

    // The five transitions of the figure: two leaving S2 (dead), a cycle
    // S1 <-> S3, and S3 -> Final.
    b.transition(s1, s3)
        .on(e1)
        .then(vec![Action::emit("t_s1_s3")])
        .build();
    b.transition(s3, s1)
        .on(e2)
        .then(vec![Action::assign(
            "counter",
            Expr::var("counter").add(Expr::int(2)),
        )])
        .build();
    b.transition(s3, fin).on(e3).build();
    b.transition(s2, s3)
        .on(e1)
        .then(vec![Action::emit("t_s2_s3")])
        .build();
    b.transition(s2, s1).on(e2).build();

    b.finish().expect("fig1 flat sample is well-formed")
}

/// Fig. 1, row 2: the hierarchical machine whose composite state `S3` is
/// never active.
///
/// `S2` has two outgoing transitions: `e2 -> S3` and an *unguarded
/// completion transition* to the final state. Under the paper's semantics
/// the completion transition always fires first, so `S3` — a composite
/// state with a whole submachine inside — is never entered. Removing it at
/// model level deletes the entire submachine implementation unit
/// ("the whole class is removed"), the paper's > 45 % size win.
///
/// # Example
///
/// ```
/// let m = umlsm::samples::hierarchical_never_active();
/// let s3 = m.state_by_name("S3").expect("sample has S3");
/// assert!(m.state(s3).region().is_some(), "S3 is composite");
/// ```
pub fn hierarchical_never_active() -> StateMachine {
    let mut b = MachineBuilder::new("fig1_hier");
    b.variable("counter", 0);
    b.variable("level", 0);
    b.variable("retries", 0);
    b.variable("mode", 0);

    let s1 = b.state("S1");
    let s2 = b.state("S2");
    let (s3, sub) = b.composite("S3");
    let fin = b.final_state("Final");

    let e1 = b.event("e1");
    let e2 = b.event("e2");
    let e3 = b.event("e3");
    let e4 = b.event("e4");

    b.initial(s1);
    b.on_entry(s1, {
        let mut acts = vec![
            Action::assign("counter", Expr::var("counter").add(Expr::int(1))),
            Action::emit_arg("s1_active", Expr::var("counter")),
        ];
        acts.extend(handler_block("s1", "counter", 2));
        acts
    });
    b.on_exit(s1, vec![Action::emit("s1_left")]);
    b.on_entry(
        s2,
        vec![
            Action::assign("level", Expr::int(1)),
            Action::emit_arg("s2_active", Expr::var("level")),
        ],
    );
    b.on_exit(s2, vec![Action::emit("s2_left")]);

    // The submachine inside S3: a four-state workflow with guards, effects
    // and its own final state. All of it is dead under completion-priority
    // semantics.
    b.on_entry(s3, {
        let mut acts = vec![
            Action::assign("level", Expr::int(3)),
            Action::emit_arg("s3_active", Expr::var("level")),
        ];
        acts.extend(handler_block("s3", "level", 4));
        acts
    });
    b.on_exit(s3, vec![Action::emit("s3_left")]);
    let sa = b.state_in(sub, "S3_Init");
    let sb = b.state_in(sub, "S3_Work");
    let sc = b.state_in(sub, "S3_Check");
    let sd = b.state_in(sub, "S3_Retry");
    let sfin = b.final_state_in(sub, "S3_Done");
    b.initial_in(sub, sa);
    b.on_entry(sa, {
        let mut acts = vec![
            Action::assign("retries", Expr::int(0)),
            Action::emit("s3_init"),
        ];
        acts.extend(handler_block("s3_a", "retries", 2));
        acts
    });
    b.on_entry(sb, {
        let mut acts = vec![
            Action::assign("counter", Expr::var("counter").add(Expr::int(10))),
            Action::emit_arg("s3_work", Expr::var("counter")),
        ];
        acts.extend(handler_block("s3_b", "counter", 3));
        acts
    });
    b.on_exit(sb, vec![Action::emit("s3_work_done")]);
    b.on_entry(
        sc,
        vec![Action::if_else(
            Expr::var("counter").rem(Expr::int(2)).eq(Expr::int(0)),
            vec![Action::emit("check_even")],
            vec![Action::emit("check_odd")],
        )],
    );
    b.on_entry(sd, {
        let mut acts = vec![
            Action::assign("retries", Expr::var("retries").add(Expr::int(1))),
            Action::emit_arg("s3_retry", Expr::var("retries")),
        ];
        acts.extend(handler_block("s3_d", "retries", 5));
        acts
    });
    b.transition(sa, sb).on(e1).build();
    b.transition(sb, sc).on(e2).build();
    b.transition(sc, sfin)
        .on(e3)
        .when(Expr::var("retries").ge(Expr::int(0)))
        .build();
    b.transition(sc, sd)
        .on(e4)
        .when(Expr::var("retries").lt(Expr::int(3)))
        .build();
    b.transition(sd, sb)
        .on(e1)
        .then(vec![Action::emit("retrying")])
        .build();

    // Outer transitions (the figure): S1 -e1-> S2; from S2 both the
    // event transition to S3 and the completion transition to Final.
    b.transition(s1, s2).on(e1).build();
    b.transition(s2, s3)
        .on(e2)
        .then(vec![Action::emit("entering_s3")])
        .build();
    b.transition(s2, fin).on_completion().build();
    // S3's own outgoing arcs back into the live part.
    b.transition(s3, s1)
        .on(e4)
        .then(vec![Action::emit("s3_aborted")])
        .build();
    b.transition(s3, fin).on_completion().build();

    b.finish().expect("fig1 hierarchical sample is well-formed")
}

/// Scaling family for experiment E5: a live 4-state core plus `dead`
/// unreachable states, each carrying realistic behaviour.
///
/// The paper claims the optimization gain "is proportional to the number of
/// removed states/transitions"; sweeping `dead` reproduces that curve.
pub fn flat_with_unreachable(dead: usize) -> StateMachine {
    let mut b = MachineBuilder::new(format!("scaling_{dead}"));
    b.variable("x", 0);
    b.variable("y", 1);
    b.variable("mode", 0);

    let idle = b.state("Idle");
    let run = b.state("Run");
    let pause = b.state("Pause");
    let fin = b.final_state("Final");
    let start = b.event("start");
    let stop = b.event("stop");
    let toggle = b.event("toggle");

    b.initial(idle);
    b.on_entry(idle, vec![Action::emit("idle")]);
    b.on_entry(
        run,
        vec![
            Action::assign("x", Expr::var("x").add(Expr::int(1))),
            Action::emit_arg("run", Expr::var("x")),
        ],
    );
    b.on_entry(pause, vec![Action::emit("pause")]);
    b.transition(idle, run).on(start).build();
    b.transition(run, pause).on(toggle).build();
    b.transition(pause, run).on(toggle).build();
    b.transition(run, fin).on(stop).build();

    for i in 0..dead {
        let name = format!("Dead{i}");
        let d = b.state(&name);
        b.on_entry(d, {
            let mut acts = vec![
                Action::assign(
                    "y",
                    Expr::var("y").mul(Expr::int(2)).add(Expr::int(i as i64)),
                ),
                Action::emit_arg("dead_active", Expr::var("y")),
                Action::if_then(
                    Expr::var("y").gt(Expr::int(1000)),
                    vec![Action::assign("y", Expr::int(1))],
                ),
            ];
            acts.extend(handler_block("dead_h", "y", 2 + i as i64 % 3));
            acts
        });
        b.on_exit(d, vec![Action::emit("dead_left")]);
        // Dead states point into the live part and at each other, but
        // nothing points at them.
        b.transition(d, run).on(start).build();
        b.transition(d, idle)
            .on(stop)
            .then(vec![Action::emit("dead_to_idle")])
            .build();
    }

    b.finish().expect("scaling sample is well-formed")
}

/// An automotive cruise-control state machine: the RTES control workload
/// the paper's introduction motivates. Fully live (nothing to optimize away
/// except guard simplification), used by examples and as a negative control
/// in the benches.
pub fn cruise_control() -> StateMachine {
    let mut b = MachineBuilder::new("cruise_control");
    b.variable("speed", 0);
    b.variable("target", 0);

    let off = b.state("Off");
    let standby = b.state("Standby");
    let (active, areg) = b.composite("Active");
    let fin = b.final_state("ShutDown");

    let power = b.event("power");
    let set = b.event("set");
    let brake = b.event("brake");
    let resume = b.event("resume");
    let accel = b.event("accel");
    let kill = b.event("kill");

    b.initial(off);
    b.on_entry(off, vec![Action::emit("cc_off")]);
    b.on_entry(standby, vec![Action::emit("cc_standby")]);
    b.on_entry(
        active,
        vec![
            Action::assign("target", Expr::var("speed")),
            Action::emit_arg("cc_engaged", Expr::var("target")),
        ],
    );
    b.on_exit(active, vec![Action::emit("cc_disengaged")]);

    let cruising = b.state_in(areg, "Cruising");
    let adjusting = b.state_in(areg, "Adjusting");
    b.initial_in(areg, cruising);
    b.on_entry(
        cruising,
        vec![Action::emit_arg("hold", Expr::var("target"))],
    );
    b.on_entry(
        adjusting,
        vec![
            Action::assign("target", Expr::var("target").add(Expr::int(5))),
            Action::emit_arg("adjust", Expr::var("target")),
        ],
    );
    b.transition(cruising, adjusting)
        .on(accel)
        .when(Expr::var("target").lt(Expr::int(130)))
        .build();
    b.transition(adjusting, cruising).on(set).build();

    b.transition(off, standby).on(power).build();
    b.transition(standby, active)
        .on(set)
        .when(Expr::var("speed").ge(Expr::int(30)))
        .then(vec![Action::emit("engaging")])
        .build();
    b.transition(active, standby)
        .on(brake)
        .then(vec![Action::emit("braked")])
        .build();
    b.transition(standby, active)
        .on(resume)
        .when(Expr::var("target").gt(Expr::int(0)))
        .build();
    b.transition(standby, off).on(power).build();
    b.transition(off, fin).on(kill).build();

    b.finish().expect("cruise control sample is well-formed")
}

/// A communication-protocol handler with a dead "legacy" composite state:
/// a realistic machine where *both* paper optimizations apply at once
/// (an unreachable simple state and a completion-shadowed composite).
pub fn protocol_handler() -> StateMachine {
    let mut b = MachineBuilder::new("protocol_handler");
    b.variable("seq", 0);
    b.variable("errors", 0);

    let idle = b.state("Idle");
    let connecting = b.state("Connecting");
    let established = b.state("Established");
    let draining = b.state("Draining");
    let (legacy, lreg) = b.composite("LegacyMode");
    let orphan = b.state("OrphanDiag");
    let fin = b.final_state("Closed");

    let open = b.event("open");
    let ack = b.event("ack");
    let data = b.event("data");
    let close = b.event("close");
    let downgrade = b.event("downgrade");

    b.initial(idle);
    b.on_entry(idle, vec![Action::emit("idle")]);
    b.on_entry(
        connecting,
        vec![
            Action::assign("seq", Expr::int(1)),
            Action::emit_arg("syn", Expr::var("seq")),
        ],
    );
    b.on_entry(
        established,
        vec![Action::emit_arg("established", Expr::var("seq"))],
    );
    b.on_entry(draining, vec![Action::emit("draining")]);

    b.transition(idle, connecting).on(open).build();
    b.transition(connecting, established)
        .on(ack)
        .then(vec![Action::assign(
            "seq",
            Expr::var("seq").add(Expr::int(1)),
        )])
        .build();
    b.transition(established, established)
        .on(data)
        .then(vec![
            Action::assign("seq", Expr::var("seq").add(Expr::int(1))),
            Action::emit_arg("payload", Expr::var("seq")),
        ])
        .build();
    b.transition(established, draining).on(close).build();
    // Draining completes immediately: unguarded completion transition that
    // shadows the event transition into the legacy composite below.
    b.transition(draining, fin).on_completion().build();
    b.transition(draining, legacy)
        .on(downgrade)
        .then(vec![Action::emit("downgrading")])
        .build();

    // The dead legacy submachine.
    b.on_entry(legacy, vec![Action::emit("legacy")]);
    let l1 = b.state_in(lreg, "Legacy_Negotiate");
    let l2 = b.state_in(lreg, "Legacy_Transfer");
    let lfin = b.final_state_in(lreg, "Legacy_Done");
    b.initial_in(lreg, l1);
    b.on_entry(
        l1,
        vec![
            Action::assign("errors", Expr::var("errors").add(Expr::int(1))),
            Action::emit_arg("legacy_nego", Expr::var("errors")),
        ],
    );
    b.on_entry(l2, vec![Action::emit("legacy_xfer")]);
    b.transition(l1, l2).on(ack).build();
    b.transition(l2, lfin).on(close).build();
    b.transition(legacy, fin).on_completion().build();

    // An unreachable diagnostic state (no incoming transitions).
    b.on_entry(
        orphan,
        vec![
            Action::assign("errors", Expr::var("errors").add(Expr::int(100))),
            Action::emit_arg("diag", Expr::var("errors")),
        ],
    );
    b.transition(orphan, idle).on(open).build();

    b.finish().expect("protocol handler sample is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    #[test]
    fn flat_unreachable_shape_matches_figure() {
        let m = flat_unreachable();
        let metrics = m.metrics();
        assert_eq!(metrics.simple_states, 3);
        assert_eq!(metrics.final_states, 1);
        assert_eq!(metrics.transitions, 5);
        let s2 = m.state_by_name("S2").expect("S2");
        assert!(m.transitions_into(s2).is_empty());
        assert_eq!(m.transitions_from(s2).len(), 2);
    }

    #[test]
    fn flat_unreachable_runs() {
        let m = flat_unreachable();
        let mut i = Interp::new(&m).expect("start");
        for name in ["e1", "e2", "e1", "e3"] {
            i.step_by_name(name).expect("step");
        }
        assert!(i.is_terminated());
        // S2's signals never show up.
        assert!(i
            .trace()
            .observable()
            .iter()
            .all(|(s, _)| !s.starts_with("s2_")));
    }

    #[test]
    fn hierarchical_never_activates_s3() {
        let m = hierarchical_never_active();
        let mut i = Interp::new(&m).expect("start");
        for name in ["e1", "e2", "e1", "e2", "e3", "e4"] {
            i.step_by_name(name).expect("step");
        }
        assert!(i
            .trace()
            .observable()
            .iter()
            .all(|(s, _)| !s.starts_with("s3_") && s != "entering_s3"));
        assert!(i.is_terminated());
    }

    #[test]
    fn scaling_family_grows_linearly() {
        let m0 = flat_with_unreachable(0);
        let m5 = flat_with_unreachable(5);
        assert_eq!(m5.metrics().states - m0.metrics().states, 5);
        assert_eq!(m5.metrics().transitions - m0.metrics().transitions, 10);
    }

    #[test]
    fn cruise_control_engages_and_brakes() {
        let m = cruise_control();
        let mut i = Interp::new(&m).expect("start");
        i.step_by_name("power").expect("power");
        // Not fast enough: guard blocks.
        i.step_by_name("set").expect("set blocked");
        assert_eq!(i.configuration(), vec!["Standby".to_string()]);
        // Speed up, then engage.
        let speed = i.machine().event_by_name("set").expect("set");
        let _ = speed;
        // Directly poke the variable through a fresh machine run: use accel
        // path instead — engage requires speed >= 30 which our env provides
        // by constructing the machine with speed preset.
        let mut m2 = cruise_control();
        m2.set_variable("speed", 50);
        let mut i2 = Interp::new(&m2).expect("start");
        i2.step_by_name("power").expect("power");
        i2.step_by_name("set").expect("engage");
        assert_eq!(
            i2.configuration(),
            vec!["Active".to_string(), "Cruising".to_string()]
        );
        i2.step_by_name("brake").expect("brake");
        assert_eq!(i2.configuration(), vec!["Standby".to_string()]);
    }

    #[test]
    fn protocol_handler_dead_parts_never_emit() {
        let m = protocol_handler();
        let mut i = Interp::new(&m).expect("start");
        for name in ["open", "ack", "data", "data", "close", "downgrade", "ack"] {
            i.step_by_name(name).expect("step");
        }
        assert!(i.is_terminated());
        for (sig, _) in i.trace().observable() {
            assert!(
                !sig.starts_with("legacy") && sig != "diag" && sig != "downgrading",
                "dead signal {sig} observed"
            );
        }
    }

    #[test]
    fn all_samples_validate() {
        for m in [
            flat_unreachable(),
            hierarchical_never_active(),
            flat_with_unreachable(7),
            cruise_control(),
            protocol_handler(),
        ] {
            m.validate().expect("sample validates");
        }
    }
}
