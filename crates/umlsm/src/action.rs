//! The action language used by entry/exit behaviours and transition effects.
//!
//! Actions are the UML "Action & Activities" subset the paper relies on for
//! fully automatic code generation: assignments to context variables,
//! observable signal emissions, and conditional blocks. Loops are
//! intentionally absent so every action sequence terminates — the property
//! that makes bounded trace equivalence a sound behaviour-preservation
//! check for model optimizations.

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::Expr;

/// A single action statement.
///
/// # Example
///
/// ```
/// use umlsm::{Action, Expr};
///
/// // speed = speed + 1; emit("accelerating", speed)
/// let actions = vec![
///     Action::assign("speed", Expr::var("speed").add(Expr::int(1))),
///     Action::emit_arg("accelerating", Expr::var("speed")),
/// ];
/// assert_eq!(actions.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Assigns the value of an expression to a context variable.
    Assign {
        /// Target variable name.
        var: String,
        /// Right-hand side.
        value: Expr,
    },
    /// Emits an observable signal, optionally carrying one integer argument.
    ///
    /// Emissions are the *observable behaviour* of a machine: the trace of
    /// emissions is what model optimization and code generation must
    /// preserve.
    Emit {
        /// Signal name.
        signal: String,
        /// Optional integer payload.
        arg: Option<Expr>,
    },
    /// Executes one of two action sequences depending on a condition.
    If {
        /// Boolean condition.
        cond: Expr,
        /// Actions executed when the condition holds.
        then_actions: Vec<Action>,
        /// Actions executed otherwise.
        else_actions: Vec<Action>,
    },
}

impl Action {
    /// Builds an assignment action.
    pub fn assign(var: impl Into<String>, value: Expr) -> Action {
        Action::Assign {
            var: var.into(),
            value,
        }
    }

    /// Builds a signal emission with no payload.
    pub fn emit(signal: impl Into<String>) -> Action {
        Action::Emit {
            signal: signal.into(),
            arg: None,
        }
    }

    /// Builds a signal emission carrying one integer payload.
    pub fn emit_arg(signal: impl Into<String>, arg: Expr) -> Action {
        Action::Emit {
            signal: signal.into(),
            arg: Some(arg),
        }
    }

    /// Builds a conditional action.
    pub fn if_else(cond: Expr, then_actions: Vec<Action>, else_actions: Vec<Action>) -> Action {
        Action::If {
            cond,
            then_actions,
            else_actions,
        }
    }

    /// Builds a conditional action without an else branch.
    pub fn if_then(cond: Expr, then_actions: Vec<Action>) -> Action {
        Action::if_else(cond, then_actions, Vec::new())
    }

    /// Collects every variable read by this action (guards and right-hand
    /// sides, recursively).
    pub fn read_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Action::Assign { value, .. } => out.extend(value.free_vars()),
            Action::Emit { arg, .. } => {
                if let Some(arg) = arg {
                    out.extend(arg.free_vars());
                }
            }
            Action::If {
                cond,
                then_actions,
                else_actions,
            } => {
                out.extend(cond.free_vars());
                for a in then_actions.iter().chain(else_actions) {
                    a.read_vars(out);
                }
            }
        }
    }

    /// Collects every variable written by this action, recursively.
    pub fn written_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Action::Assign { var, .. } => {
                out.insert(var.clone());
            }
            Action::Emit { .. } => {}
            Action::If {
                then_actions,
                else_actions,
                ..
            } => {
                for a in then_actions.iter().chain(else_actions) {
                    a.written_vars(out);
                }
            }
        }
    }

    /// Collects every signal name this action may emit, recursively.
    pub fn emitted_signals(&self, out: &mut BTreeSet<String>) {
        match self {
            Action::Assign { .. } => {}
            Action::Emit { signal, .. } => {
                out.insert(signal.clone());
            }
            Action::If {
                then_actions,
                else_actions,
                ..
            } => {
                for a in then_actions.iter().chain(else_actions) {
                    a.emitted_signals(out);
                }
            }
        }
    }

    /// Counts the primitive statements in this action, recursively. Used by
    /// model metrics.
    pub fn statement_count(&self) -> usize {
        match self {
            Action::Assign { .. } | Action::Emit { .. } => 1,
            Action::If {
                then_actions,
                else_actions,
                ..
            } => {
                1 + then_actions
                    .iter()
                    .chain(else_actions)
                    .map(Action::statement_count)
                    .sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Assign { var, value } => write!(f, "{var} = {value};"),
            Action::Emit { signal, arg: None } => write!(f, "emit {signal};"),
            Action::Emit {
                signal,
                arg: Some(arg),
            } => write!(f, "emit {signal}({arg});"),
            Action::If {
                cond,
                then_actions,
                else_actions,
            } => {
                write!(f, "if {cond} {{ ")?;
                for a in then_actions {
                    write!(f, "{a} ")?;
                }
                write!(f, "}}")?;
                if !else_actions.is_empty() {
                    write!(f, " else {{ ")?;
                    for a in else_actions {
                        write!(f, "{a} ")?;
                    }
                    write!(f, "}}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn read_and_written_vars() {
        let a = Action::if_else(
            Expr::var("mode").eq(Expr::int(1)),
            vec![Action::assign("x", Expr::var("y").add(Expr::int(1)))],
            vec![Action::emit_arg("sig", Expr::var("z"))],
        );
        let mut reads = BTreeSet::new();
        a.read_vars(&mut reads);
        assert_eq!(
            reads.into_iter().collect::<Vec<_>>(),
            vec!["mode".to_string(), "y".to_string(), "z".to_string()]
        );
        let mut writes = BTreeSet::new();
        a.written_vars(&mut writes);
        assert_eq!(
            writes.into_iter().collect::<Vec<_>>(),
            vec!["x".to_string()]
        );
    }

    #[test]
    fn emitted_signals_recurse() {
        let a = Action::if_then(
            Expr::bool(true),
            vec![Action::emit("inner"), Action::emit("other")],
        );
        let mut sigs = BTreeSet::new();
        a.emitted_signals(&mut sigs);
        assert_eq!(sigs.len(), 2);
    }

    #[test]
    fn statement_count_counts_nested() {
        let a = Action::if_else(
            Expr::bool(true),
            vec![Action::emit("a"), Action::emit("b")],
            vec![Action::assign("x", Expr::int(0))],
        );
        assert_eq!(a.statement_count(), 4);
    }

    #[test]
    fn display_is_readable() {
        let a = Action::assign("x", Expr::int(3));
        assert_eq!(a.to_string(), "x = 3;");
        let e = Action::emit_arg("tick", Expr::var("x"));
        assert_eq!(e.to_string(), "emit tick(x);");
    }
}
