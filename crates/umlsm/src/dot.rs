//! Graphviz export of state machines.
//!
//! Mirrors what the paper's Papyrus diagrams show: states (composite states
//! as clusters), initial/final pseudostates, and labelled transition arcs.

use std::fmt::Write as _;

use crate::ids::RegionId;
use crate::machine::{StateKind, StateMachine, Trigger};

impl StateMachine {
    /// Renders the machine as a Graphviz `digraph`.
    ///
    /// # Example
    ///
    /// ```
    /// use umlsm::MachineBuilder;
    ///
    /// # fn main() -> Result<(), umlsm::ValidateError> {
    /// let mut b = MachineBuilder::new("m");
    /// let a = b.state("A");
    /// b.initial(a);
    /// let dot = b.finish()?.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=Mrecord, fontsize=10];");
        self.dot_region(self.root(), 1, &mut out);
        for (tid, t) in self.transitions() {
            let label = match t.trigger {
                Trigger::Event(e) => self.event(e).name.clone(),
                Trigger::Completion => String::new(),
            };
            let guard = t
                .guard
                .as_ref()
                .map(|g| format!(" [{g}]"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  s{} -> s{} [label=\"{label}{guard}\", id=\"{tid}\"];",
                t.source.index(),
                t.target.index()
            );
        }
        out.push_str("}\n");
        out
    }

    fn dot_region(&self, region: RegionId, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        if let Some(initial) = self.region(region).initial {
            let _ = writeln!(
                out,
                "{pad}init_r{} [shape=point, width=0.15, label=\"\"];",
                region.index()
            );
            let _ = writeln!(
                out,
                "{pad}init_r{} -> s{};",
                region.index(),
                initial.index()
            );
        }
        for sid in self.states_in(region) {
            let s = self.state(sid);
            match s.kind {
                StateKind::Simple => {
                    let _ = writeln!(out, "{pad}s{} [label=\"{}\"];", sid.index(), s.name);
                }
                StateKind::Final => {
                    let _ = writeln!(
                        out,
                        "{pad}s{} [shape=doublecircle, width=0.2, label=\"\"];",
                        sid.index()
                    );
                }
                StateKind::Composite(inner) => {
                    let _ = writeln!(out, "{pad}subgraph cluster_s{} {{", sid.index());
                    let _ = writeln!(out, "{pad}  label=\"{}\";", s.name);
                    // Anchor node so transitions can attach to the composite.
                    let _ = writeln!(
                        out,
                        "{pad}  s{} [shape=point, style=invis, label=\"\"];",
                        sid.index()
                    );
                    self.dot_region(inner, indent + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::MachineBuilder;

    #[test]
    fn dot_contains_states_and_edges() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        let e = b.event("go");
        b.initial(a);
        b.transition(a, c).on(e).build();
        let dot = b.finish().expect("valid").to_dot();
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("label=\"go\""));
        assert!(dot.contains("->"));
    }

    #[test]
    fn composite_renders_as_cluster() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let (_, inner) = b.composite("C");
        let i = b.state_in(inner, "I");
        b.initial(a);
        b.initial_in(inner, i);
        let dot = b.finish().expect("valid").to_dot();
        assert!(dot.contains("subgraph cluster_"));
        assert!(dot.contains("label=\"C\""));
    }
}
