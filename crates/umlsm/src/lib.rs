//! `umlsm` — an executable UML state-machine model.
//!
//! This crate is the modeling substrate of the `mbot` toolchain, a
//! reproduction of *"Toward optimized code generation through model-based
//! optimization"* (Charfi et al., DATE 2010). It provides the subset of UML 2
//! state machines the paper exercises:
//!
//! * simple, composite and final states organised in [`Region`]s,
//! * transitions with event triggers, **completion transitions**, guards and
//!   effects,
//! * entry/exit actions written in a small action language ([`Expr`],
//!   [`Action`]),
//! * the *semantic variation points* the paper discusses, fixed by a
//!   [`Semantics`] value (most importantly completion-transition priority),
//! * a reference [`Interp`] interpreter implementing run-to-completion
//!   semantics, used as the behavioural oracle for model optimization and
//!   code generation,
//! * model [`validate`](StateMachine::validate) checks, Graphviz export and
//!   model metrics.
//!
//! # Example
//!
//! ```
//! use umlsm::MachineBuilder;
//!
//! # fn main() -> Result<(), umlsm::ValidateError> {
//! let mut b = MachineBuilder::new("blinker");
//! let off = b.state("Off");
//! let on = b.state("On");
//! let toggle = b.event("toggle");
//! b.initial(off);
//! b.transition(off, on).on(toggle).build();
//! b.transition(on, off).on(toggle).build();
//! let machine = b.finish()?;
//! assert_eq!(machine.metrics().states, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod builder;
mod dot;
mod expr;
pub mod gen;
mod ids;
mod interp;
mod machine;
mod metrics;
pub mod samples;
mod semantics;
mod validate;

pub use action::Action;
pub use builder::{MachineBuilder, TransitionBuilder};
pub use expr::{BinOp, EvalError, Expr, ExprType, UnOp, Value};
pub use ids::{EventId, RegionId, StateId, TransitionId};
pub use interp::{Interp, InterpError, Trace, TraceEvent};
pub use machine::{Event, Region, State, StateKind, StateMachine, Transition, Trigger};
pub use metrics::ModelMetrics;
pub use semantics::{ConflictResolution, Semantics, UnhandledEventPolicy};
pub use validate::ValidateError;
