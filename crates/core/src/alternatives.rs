//! Table II: classification of the three placement alternatives for
//! UML-semantics optimizations.
//!
//! The paper compares implementing semantics-aware optimizations **before**
//! code generation (on the model), **during** code generation (in the
//! generator) and **after** code generation (as new compiler passes),
//! against five criteria. This module encodes the classification and its
//! justifications; the `table2` bench prints it and attaches the mechanical
//! evidence this repo can produce (pattern-independence measured over three
//! generators, compiler-DCE infeasibility measured on the `occ` pipeline).

use std::fmt;

/// Where the semantics-aware optimization is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Alternative {
    /// On the model, before any code is generated (the paper's choice).
    BeforeCodeGeneration,
    /// Inside the code generator.
    DuringCodeGeneration,
    /// As additional compiler passes, after code generation.
    AfterCodeGeneration,
}

impl Alternative {
    /// All alternatives in the paper's row order (after, during, before).
    pub fn all() -> [Alternative; 3] {
        [
            Alternative::AfterCodeGeneration,
            Alternative::DuringCodeGeneration,
            Alternative::BeforeCodeGeneration,
        ]
    }

    /// Row label as printed in Table II.
    pub fn label(self) -> &'static str {
        match self {
            Alternative::AfterCodeGeneration => "After code generation",
            Alternative::DuringCodeGeneration => "During generation",
            Alternative::BeforeCodeGeneration => "Before code generation",
        }
    }
}

impl fmt::Display for Alternative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The five criteria of Table II (column order of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Criterion {
    /// Is the optimization easy to implement at this level?
    EasyToImplement,
    /// Is the optimization opportunity easy to detect at this level?
    EasyToDetect,
    /// Does implementing it here hurt model debugging (breakpoints on model
    /// elements)?
    AffectsModelDebug,
    /// Is the implementation independent from the chosen implementation
    /// pattern (State Pattern / STT / Nested Switch)?
    IndependentFromModelImplementation,
    /// Is the implementation independent from the chosen UML semantic
    /// variation points?
    IndependentFromSemantics,
}

impl Criterion {
    /// All criteria in column order.
    pub fn all() -> [Criterion; 5] {
        [
            Criterion::EasyToImplement,
            Criterion::EasyToDetect,
            Criterion::AffectsModelDebug,
            Criterion::IndependentFromModelImplementation,
            Criterion::IndependentFromSemantics,
        ]
    }

    /// Column label as printed in Table II.
    pub fn label(self) -> &'static str {
        match self {
            Criterion::EasyToImplement => "Easy to implement",
            Criterion::EasyToDetect => "Easy to detect",
            Criterion::AffectsModelDebug => "Affect model debug",
            Criterion::IndependentFromModelImplementation => {
                "Independent from model implementation"
            }
            Criterion::IndependentFromSemantics => "Independent from semantics",
        }
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of the classification: the verdict and its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// YES/NO as printed in the paper.
    pub verdict: bool,
    /// Why (paper §IV argumentation, condensed).
    pub rationale: &'static str,
}

/// The full Table II classification.
#[derive(Debug, Clone, Default)]
pub struct Classification;

impl Classification {
    /// The paper's verdict for one (alternative, criterion) cell.
    pub fn cell(alternative: Alternative, criterion: Criterion) -> Cell {
        use Alternative::*;
        use Criterion::*;
        match (alternative, criterion) {
            (AfterCodeGeneration, EasyToImplement) => Cell {
                verdict: false,
                rationale: "GCC has no stable plug-in API; semantic variation points would \
                            multiply low-level implementations",
            },
            (AfterCodeGeneration, EasyToDetect) => Cell {
                verdict: false,
                rationale: "the control-flow graph must be rebuilt from sequential code; \
                            model-level facts (e.g. 'no incoming transition') are gone",
            },
            (AfterCodeGeneration, AffectsModelDebug) => Cell {
                verdict: false,
                rationale: "models are not visible to compilers, so model debugging is \
                            untouched",
            },
            (AfterCodeGeneration, IndependentFromModelImplementation) => Cell {
                verdict: false,
                rationale: "each implementation pattern lowers the machine differently, so \
                            each needs its own compiler recognizer",
            },
            (AfterCodeGeneration, IndependentFromSemantics) => Cell {
                verdict: false,
                rationale: "the chosen semantic variation points determine which code is dead",
            },
            (DuringCodeGeneration, EasyToImplement) => Cell {
                verdict: true,
                rationale: "the generator still sees the model, which is compact and free of \
                            parasite sequential code",
            },
            (DuringCodeGeneration, EasyToDetect) => Cell {
                verdict: true,
                rationale: "the control-flow graph is the state machine itself",
            },
            (DuringCodeGeneration, AffectsModelDebug) => Cell {
                verdict: true,
                rationale: "breakpoints may target elements the generator silently dropped, \
                            widening the model/code gap",
            },
            (DuringCodeGeneration, IndependentFromModelImplementation) => Cell {
                verdict: false,
                rationale: "the optimization is entangled with the pattern the generator emits",
            },
            (DuringCodeGeneration, IndependentFromSemantics) => Cell {
                verdict: false,
                rationale: "the generator must re-encode the chosen variation points",
            },
            (BeforeCodeGeneration, EasyToImplement) => Cell {
                verdict: true,
                rationale: "a model-to-model rewriting on the compact model",
            },
            (BeforeCodeGeneration, EasyToDetect) => Cell {
                verdict: true,
                rationale: "reachability and completion shadowing are direct graph analyses \
                            on the model",
            },
            (BeforeCodeGeneration, AffectsModelDebug) => Cell {
                verdict: false,
                rationale: "debugging happens after code generation, on a model the user can \
                            inspect (the optimized model is itself a model)",
            },
            (BeforeCodeGeneration, IndependentFromModelImplementation) => Cell {
                verdict: true,
                rationale: "the rewriting happens before a pattern is chosen; measured: the \
                            same optimized model wins for all three generators (Table I)",
            },
            (BeforeCodeGeneration, IndependentFromSemantics) => Cell {
                verdict: false,
                rationale: "which model parts are dead depends on the fixed variation points \
                            (completion priority); no alternative escapes this",
            },
        }
    }

    /// Renders the classification as the paper's YES/NO matrix.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<24}", ""));
        for c in Criterion::all() {
            out.push_str(&format!("{:<40}", c.label()));
        }
        out.push('\n');
        for a in Alternative::all() {
            out.push_str(&format!("{:<24}", a.label()));
            for c in Criterion::all() {
                let cell = Self::cell(a, c);
                out.push_str(&format!("{:<40}", if cell.verdict { "YES" } else { "NO" }));
            }
            out.push('\n');
        }
        out
    }

    /// The paper's conclusion: the only alternative that is independent
    /// from the model implementation, does not affect model debugging, and
    /// is easy to implement and detect.
    pub fn recommended() -> Alternative {
        Alternative::all()
            .into_iter()
            .max_by_key(|a| {
                Criterion::all()
                    .into_iter()
                    .map(|c| {
                        let cell = Self::cell(*a, c);
                        // "AffectsModelDebug: YES" is bad; everything else
                        // "YES" is good.
                        let good = match c {
                            Criterion::AffectsModelDebug => !cell.verdict,
                            _ => cell.verdict,
                        };
                        usize::from(good)
                    })
                    .sum::<usize>()
            })
            .expect("non-empty alternatives")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_row_by_row() {
        use Alternative::*;
        // Paper Table II: After = NO,NO,NO,NO,NO; During = YES,YES,YES,NO,NO;
        // Before = YES,YES,NO,YES,NO.
        let expect = [
            (AfterCodeGeneration, [false, false, false, false, false]),
            (DuringCodeGeneration, [true, true, true, false, false]),
            (BeforeCodeGeneration, [true, true, false, true, false]),
        ];
        for (alt, verdicts) in expect {
            for (c, want) in Criterion::all().into_iter().zip(verdicts) {
                assert_eq!(Classification::cell(alt, c).verdict, want, "{alt} / {c}");
            }
        }
    }

    #[test]
    fn recommendation_is_before_code_generation() {
        assert_eq!(
            Classification::recommended(),
            Alternative::BeforeCodeGeneration
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let t = Classification.to_table();
        assert!(t.contains("Before code generation"));
        assert!(t.contains("After code generation"));
        assert!(t.contains("YES"));
        assert!(t.contains("NO"));
    }

    #[test]
    fn every_cell_has_a_rationale() {
        for a in Alternative::all() {
            for c in Criterion::all() {
                assert!(!Classification::cell(a, c).rationale.is_empty());
            }
        }
    }
}
