//! The two-step optimization approach (paper §VI).
//!
//! "We proposed then, a two step optimization approach where optimizations
//! are performed both in the model and compiler levels." This module is the
//! orchestration scaffold: it is generic over the code generator and the
//! compiler (both live in downstream crates — `cgen` and `occ` — which
//! depend on this one), so the concrete pipeline is assembled by the caller
//! while reuse of "existing compiler optimizations as they are" is kept
//! visible in the types.

use umlsm::StateMachine;

use crate::optimizer::{OptimizeError, Optimizer};
use crate::report::OptimizationReport;

/// Which optimization steps a pipeline run applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PipelineMode {
    /// No optimization at all (baseline).
    None,
    /// Compiler optimizations only — what plain MBD flows rely on.
    CompilerOnly,
    /// Model-level optimization only.
    ModelOnly,
    /// The paper's proposal: model-level, then compiler-level, reusing the
    /// compiler's optimizations unchanged.
    TwoStep,
}

impl PipelineMode {
    /// All modes in increasing order of applied optimization.
    pub fn all() -> [PipelineMode; 4] {
        [
            PipelineMode::None,
            PipelineMode::CompilerOnly,
            PipelineMode::ModelOnly,
            PipelineMode::TwoStep,
        ]
    }

    /// `true` if the mode includes the model-level step.
    pub fn optimizes_model(self) -> bool {
        matches!(self, PipelineMode::ModelOnly | PipelineMode::TwoStep)
    }

    /// `true` if the mode includes the compiler-level step.
    pub fn optimizes_code(self) -> bool {
        matches!(self, PipelineMode::CompilerOnly | PipelineMode::TwoStep)
    }

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PipelineMode::None => "baseline (no optimization)",
            PipelineMode::CompilerOnly => "compiler -Os only",
            PipelineMode::ModelOnly => "model optimization only",
            PipelineMode::TwoStep => "two-step (model + compiler -Os)",
        }
    }
}

/// Result of running a pipeline.
#[derive(Debug, Clone)]
pub struct PipelineRun<A> {
    /// The mode that was executed.
    pub mode: PipelineMode,
    /// The (possibly optimized) model that was handed to the generator.
    pub model: StateMachine,
    /// Model-level report (empty when the mode skips the model step).
    pub model_report: OptimizationReport,
    /// The compiled artifact produced by the caller's generator+compiler.
    pub artifact: A,
}

/// Runs the two-step pipeline: optional model optimization, then the
/// caller-supplied `generate_and_compile` closure (code generation plus the
/// compiler whose optimizations the paper reuses "as they are").
///
/// The closure receives the model to generate from and whether compiler
/// optimization should be enabled, and returns the compiled artifact —
/// typically an assembly listing with size accounting.
///
/// # Errors
///
/// Propagates model-optimization failures; the closure's failures are the
/// caller's own error type `E`.
pub fn run_pipeline<A, E, F>(
    machine: &StateMachine,
    mode: PipelineMode,
    optimizer: &Optimizer,
    mut generate_and_compile: F,
) -> Result<PipelineRun<A>, PipelineError<E>>
where
    F: FnMut(&StateMachine, bool) -> Result<A, E>,
{
    let (model, model_report) = if mode.optimizes_model() {
        let outcome = optimizer.optimize(machine).map_err(PipelineError::Model)?;
        (outcome.machine, outcome.report)
    } else {
        (machine.clone(), OptimizationReport::default())
    };
    let artifact =
        generate_and_compile(&model, mode.optimizes_code()).map_err(PipelineError::Backend)?;
    Ok(PipelineRun {
        mode,
        model,
        model_report,
        artifact,
    })
}

/// Pipeline failure: either the model step or the caller's backend step.
#[derive(Debug)]
pub enum PipelineError<E> {
    /// The model-level optimizer failed.
    Model(OptimizeError),
    /// Code generation or compilation failed.
    Backend(E),
}

impl<E: std::fmt::Display> std::fmt::Display for PipelineError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Model(e) => write!(f, "model optimization failed: {e}"),
            PipelineError::Backend(e) => write!(f, "backend failed: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for PipelineError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Model(e) => Some(e),
            PipelineError::Backend(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::samples;

    #[test]
    fn two_step_optimizes_model_before_backend() {
        let m = samples::flat_unreachable();
        let run = run_pipeline(
            &m,
            PipelineMode::TwoStep,
            &Optimizer::with_all(),
            |model, compile_opt| -> Result<(usize, bool), std::convert::Infallible> {
                Ok((model.metrics().states, compile_opt))
            },
        )
        .expect("pipeline runs");
        let (states_seen, compiled_opt) = run.artifact;
        assert!(states_seen < m.metrics().states);
        assert!(compiled_opt);
        assert!(run.model_report.changed());
    }

    #[test]
    fn compiler_only_leaves_model_alone() {
        let m = samples::flat_unreachable();
        let run = run_pipeline(
            &m,
            PipelineMode::CompilerOnly,
            &Optimizer::with_all(),
            |model, compile_opt| -> Result<(usize, bool), std::convert::Infallible> {
                Ok((model.metrics().states, compile_opt))
            },
        )
        .expect("pipeline runs");
        assert_eq!(run.artifact.0, m.metrics().states);
        assert!(run.artifact.1);
        assert!(!run.model_report.changed());
    }

    #[test]
    fn modes_report_their_steps() {
        assert!(!PipelineMode::None.optimizes_model());
        assert!(!PipelineMode::None.optimizes_code());
        assert!(PipelineMode::TwoStep.optimizes_model());
        assert!(PipelineMode::TwoStep.optimizes_code());
        assert_eq!(PipelineMode::all().len(), 4);
    }

    #[test]
    fn backend_errors_propagate() {
        let m = samples::flat_unreachable();
        #[derive(Debug)]
        struct Boom;
        impl std::fmt::Display for Boom {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "boom")
            }
        }
        let err = run_pipeline(
            &m,
            PipelineMode::None,
            &Optimizer::new(),
            |_, _| -> Result<(), Boom> { Err(Boom) },
        )
        .expect_err("must fail");
        assert!(matches!(err, PipelineError::Backend(_)));
    }
}
