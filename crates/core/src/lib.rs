//! `mbo` — model-based optimization of UML state machines.
//!
//! This crate implements the primary contribution of *"Toward optimized
//! code generation through model-based optimization"* (Charfi et al., DATE
//! 2010): an optimization level **above** the compiler's SSA level, operating
//! directly on the UML model *before* code generation, where
//! modeling-language semantics is still available.
//!
//! The paper's observations, reproduced here:
//!
//! * a state with no incoming transition is dead *model* code, but after
//!   code generation its implementation is still address-reachable, so
//!   compiler dead-code elimination keeps it ([`passes::RemoveUnreachableStates`]);
//! * under UML completion-priority semantics, an unguarded completion
//!   transition shadows every event-triggered transition out of the same
//!   state; states only reachable through shadowed transitions — including
//!   whole composite submachines — are never active
//!   ([`analysis::completion_shadowed_transitions`]);
//! * these facts are invisible at the compiler's level of abstraction and
//!   must be exploited "before their loss" — i.e. at the model level.
//!
//! The crate provides analyses ([`analysis`]), rewriting passes
//! ([`passes`]), a pass manager with the paper's *user-selectable*
//! optimizations plus the automatic mode its conclusion proposes
//! ([`Optimizer`]), a behaviour-preservation checker ([`equivalence`]), the
//! Table II alternative-placement classification ([`alternatives`]) and a
//! generic two-step (model-level + compiler-level) pipeline
//! ([`pipeline`]).
//!
//! # Example
//!
//! ```
//! use mbo::{Optimization, Optimizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = umlsm::samples::flat_unreachable();
//! let outcome = Optimizer::new()
//!     .select(Optimization::RemoveUnreachableStates)
//!     .optimize(&machine)?;
//! assert!(outcome.report.total_removed_states() >= 1);
//! assert!(outcome.machine.state_by_name("S2").is_none());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alternatives;
pub mod analysis;
pub mod equivalence;
mod optimizer;
pub mod passes;
pub mod pipeline;
mod report;

pub use optimizer::{Optimization, OptimizeError, OptimizeOutcome, Optimizer};
pub use report::{OptimizationReport, PassReport};
