//! Behaviour-preservation checking.
//!
//! Model optimization "keeps unchanged [the model's] behavior" (§V). This
//! module checks that dynamically: two machines are compared by the
//! observable traces (signal emissions) they produce on the same event
//! sequences, using bounded-exhaustive enumeration for short sequences plus
//! seeded random sequences for depth. Run-to-completion chains are bounded
//! by [`Semantics::max_completion_chain`](umlsm::Semantics), so every probe
//! terminates — but a probe may *fault* mid-sequence (a guarded completion
//! cycle whose guard stays true hits the chain bound, or a guard fails to
//! evaluate). A fault is part of the machine's observable behaviour: the
//! two machines must fault identically, after identical observable
//! prefixes, or the sequence is a counterexample.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use umlsm::{EvalError, Interp, InterpError, StateMachine};

/// Configuration of the equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivConfig {
    /// Exhaustively test all event sequences up to this length (capped by
    /// [`max_exhaustive_sequences`](Self::max_exhaustive_sequences)).
    pub exhaustive_depth: usize,
    /// Upper bound on the number of exhaustively enumerated sequences.
    pub max_exhaustive_sequences: usize,
    /// Number of random sequences to test on top.
    pub random_sequences: usize,
    /// Length of each random sequence.
    pub random_length: usize,
    /// RNG seed (fixed for reproducibility).
    pub seed: u64,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            exhaustive_depth: 4,
            max_exhaustive_sequences: 20_000,
            random_sequences: 200,
            random_length: 24,
            seed: 0xDA7E_2010,
        }
    }
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// `true` if no distinguishing sequence was found.
    pub equivalent: bool,
    /// A distinguishing event-name sequence, if one was found.
    pub counterexample: Option<Vec<String>>,
    /// Number of sequences executed on both machines.
    pub sequences_checked: usize,
}

impl fmt::Display for EquivReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.equivalent {
            write!(
                f,
                "trace-equivalent over {} sequences",
                self.sequences_checked
            )
        } else {
            write!(
                f,
                "NOT equivalent; counterexample: [{}]",
                self.counterexample
                    .as_deref()
                    .unwrap_or_default()
                    .join(", ")
            )
        }
    }
}

/// Checks observable-trace equivalence of two machines.
///
/// The event alphabet is the *union* of both machines' event names, so
/// events removed by optimization are still exercised (they must be
/// discarded identically).
///
/// # Errors
///
/// Returns an error only when the *original* machine fails to initialize
/// (no initial state, or its initial run-to-completion step faults) —
/// malformed input, not an inequivalence. Every fault of the *optimized*
/// machine, including at initialization, and every fault of the original
/// while dispatching a probe sequence, is compared rather than propagated:
/// an optimization that turns a faulting run into a clean one (or vice
/// versa) changed behaviour, and is reported as a counterexample.
pub fn check_trace_equivalence(
    original: &StateMachine,
    optimized: &StateMachine,
    config: &EquivConfig,
) -> Result<EquivReport, InterpError> {
    // The original must at least start; everything after this point is
    // outcome comparison, never an error.
    Interp::new(original)?;

    let mut alphabet: Vec<String> = original
        .events()
        .map(|(_, e)| e.name.clone())
        .chain(optimized.events().map(|(_, e)| e.name.clone()))
        .collect();
    alphabet.sort();
    alphabet.dedup();

    let mut checked = 0usize;

    // Empty sequence: initial run-to-completion must already agree.
    if let Some(report) = try_sequence(original, optimized, &[], &mut checked) {
        return Ok(report);
    }

    // Bounded-exhaustive enumeration.
    if !alphabet.is_empty() {
        let mut budget = config.max_exhaustive_sequences;
        for depth in 1..=config.exhaustive_depth {
            let count = alphabet.len().saturating_pow(depth as u32);
            if count > budget {
                break;
            }
            budget -= count;
            let mut indices = vec![0usize; depth];
            loop {
                let seq: Vec<String> = indices.iter().map(|i| alphabet[*i].clone()).collect();
                if let Some(report) = try_sequence(original, optimized, &seq, &mut checked) {
                    return Ok(report);
                }
                if !next_odometer(&mut indices, alphabet.len()) {
                    break;
                }
            }
        }

        // Random deep sequences.
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.random_sequences {
            let seq: Vec<String> = (0..config.random_length)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())].clone())
                .collect();
            if let Some(report) = try_sequence(original, optimized, &seq, &mut checked) {
                return Ok(report);
            }
        }
    }

    Ok(EquivReport {
        equivalent: true,
        counterexample: None,
        sequences_checked: checked,
    })
}

/// Advances a base-`base` odometer; returns `false` once it wraps around.
fn next_odometer(indices: &mut [usize], base: usize) -> bool {
    for slot in indices.iter_mut().rev() {
        *slot += 1;
        if *slot < base {
            return true;
        }
        *slot = 0;
    }
    false
}

/// The kind of fault that halted a run, with model-element payloads
/// stripped: passes may rename model elements (`merge-equivalent-states`
/// folds a state into its surviving twin), so the state name inside a
/// `CompletionLoop` is not behaviour — only *that* the chain bound
/// tripped, after the same observable prefix, is. Evaluation faults keep
/// their kind (unknown variable vs type mismatch) because those are
/// different behaviours, just not their payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Eval(std::mem::Discriminant<EvalError>),
    CompletionLoop,
    NoInitialState,
}

impl FaultKind {
    fn of(fault: &InterpError) -> FaultKind {
        match fault {
            InterpError::Eval(inner) => FaultKind::Eval(std::mem::discriminant(inner)),
            InterpError::CompletionLoop { .. } => FaultKind::CompletionLoop,
            InterpError::NoInitialState => FaultKind::NoInitialState,
        }
    }
}

/// What one machine did on one probe sequence: its observable trace plus
/// the kind of fault that stopped it, if any. Both components must match
/// between the two machines for the sequence to count as agreeing.
type RunOutcome = (Vec<(String, i64)>, Option<FaultKind>);

/// Runs `seq` on a fresh instance of `machine`. Total: a fault — at
/// initialization or while dispatching — halts the run and becomes part
/// of the outcome.
fn run_sequence(machine: &StateMachine, seq: &[String]) -> RunOutcome {
    let mut interp = match Interp::new(machine) {
        Ok(interp) => interp,
        Err(fault) => return (Vec::new(), Some(FaultKind::of(&fault))),
    };
    for name in seq {
        if let Err(fault) = interp.step_by_name(name) {
            return (interp.trace().observable(), Some(FaultKind::of(&fault)));
        }
    }
    (interp.trace().observable(), None)
}

fn try_sequence(
    original: &StateMachine,
    optimized: &StateMachine,
    seq: &[String],
    checked: &mut usize,
) -> Option<EquivReport> {
    *checked += 1;
    if run_sequence(original, seq) != run_sequence(optimized, seq) {
        return Some(EquivReport {
            equivalent: false,
            counterexample: Some(seq.to_vec()),
            sequences_checked: *checked,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{ModelPass, RemoveUnreachableStates};
    use umlsm::samples;
    use umlsm::{Action, MachineBuilder};

    #[test]
    fn machine_is_equivalent_to_itself() {
        let m = samples::flat_unreachable();
        let r = check_trace_equivalence(&m, &m, &EquivConfig::default()).expect("check");
        assert!(r.equivalent);
        assert!(r.sequences_checked > 100);
    }

    #[test]
    fn optimized_flat_machine_is_equivalent() {
        let m = samples::flat_unreachable();
        let mut opt = m.clone();
        RemoveUnreachableStates.run(&mut opt);
        let r = check_trace_equivalence(&m, &opt, &EquivConfig::default()).expect("check");
        assert!(r.equivalent, "{r}");
    }

    #[test]
    fn optimized_hierarchical_machine_is_equivalent() {
        let m = samples::hierarchical_never_active();
        let mut opt = m.clone();
        RemoveUnreachableStates.run(&mut opt);
        let r = check_trace_equivalence(&m, &opt, &EquivConfig::default()).expect("check");
        assert!(r.equivalent, "{r}");
    }

    #[test]
    fn detects_behaviour_difference() {
        let build = |signal: &str| {
            let mut b = MachineBuilder::new("m");
            let a = b.state("A");
            let c = b.state("B");
            let e = b.event("go");
            b.initial(a);
            b.on_entry(c, vec![Action::emit(signal)]);
            b.transition(a, c).on(e).build();
            b.finish().expect("valid")
        };
        let m1 = build("x");
        let m2 = build("y");
        let r = check_trace_equivalence(&m1, &m2, &EquivConfig::default()).expect("check");
        assert!(!r.equivalent);
        assert_eq!(r.counterexample, Some(vec!["go".to_string()]));
    }

    #[test]
    fn divergent_runs_compare_instead_of_erroring() {
        // A guarded completion self-loop whose guard becomes (and stays)
        // true mid-run trips the completion-chain bound. That fault is
        // behaviour: the machine must agree with itself, and a variant
        // without the divergence must be flagged, not crash the check.
        let build = |with_loop: bool| {
            let mut b = MachineBuilder::new("m");
            b.variable("x", 0);
            let a = b.state("A");
            let bump = b.event("bump");
            b.initial(a);
            b.transition(a, a)
                .on(bump)
                .then(vec![Action::assign("x", umlsm::Expr::int(1))])
                .build();
            if with_loop {
                b.transition(a, a)
                    .on_completion()
                    .when(umlsm::Expr::var("x").ge(umlsm::Expr::int(1)))
                    .build();
            }
            b.finish().expect("valid")
        };
        let divergent = build(true);
        let clean = build(false);
        let r = check_trace_equivalence(&divergent, &divergent, &EquivConfig::default())
            .expect("self-check runs despite runtime divergence");
        assert!(r.equivalent, "{r}");
        let r = check_trace_equivalence(&divergent, &clean, &EquivConfig::default())
            .expect("cross-check runs");
        assert!(!r.equivalent, "fault/no-fault must be a counterexample");
    }

    #[test]
    fn optimized_init_fault_is_a_counterexample_not_an_error() {
        // Only the *original* machine's initialization may error the
        // check. If a (buggy) optimization makes the optimized machine
        // fault during its initial run-to-completion step, that is a
        // behaviour change and must surface as a counterexample.
        let clean = {
            let mut b = MachineBuilder::new("m");
            let a = b.state("A");
            b.initial(a);
            b.finish().expect("valid")
        };
        let init_faults = {
            let mut b = MachineBuilder::new("m");
            let a = b.state("A");
            let c = b.state("B");
            b.initial(a);
            b.transition(a, c).on_completion().build();
            b.transition(c, a).on_completion().build();
            b.finish().expect("valid")
        };
        let r = check_trace_equivalence(&clean, &init_faults, &EquivConfig::default())
            .expect("check runs");
        assert!(!r.equivalent, "init fault must be a counterexample");
        assert_eq!(r.counterexample, Some(vec![]), "empty sequence suffices");

        // Flipped: a malformed *original* is the caller's bug — error.
        assert!(check_trace_equivalence(&init_faults, &clean, &EquivConfig::default()).is_err());
    }

    #[test]
    fn fault_comparison_ignores_state_names() {
        // Passes like merge-equivalent-states change which state *name* a
        // completion-chain fault is reported at. Two machines that differ
        // only in the looping state's name must still compare equivalent:
        // the fault kind and the observable prefix are the behaviour, the
        // name in the error payload is not.
        let build = |state_name: &str| {
            let mut b = MachineBuilder::new("m");
            b.variable("x", 0);
            let a = b.state(state_name);
            let bump = b.event("bump");
            b.initial(a);
            b.transition(a, a)
                .on(bump)
                .then(vec![Action::assign("x", umlsm::Expr::int(1))])
                .build();
            b.transition(a, a)
                .on_completion()
                .when(umlsm::Expr::var("x").ge(umlsm::Expr::int(1)))
                .build();
            b.finish().expect("valid")
        };
        let r = check_trace_equivalence(&build("A"), &build("Renamed"), &EquivConfig::default())
            .expect("check runs");
        assert!(r.equivalent, "{r}");
    }

    #[test]
    fn detects_unsound_removal_under_fallback_semantics() {
        // Removing the "never active" composite is NOT sound when the
        // machine uses fallback completion semantics; the checker must
        // catch it.
        let mut m = samples::hierarchical_never_active();
        m.set_semantics(umlsm::Semantics::completion_as_fallback());
        let mut broken = m.clone();
        let s3 = broken.state_by_name("S3").expect("S3");
        broken.remove_state(s3);
        let r = check_trace_equivalence(&m, &broken, &EquivConfig::default()).expect("check");
        assert!(!r.equivalent, "checker must flag the unsound removal");
    }

    #[test]
    fn alphabet_union_exercises_removed_events() {
        // Optimized machine lost an event; sequences containing it must
        // still be compared (and discarded identically).
        let m = samples::flat_unreachable();
        let mut opt = m.clone();
        RemoveUnreachableStates.run(&mut opt);
        crate::passes::RemoveUnusedEvents.run(&mut opt);
        let r = check_trace_equivalence(&m, &opt, &EquivConfig::default()).expect("check");
        assert!(r.equivalent, "{r}");
    }
}
