//! Behaviour-preservation checking.
//!
//! Model optimization "keeps unchanged [the model's] behavior" (§V). This
//! module checks that dynamically: two machines are compared by the
//! observable traces (signal emissions) they produce on the same event
//! sequences, using bounded-exhaustive enumeration for short sequences plus
//! seeded random sequences for depth. Because the action language has no
//! loops and run-to-completion chains are bounded, every run terminates,
//! making the check effective.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use umlsm::{Interp, InterpError, StateMachine};

/// Configuration of the equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivConfig {
    /// Exhaustively test all event sequences up to this length (capped by
    /// [`max_exhaustive_sequences`](Self::max_exhaustive_sequences)).
    pub exhaustive_depth: usize,
    /// Upper bound on the number of exhaustively enumerated sequences.
    pub max_exhaustive_sequences: usize,
    /// Number of random sequences to test on top.
    pub random_sequences: usize,
    /// Length of each random sequence.
    pub random_length: usize,
    /// RNG seed (fixed for reproducibility).
    pub seed: u64,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            exhaustive_depth: 4,
            max_exhaustive_sequences: 20_000,
            random_sequences: 200,
            random_length: 24,
            seed: 0xDA7E_2010,
        }
    }
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// `true` if no distinguishing sequence was found.
    pub equivalent: bool,
    /// A distinguishing event-name sequence, if one was found.
    pub counterexample: Option<Vec<String>>,
    /// Number of sequences executed on both machines.
    pub sequences_checked: usize,
}

impl fmt::Display for EquivReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.equivalent {
            write!(
                f,
                "trace-equivalent over {} sequences",
                self.sequences_checked
            )
        } else {
            write!(
                f,
                "NOT equivalent; counterexample: [{}]",
                self.counterexample
                    .as_deref()
                    .unwrap_or_default()
                    .join(", ")
            )
        }
    }
}

/// Checks observable-trace equivalence of two machines.
///
/// The event alphabet is the *union* of both machines' event names, so
/// events removed by optimization are still exercised (they must be
/// discarded identically).
///
/// # Errors
///
/// Propagates interpreter failures (evaluation errors, completion loops) —
/// these indicate a malformed model, not an inequivalence.
pub fn check_trace_equivalence(
    original: &StateMachine,
    optimized: &StateMachine,
    config: &EquivConfig,
) -> Result<EquivReport, InterpError> {
    let mut alphabet: Vec<String> = original
        .events()
        .map(|(_, e)| e.name.clone())
        .chain(optimized.events().map(|(_, e)| e.name.clone()))
        .collect();
    alphabet.sort();
    alphabet.dedup();

    let mut checked = 0usize;

    // Empty sequence: initial run-to-completion must already agree.
    if let Some(report) = try_sequence(original, optimized, &[], &mut checked)? {
        return Ok(report);
    }

    // Bounded-exhaustive enumeration.
    if !alphabet.is_empty() {
        let mut budget = config.max_exhaustive_sequences;
        for depth in 1..=config.exhaustive_depth {
            let count = alphabet.len().saturating_pow(depth as u32);
            if count > budget {
                break;
            }
            budget -= count;
            let mut indices = vec![0usize; depth];
            loop {
                let seq: Vec<String> =
                    indices.iter().map(|i| alphabet[*i].clone()).collect();
                if let Some(report) = try_sequence(original, optimized, &seq, &mut checked)? {
                    return Ok(report);
                }
                if !next_odometer(&mut indices, alphabet.len()) {
                    break;
                }
            }
        }

        // Random deep sequences.
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.random_sequences {
            let seq: Vec<String> = (0..config.random_length)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())].clone())
                .collect();
            if let Some(report) = try_sequence(original, optimized, &seq, &mut checked)? {
                return Ok(report);
            }
        }
    }

    Ok(EquivReport {
        equivalent: true,
        counterexample: None,
        sequences_checked: checked,
    })
}

/// Advances a base-`base` odometer; returns `false` once it wraps around.
fn next_odometer(indices: &mut [usize], base: usize) -> bool {
    for slot in indices.iter_mut().rev() {
        *slot += 1;
        if *slot < base {
            return true;
        }
        *slot = 0;
    }
    false
}

fn try_sequence(
    original: &StateMachine,
    optimized: &StateMachine,
    seq: &[String],
    checked: &mut usize,
) -> Result<Option<EquivReport>, InterpError> {
    *checked += 1;
    let mut a = Interp::new(original)?;
    let mut b = Interp::new(optimized)?;
    for name in seq {
        a.step_by_name(name)?;
        b.step_by_name(name)?;
    }
    if a.trace().observable() != b.trace().observable() {
        return Ok(Some(EquivReport {
            equivalent: false,
            counterexample: Some(seq.to_vec()),
            sequences_checked: *checked,
        }));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{ModelPass, RemoveUnreachableStates};
    use umlsm::samples;
    use umlsm::{Action, MachineBuilder};

    #[test]
    fn machine_is_equivalent_to_itself() {
        let m = samples::flat_unreachable();
        let r = check_trace_equivalence(&m, &m, &EquivConfig::default()).expect("check");
        assert!(r.equivalent);
        assert!(r.sequences_checked > 100);
    }

    #[test]
    fn optimized_flat_machine_is_equivalent() {
        let m = samples::flat_unreachable();
        let mut opt = m.clone();
        RemoveUnreachableStates.run(&mut opt);
        let r = check_trace_equivalence(&m, &opt, &EquivConfig::default()).expect("check");
        assert!(r.equivalent, "{r}");
    }

    #[test]
    fn optimized_hierarchical_machine_is_equivalent() {
        let m = samples::hierarchical_never_active();
        let mut opt = m.clone();
        RemoveUnreachableStates.run(&mut opt);
        let r = check_trace_equivalence(&m, &opt, &EquivConfig::default()).expect("check");
        assert!(r.equivalent, "{r}");
    }

    #[test]
    fn detects_behaviour_difference() {
        let build = |signal: &str| {
            let mut b = MachineBuilder::new("m");
            let a = b.state("A");
            let c = b.state("B");
            let e = b.event("go");
            b.initial(a);
            b.on_entry(c, vec![Action::emit(signal)]);
            b.transition(a, c).on(e).build();
            b.finish().expect("valid")
        };
        let m1 = build("x");
        let m2 = build("y");
        let r = check_trace_equivalence(&m1, &m2, &EquivConfig::default()).expect("check");
        assert!(!r.equivalent);
        assert_eq!(r.counterexample, Some(vec!["go".to_string()]));
    }

    #[test]
    fn detects_unsound_removal_under_fallback_semantics() {
        // Removing the "never active" composite is NOT sound when the
        // machine uses fallback completion semantics; the checker must
        // catch it.
        let mut m = samples::hierarchical_never_active();
        m.set_semantics(umlsm::Semantics::completion_as_fallback());
        let mut broken = m.clone();
        let s3 = broken.state_by_name("S3").expect("S3");
        broken.remove_state(s3);
        let r = check_trace_equivalence(&m, &broken, &EquivConfig::default()).expect("check");
        assert!(!r.equivalent, "checker must flag the unsound removal");
    }

    #[test]
    fn alphabet_union_exercises_removed_events() {
        // Optimized machine lost an event; sequences containing it must
        // still be compared (and discarded identically).
        let m = samples::flat_unreachable();
        let mut opt = m.clone();
        RemoveUnreachableStates.run(&mut opt);
        crate::passes::RemoveUnusedEvents.run(&mut opt);
        let r = check_trace_equivalence(&m, &opt, &EquivConfig::default()).expect("check");
        assert!(r.equivalent, "{r}");
    }
}
