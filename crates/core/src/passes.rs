//! Model rewriting passes.
//!
//! Each pass is a behaviour-preserving model refactoring in the sense of
//! §V of the paper: "a model transformation that guarantees the transition
//! from non optimized model to an optimized one by keeping unchanged its
//! behavior". Soundness rests on the conservative analyses of
//! [`crate::analysis`]; the [`crate::equivalence`] checker provides a
//! defence-in-depth dynamic check.

use umlsm::StateMachine;

use crate::analysis;
use crate::report::PassReport;

/// A model-to-model rewriting pass.
pub trait ModelPass {
    /// Stable machine-readable pass name.
    fn name(&self) -> &'static str;
    /// One-line description shown in tool listings.
    fn description(&self) -> &'static str;
    /// Applies the pass in place and reports what changed.
    fn run(&self, machine: &mut StateMachine) -> PassReport;
}

/// Removes states that can never become active (the paper's headline
/// optimization, Fig. 1 row 1) — including whole composite submachines that
/// are only reachable through completion-shadowed transitions (Fig. 1
/// row 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoveUnreachableStates;

impl ModelPass for RemoveUnreachableStates {
    fn name(&self) -> &'static str {
        "remove-unreachable-states"
    }

    fn description(&self) -> &'static str {
        "remove states that can never become active (dead model code)"
    }

    fn run(&self, machine: &mut StateMachine) -> PassReport {
        let mut report = PassReport::new(self.name());
        let reach = analysis::reachable_states(machine);
        let names: std::collections::BTreeMap<_, _> = machine
            .states()
            .map(|(id, s)| (id, s.name.clone()))
            .collect();
        // Remove top-level unreachable states first: removing a composite
        // cascades over its nested region, so skip states whose ancestor is
        // itself unreachable (they disappear with the ancestor).
        let unreachable = reach.unreachable_states(machine);
        for sid in unreachable {
            if machine.try_state(sid).is_none() {
                continue; // already removed by a cascading ancestor removal
            }
            // Skip nested states whose owning composite is also unreachable;
            // the composite's removal will cascade.
            let parent_region = machine.state(sid).parent;
            if let Some(owner) = machine.region(parent_region).owner {
                if !reach.is_reachable(owner) {
                    continue;
                }
            }
            let (states, transitions) = machine.remove_state(sid);
            for s in states {
                report
                    .removed_states
                    .push(names.get(&s).cloned().unwrap_or_else(|| format!("{s}")));
            }
            report.removed_transitions += transitions.len();
        }
        report
    }
}

/// Removes transitions that can never fire: constant-false guards and
/// event-triggered transitions shadowed by an unguarded completion
/// transition (under completion-priority semantics).
#[derive(Debug, Clone, Copy, Default)]
pub struct PruneDeadTransitions;

impl ModelPass for PruneDeadTransitions {
    fn name(&self) -> &'static str {
        "prune-dead-transitions"
    }

    fn description(&self) -> &'static str {
        "remove transitions that can never fire (false guards, completion-shadowed)"
    }

    fn run(&self, machine: &mut StateMachine) -> PassReport {
        let mut report = PassReport::new(self.name());
        for (tid, reason) in analysis::dead_transitions(machine) {
            // Unreachable sources are RemoveUnreachableStates' concern; this
            // pass handles locally-provable dead arcs so it is useful on its
            // own (the paper's tool lets the user pick passes individually).
            if reason == analysis::DeadTransitionReason::SourceUnreachable {
                continue;
            }
            if machine.remove_transition(tid).is_some() {
                report.removed_transitions += 1;
                report.notes.push(format!("{tid}: {reason:?}"));
            }
        }
        report
    }
}

/// Constant-folds guards; removes guards that fold to `true`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimplifyGuards;

impl ModelPass for SimplifyGuards {
    fn name(&self) -> &'static str {
        "simplify-guards"
    }

    fn description(&self) -> &'static str {
        "constant-fold guards; drop guards that are always true"
    }

    fn run(&self, machine: &mut StateMachine) -> PassReport {
        let mut report = PassReport::new(self.name());
        let tids: Vec<_> = machine.transitions().map(|(id, _)| id).collect();
        for tid in tids {
            let t = machine.transition(tid);
            let Some(guard) = &t.guard else { continue };
            let folded = guard.fold();
            if folded.is_const_true() {
                machine.transition_mut(tid).guard = None;
                report.rewritten += 1;
            } else if folded != *guard {
                machine.transition_mut(tid).guard = Some(folded);
                report.rewritten += 1;
            }
        }
        report
    }
}

/// Merges behaviourally equivalent simple states (model refactoring à la
/// FSM minimization, restricted to structurally identical behaviour; see
/// [`analysis::equivalence_classes`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeEquivalentStates;

impl ModelPass for MergeEquivalentStates {
    fn name(&self) -> &'static str {
        "merge-equivalent-states"
    }

    fn description(&self) -> &'static str {
        "merge simple states with identical observable behaviour"
    }

    fn run(&self, machine: &mut StateMachine) -> PassReport {
        let mut report = PassReport::new(self.name());
        for class in analysis::equivalence_classes(machine) {
            let Some((&keep, rest)) = class.split_first() else {
                continue;
            };
            for &dup in rest {
                let name = machine.state(dup).name.clone();
                let keep_name = machine.state(keep).name.clone();
                machine.redirect_state(dup, keep);
                let (states, transitions) = machine.remove_state(dup);
                report
                    .removed_states
                    .extend(states.iter().map(|s| format!("{s}")));
                report.removed_transitions += transitions.len();
                report
                    .notes
                    .push(format!("merged `{name}` into `{keep_name}`"));
            }
        }
        report
    }
}

/// Removes event declarations no live transition is triggered by. Shrinks
/// the event dispatch tables of every generated pattern.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoveUnusedEvents;

impl ModelPass for RemoveUnusedEvents {
    fn name(&self) -> &'static str {
        "remove-unused-events"
    }

    fn description(&self) -> &'static str {
        "drop event types that trigger no transition"
    }

    fn run(&self, machine: &mut StateMachine) -> PassReport {
        let mut report = PassReport::new(self.name());
        for eid in analysis::unused_events(machine) {
            if machine.remove_event(eid).is_some() {
                report.removed_events += 1;
            }
        }
        report
    }
}

/// Removes context variables never read anywhere, together with the
/// assignments that wrote them (right-hand sides are side-effect free, so
/// dropping the writes is unobservable).
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoveUnusedVariables;

impl ModelPass for RemoveUnusedVariables {
    fn name(&self) -> &'static str {
        "remove-unused-variables"
    }

    fn description(&self) -> &'static str {
        "drop context variables that are never read, and their assignments"
    }

    fn run(&self, machine: &mut StateMachine) -> PassReport {
        let mut report = PassReport::new(self.name());
        let unread = analysis::unread_variables(machine);
        if unread.is_empty() {
            return report;
        }
        let is_dead = |var: &str| unread.iter().any(|u| u == var);

        fn strip(actions: &mut Vec<umlsm::Action>, is_dead: &dyn Fn(&str) -> bool) -> usize {
            let mut removed = 0;
            actions.retain_mut(|a| match a {
                umlsm::Action::Assign { var, .. } => {
                    if is_dead(var) {
                        removed += 1;
                        false
                    } else {
                        true
                    }
                }
                umlsm::Action::Emit { .. } => true,
                umlsm::Action::If {
                    then_actions,
                    else_actions,
                    ..
                } => {
                    removed += strip(then_actions, is_dead);
                    removed += strip(else_actions, is_dead);
                    true
                }
            });
            removed
        }

        let sids: Vec<_> = machine.states().map(|(id, _)| id).collect();
        for sid in sids {
            let state = machine.state_mut(sid);
            report.rewritten += strip(&mut state.entry, &is_dead);
            report.rewritten += strip(&mut state.exit, &is_dead);
        }
        let tids: Vec<_> = machine.transitions().map(|(id, _)| id).collect();
        for tid in tids {
            report.rewritten += strip(&mut machine.transition_mut(tid).effect, &is_dead);
        }
        let rids: Vec<_> = machine.regions().map(|(id, _)| id).collect();
        for rid in rids {
            report.rewritten += strip(&mut machine.region_mut(rid).initial_effect, &is_dead);
        }
        for var in unread {
            machine.remove_variable(&var);
            report.removed_variables += 1;
        }
        report
    }
}

/// The standard pass catalogue in canonical application order.
pub fn standard_passes() -> Vec<Box<dyn ModelPass>> {
    vec![
        Box::new(SimplifyGuards),
        Box::new(PruneDeadTransitions),
        Box::new(RemoveUnreachableStates),
        Box::new(MergeEquivalentStates),
        Box::new(RemoveUnusedEvents),
        Box::new(RemoveUnusedVariables),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::samples;
    use umlsm::{Action, Expr, MachineBuilder};

    #[test]
    fn unreachable_pass_removes_s2() {
        let mut m = samples::flat_unreachable();
        let report = RemoveUnreachableStates.run(&mut m);
        assert_eq!(report.removed_states.len(), 1);
        assert!(m.state_by_name("S2").is_none());
        assert!(m.validate().is_ok(), "optimized model must stay valid");
    }

    #[test]
    fn unreachable_pass_removes_whole_composite() {
        let mut m = samples::hierarchical_never_active();
        let states_before = m.metrics().states;
        let report = RemoveUnreachableStates.run(&mut m);
        // S3 + 4 substates + nested final all go.
        assert_eq!(report.removed_states.len(), 6);
        assert_eq!(m.metrics().states, states_before - 6);
        assert!(m.state_by_name("S3").is_none());
        assert!(m.state_by_name("S3_Work").is_none());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn unreachable_pass_is_idempotent() {
        let mut m = samples::hierarchical_never_active();
        RemoveUnreachableStates.run(&mut m);
        let second = RemoveUnreachableStates.run(&mut m);
        assert!(!second.changed());
    }

    #[test]
    fn prune_removes_shadowed_and_false_guards() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        let d = b.state("C");
        let fin = b.final_state("End");
        let e = b.event("go");
        b.initial(a);
        b.transition(a, fin).on_completion().build();
        b.transition(a, c).on(e).build(); // shadowed
        b.transition(c, d).on(e).when(Expr::bool(false)).build(); // false guard
        let mut m = b.finish().expect("valid");
        let report = PruneDeadTransitions.run(&mut m);
        assert_eq!(report.removed_transitions, 2);
    }

    #[test]
    fn simplify_guards_folds_and_drops() {
        let mut b = MachineBuilder::new("m");
        b.variable("x", 0);
        let a = b.state("A");
        let c = b.state("B");
        let e = b.event("go");
        b.initial(a);
        b.transition(a, c)
            .on(e)
            .when(Expr::int(1).eq(Expr::int(1)))
            .build();
        let folded = b
            .transition(c, a)
            .on(e)
            .when(Expr::var("x").gt(Expr::int(2).add(Expr::int(3))))
            .build();
        let mut m = b.finish().expect("valid");
        let report = SimplifyGuards.run(&mut m);
        assert_eq!(report.rewritten, 2);
        assert_eq!(
            m.transition(folded).guard,
            Some(Expr::var("x").gt(Expr::int(5)))
        );
        // The always-true guard disappeared entirely.
        assert!(m.transitions().filter(|(_, t)| t.guard.is_none()).count() >= 1);
    }

    #[test]
    fn merge_pass_collapses_duplicates() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let x = b.state("X");
        let y = b.state("Y");
        let f = b.state("Tail");
        let e1 = b.event("e1");
        let e2 = b.event("e2");
        b.initial(a);
        b.on_entry(x, vec![Action::emit("mid")]);
        b.on_entry(y, vec![Action::emit("mid")]);
        b.transition(a, x).on(e1).build();
        b.transition(a, y).on(e2).build();
        b.transition(x, f).on(e1).build();
        b.transition(y, f).on(e1).build();
        let mut m = b.finish().expect("valid");
        let before = m.metrics().states;
        let report = MergeEquivalentStates.run(&mut m);
        assert_eq!(report.removed_states.len(), 1);
        assert_eq!(m.metrics().states, before - 1);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn unused_event_pass_shrinks_alphabet() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let used = b.event("used");
        b.event("never");
        b.initial(a);
        b.transition(a, a).on(used).build();
        let mut m = b.finish().expect("valid");
        let report = RemoveUnusedEvents.run(&mut m);
        assert_eq!(report.removed_events, 1);
        assert!(m.event_by_name("never").is_none());
        assert!(m.event_by_name("used").is_some());
    }

    #[test]
    fn unused_variable_pass_strips_assignments() {
        let mut b = MachineBuilder::new("m");
        b.variable("live", 0);
        b.variable("ghost", 0);
        let a = b.state("A");
        b.initial(a);
        b.on_entry(
            a,
            vec![
                Action::assign("ghost", Expr::var("live").add(Expr::int(1))),
                Action::emit_arg("out", Expr::var("live")),
            ],
        );
        let mut m = b.finish().expect("valid");
        let report = RemoveUnusedVariables.run(&mut m);
        assert_eq!(report.removed_variables, 1);
        assert_eq!(report.rewritten, 1);
        assert!(m.variables().get("ghost").is_none());
        assert!(m.validate().is_ok());
        // The emit stays.
        let sid = m.state_by_name("A").expect("A");
        assert_eq!(m.state(sid).entry.len(), 1);
    }

    #[test]
    fn standard_catalogue_is_stable() {
        let names: Vec<_> = standard_passes().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "simplify-guards",
                "prune-dead-transitions",
                "remove-unreachable-states",
                "merge-equivalent-states",
                "remove-unused-events",
                "remove-unused-variables",
            ]
        );
    }
}
