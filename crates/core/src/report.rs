//! Optimization reports: what each pass removed or rewrote.
//!
//! The paper's tool reports the performed optimizations to the user (who
//! selected them manually); these types are that report, plus the model
//! metrics deltas the experiments aggregate.

use std::fmt;

use umlsm::ModelMetrics;

/// Result of one pass application.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassReport {
    /// Pass name.
    pub pass: String,
    /// Names of removed states (nested states included).
    pub removed_states: Vec<String>,
    /// Number of removed transitions.
    pub removed_transitions: usize,
    /// Number of removed events.
    pub removed_events: usize,
    /// Number of removed variables.
    pub removed_variables: usize,
    /// Number of rewritten elements (simplified guards, merged states…).
    pub rewritten: usize,
    /// Free-form notes (e.g. "merged Y into X").
    pub notes: Vec<String>,
}

impl PassReport {
    /// Creates an empty report for a pass.
    pub fn new(pass: impl Into<String>) -> PassReport {
        PassReport {
            pass: pass.into(),
            ..PassReport::default()
        }
    }

    /// `true` if the pass changed the model at all.
    pub fn changed(&self) -> bool {
        !self.removed_states.is_empty()
            || self.removed_transitions > 0
            || self.removed_events > 0
            || self.removed_variables > 0
            || self.rewritten > 0
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: -{} states, -{} transitions, -{} events, -{} vars, {} rewritten",
            self.pass,
            self.removed_states.len(),
            self.removed_transitions,
            self.removed_events,
            self.removed_variables,
            self.rewritten
        )?;
        if !self.removed_states.is_empty() {
            write!(f, " (removed: {})", self.removed_states.join(", "))?;
        }
        Ok(())
    }
}

/// Aggregate report over a whole optimization run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptimizationReport {
    /// Per-pass reports in application order (passes may appear several
    /// times across fixpoint iterations).
    pub passes: Vec<PassReport>,
    /// Number of fixpoint iterations executed.
    pub iterations: usize,
    /// Model metrics before optimization.
    pub before: ModelMetrics,
    /// Model metrics after optimization.
    pub after: ModelMetrics,
}

impl OptimizationReport {
    /// Total number of states removed across all passes.
    pub fn total_removed_states(&self) -> usize {
        self.passes.iter().map(|p| p.removed_states.len()).sum()
    }

    /// Total number of transitions removed across all passes.
    pub fn total_removed_transitions(&self) -> usize {
        self.passes.iter().map(|p| p.removed_transitions).sum()
    }

    /// `true` if any pass changed the model.
    pub fn changed(&self) -> bool {
        self.passes.iter().any(PassReport::changed)
    }
}

impl fmt::Display for OptimizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "optimization report ({} iterations): {} -> {}",
            self.iterations, self.before, self.after
        )?;
        for p in &self.passes {
            if p.changed() {
                writeln!(f, "  {p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changed_detects_any_effect() {
        let mut r = PassReport::new("p");
        assert!(!r.changed());
        r.rewritten = 1;
        assert!(r.changed());
    }

    #[test]
    fn totals_aggregate_over_passes() {
        let mut a = PassReport::new("a");
        a.removed_states = vec!["X".into(), "Y".into()];
        a.removed_transitions = 3;
        let mut b = PassReport::new("b");
        b.removed_states = vec!["Z".into()];
        let report = OptimizationReport {
            passes: vec![a, b],
            iterations: 2,
            ..OptimizationReport::default()
        };
        assert_eq!(report.total_removed_states(), 3);
        assert_eq!(report.total_removed_transitions(), 3);
        assert!(report.changed());
    }

    #[test]
    fn display_mentions_pass_names() {
        let mut p = PassReport::new("remove-unreachable-states");
        p.removed_states = vec!["S2".into()];
        let text = p.to_string();
        assert!(text.contains("remove-unreachable-states"));
        assert!(text.contains("S2"));
    }
}
