//! Model analyses: the semantic facts that exist at the model level and are
//! lost by code generation.
//!
//! Everything here is *conservative*: an analysis only reports a fact
//! (dead, shadowed, unreachable) when it holds under the machine's declared
//! [`Semantics`](umlsm::Semantics) for every environment. The rewriting
//! passes in [`crate::passes`] rely on these guarantees for behaviour
//! preservation.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use umlsm::{StateId, StateKind, StateMachine, TransitionId, Trigger};

/// Result of [`reachable_states`]: which states can ever become active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachability {
    /// States that may become active in some environment.
    pub reachable: BTreeSet<StateId>,
    /// Live states in traversal (BFS) order — useful for deterministic
    /// reports.
    pub order: Vec<StateId>,
}

impl Reachability {
    /// `true` if the state may ever become active.
    pub fn is_reachable(&self, state: StateId) -> bool {
        self.reachable.contains(&state)
    }

    /// States of the machine that can never become active, in id order.
    pub fn unreachable_states(&self, machine: &StateMachine) -> Vec<StateId> {
        machine
            .states()
            .map(|(id, _)| id)
            .filter(|id| !self.reachable.contains(id))
            .collect()
    }
}

/// Transitions that can never fire, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadTransitionReason {
    /// The guard constant-folds to `false`.
    GuardConstFalse,
    /// The transition is event-triggered but its source (a simple state)
    /// also has an unguarded completion transition, which under
    /// completion-priority semantics always fires first — "the completion
    /// transition is first fired whatever the received event is".
    ShadowedByCompletion,
    /// The source state can never become active.
    SourceUnreachable,
}

/// Returns the event-triggered transitions shadowed by an unguarded
/// completion transition, under completion-priority semantics.
///
/// Only *simple* source states shadow: a composite state is not complete on
/// entry, so its event-triggered transitions may still fire while the nested
/// region runs. With completion-priority disabled this returns nothing —
/// the optimization is semantics-dependent (Table II, last column).
pub fn completion_shadowed_transitions(machine: &StateMachine) -> Vec<TransitionId> {
    if !machine.semantics().completion_priority {
        return Vec::new();
    }
    let mut shadowed = Vec::new();
    for (sid, state) in machine.states() {
        if state.kind != StateKind::Simple {
            continue;
        }
        let outgoing = machine.transitions_from(sid);
        let has_always_completion = outgoing.iter().any(|t| {
            let t = machine.transition(*t);
            t.is_completion() && t.guard_is_trivially_true()
        });
        if !has_always_completion {
            continue;
        }
        for tid in outgoing {
            if !machine.transition(tid).is_completion() {
                shadowed.push(tid);
            }
        }
    }
    shadowed
}

/// Returns every transition that can never fire, with the reason.
///
/// Reasons are reported with this priority: constant-false guard, then
/// completion shadowing, then unreachable source.
pub fn dead_transitions(machine: &StateMachine) -> Vec<(TransitionId, DeadTransitionReason)> {
    let shadowed: BTreeSet<TransitionId> = completion_shadowed_transitions(machine)
        .into_iter()
        .collect();
    let reach = reachable_states(machine);
    let mut out = Vec::new();
    for (tid, t) in machine.transitions() {
        if t.guard.as_ref().is_some_and(|g| g.is_const_false()) {
            out.push((tid, DeadTransitionReason::GuardConstFalse));
        } else if shadowed.contains(&tid) {
            out.push((tid, DeadTransitionReason::ShadowedByCompletion));
        } else if !reach.is_reachable(t.source) {
            out.push((tid, DeadTransitionReason::SourceUnreachable));
        }
    }
    out
}

/// Computes the set of states that may ever become active, under the
/// machine's semantics.
///
/// The traversal starts at the root region's initial state and follows:
///
/// * entry into a composite state, which activates its region's initial
///   state (with the region's initial effect);
/// * outgoing transitions whose guard is not constant-false, **except**
///   event-triggered transitions shadowed by an unguarded completion
///   transition (see [`completion_shadowed_transitions`]).
///
/// Guards that depend on variables are conservatively assumed satisfiable.
pub fn reachable_states(machine: &StateMachine) -> Reachability {
    let shadowed: BTreeSet<TransitionId> = completion_shadowed_transitions(machine)
        .into_iter()
        .collect();
    let mut reachable = BTreeSet::new();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();

    if let Some(init) = machine.region(machine.root()).initial {
        queue.push_back(init);
    }
    while let Some(sid) = queue.pop_front() {
        if !reachable.insert(sid) {
            continue;
        }
        order.push(sid);
        let state = machine.state(sid);
        // Entering a composite activates its region's initial state.
        if let StateKind::Composite(region) = state.kind {
            if let Some(init) = machine.region(region).initial {
                queue.push_back(init);
            }
        }
        for tid in machine.transitions_from(sid) {
            if shadowed.contains(&tid) {
                continue;
            }
            let t = machine.transition(tid);
            if t.guard.as_ref().is_some_and(|g| g.is_const_false()) {
                continue;
            }
            queue.push_back(t.target);
        }
    }
    Reachability { reachable, order }
}

/// Partition of the machine's *simple* states into behavioural equivalence
/// classes, computed by partition refinement (a bisimulation restricted to
/// structurally identical behaviours).
///
/// Two states land in the same class only if they
///
/// * live in the same region, with identical entry and exit behaviour, and
/// * have outgoing transition lists that match pairwise in document order:
///   same trigger, same guard, same effect, and targets in the same class.
///
/// The restriction to structural equality of actions/guards keeps the
/// analysis conservative: classes are sound witnesses for the
/// state-merging pass under any environment.
pub fn equivalence_classes(machine: &StateMachine) -> Vec<Vec<StateId>> {
    // Initial partition: key on (region, kind==Simple, entry, exit).
    let simple: Vec<StateId> = machine
        .states()
        .filter(|(_, s)| s.kind == StateKind::Simple)
        .map(|(id, _)| id)
        .collect();

    let mut class_of: std::collections::BTreeMap<StateId, usize> =
        std::collections::BTreeMap::new();
    {
        let mut key_to_class: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for &sid in &simple {
            let s = machine.state(sid);
            let key = format!("{:?}|{:?}|{:?}", s.parent, s.entry, s.exit);
            let next = key_to_class.len();
            let class = *key_to_class.entry(key).or_insert(next);
            class_of.insert(sid, class);
        }
    }
    // Non-simple states each get a singleton class id (negative space:
    // offset beyond simple classes) so targets compare by identity.
    let mut extra = class_of.values().copied().max().map_or(0, |m| m + 1);
    for (sid, s) in machine.states() {
        if s.kind != StateKind::Simple {
            class_of.insert(sid, extra);
            extra += 1;
        }
    }

    // Refine until stable.
    loop {
        let mut changed = false;
        let mut signature_to_class: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        let mut new_class_of = class_of.clone();
        for &sid in &simple {
            let mut sig = format!("c{}", class_of[&sid]);
            for tid in machine.transitions_from(sid) {
                let t = machine.transition(tid);
                let trig = match t.trigger {
                    Trigger::Event(e) => format!("ev{}", machine.event(e).name),
                    Trigger::Completion => "done".to_string(),
                };
                sig.push_str(&format!(
                    ";{trig}|{:?}|{:?}|->{}",
                    t.guard, t.effect, class_of[&t.target]
                ));
            }
            let next = signature_to_class.len();
            let class = *signature_to_class.entry(sig).or_insert(next);
            if new_class_of[&sid] != class {
                new_class_of.insert(sid, class);
            }
        }
        // Detect change as a partition difference (class ids are arbitrary).
        let old_groups = group_by_class(&simple, &class_of);
        let new_groups = group_by_class(&simple, &new_class_of);
        if old_groups != new_groups {
            changed = true;
        }
        class_of = new_class_of;
        if !changed {
            return group_by_class(&simple, &class_of);
        }
    }
}

fn group_by_class(
    states: &[StateId],
    class_of: &std::collections::BTreeMap<StateId, usize>,
) -> Vec<Vec<StateId>> {
    let mut groups: std::collections::BTreeMap<usize, Vec<StateId>> =
        std::collections::BTreeMap::new();
    for &sid in states {
        groups.entry(class_of[&sid]).or_default().push(sid);
    }
    let mut out: Vec<Vec<StateId>> = groups.into_values().collect();
    // Canonical order: by smallest member.
    out.sort_by_key(|g| g.first().copied());
    out
}

/// Variables never read by any guard or action. Assignments to them are
/// unobservable (right-hand sides of the action language are side-effect
/// free), so both the variable and its assignments can be removed.
pub fn unread_variables(machine: &StateMachine) -> Vec<String> {
    let mut read = BTreeSet::new();
    for (_, s) in machine.states() {
        for a in s.entry.iter().chain(&s.exit) {
            a.read_vars(&mut read);
        }
    }
    for (_, t) in machine.transitions() {
        if let Some(g) = &t.guard {
            read.extend(g.free_vars());
        }
        for a in &t.effect {
            a.read_vars(&mut read);
        }
    }
    for (_, r) in machine.regions() {
        for a in &r.initial_effect {
            a.read_vars(&mut read);
        }
    }
    machine
        .variables()
        .keys()
        .filter(|v| !read.contains(*v))
        .cloned()
        .collect()
}

/// Events that trigger no live transition.
pub fn unused_events(machine: &StateMachine) -> Vec<umlsm::EventId> {
    let mut used = BTreeSet::new();
    for (_, t) in machine.transitions() {
        if let Trigger::Event(e) = t.trigger {
            used.insert(e);
        }
    }
    machine
        .events()
        .map(|(id, _)| id)
        .filter(|id| !used.contains(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::samples;
    use umlsm::{Action, Expr, MachineBuilder, Semantics};

    #[test]
    fn flat_sample_s2_unreachable() {
        let m = samples::flat_unreachable();
        let r = reachable_states(&m);
        let s2 = m.state_by_name("S2").expect("S2");
        assert!(!r.is_reachable(s2));
        assert_eq!(r.unreachable_states(&m), vec![s2]);
    }

    #[test]
    fn hierarchical_sample_s3_and_submachine_unreachable() {
        let m = samples::hierarchical_never_active();
        let r = reachable_states(&m);
        for name in [
            "S3", "S3_Init", "S3_Work", "S3_Check", "S3_Retry", "S3_Done",
        ] {
            let sid = m.state_by_name(name).expect(name);
            assert!(!r.is_reachable(sid), "{name} must be unreachable");
        }
        for name in ["S1", "S2", "Final"] {
            let sid = m.state_by_name(name).expect(name);
            assert!(r.is_reachable(sid), "{name} must be reachable");
        }
    }

    #[test]
    fn shadowing_requires_completion_priority() {
        let mut m = samples::hierarchical_never_active();
        assert!(!completion_shadowed_transitions(&m).is_empty());
        m.set_semantics(Semantics::completion_as_fallback());
        assert!(completion_shadowed_transitions(&m).is_empty());
        // Under fallback semantics S3 becomes reachable.
        let r = reachable_states(&m);
        let s3 = m.state_by_name("S3").expect("S3");
        assert!(r.is_reachable(s3));
    }

    #[test]
    fn guarded_completion_does_not_shadow() {
        let mut b = MachineBuilder::new("m");
        b.variable("x", 0);
        let a = b.state("A");
        let c = b.state("B");
        let d = b.state("C");
        let e = b.event("go");
        b.initial(a);
        b.transition(a, c)
            .on_completion()
            .when(Expr::var("x").gt(Expr::int(0)))
            .build();
        b.transition(a, d).on(e).build();
        let m = b.finish().expect("valid");
        assert!(completion_shadowed_transitions(&m).is_empty());
        let r = reachable_states(&m);
        assert!(r.is_reachable(d));
    }

    #[test]
    fn composite_source_does_not_shadow() {
        // An unguarded completion transition out of a *composite* does not
        // shadow its event transitions: the region may still be running.
        let mut b = MachineBuilder::new("m");
        let (c, inner) = b.composite("C");
        let i = b.state_in(inner, "I");
        let ifin = b.final_state_in(inner, "IF");
        let out = b.state("Out");
        let esc = b.state("Esc");
        let e = b.event("go");
        b.initial(c);
        b.initial_in(inner, i);
        b.transition(i, ifin).on(e).build();
        b.transition(c, out).on_completion().build();
        b.transition(c, esc).on(e).build();
        let m = b.finish().expect("valid");
        assert!(completion_shadowed_transitions(&m).is_empty());
    }

    #[test]
    fn const_false_guard_is_dead() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        let e = b.event("go");
        b.initial(a);
        let tid = b
            .transition(a, c)
            .on(e)
            .when(Expr::int(1).eq(Expr::int(2)))
            .build();
        let m = b.finish().expect("valid");
        let dead = dead_transitions(&m);
        assert!(dead
            .iter()
            .any(|(t, r)| *t == tid && *r == DeadTransitionReason::GuardConstFalse));
        // B is unreachable because its only incoming arc is dead.
        let r = reachable_states(&m);
        assert!(!r.is_reachable(c));
    }

    #[test]
    fn dead_transition_reasons_cover_unreachable_sources() {
        let m = samples::flat_unreachable();
        let dead = dead_transitions(&m);
        let s2 = m.state_by_name("S2").expect("S2");
        let from_s2: Vec<_> = dead
            .iter()
            .filter(|(t, _)| m.transition(*t).source == s2)
            .collect();
        assert_eq!(from_s2.len(), 2);
        assert!(from_s2
            .iter()
            .all(|(_, r)| *r == DeadTransitionReason::SourceUnreachable));
    }

    #[test]
    fn equivalence_classes_merge_identical_states() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let x = b.state("X");
        let y = b.state("Y");
        let f = b.state("Tail");
        let e1 = b.event("e1");
        let e2 = b.event("e2");
        b.initial(a);
        // X and Y behave identically: same entry, same outgoing.
        b.on_entry(x, vec![Action::emit("mid")]);
        b.on_entry(y, vec![Action::emit("mid")]);
        b.transition(a, x).on(e1).build();
        b.transition(a, y).on(e2).build();
        b.transition(x, f).on(e1).build();
        b.transition(y, f).on(e1).build();
        let m = b.finish().expect("valid");
        let classes = equivalence_classes(&m);
        let xy = classes.iter().find(|c| c.contains(&x)).expect("class of X");
        assert!(xy.contains(&y), "X and Y must share a class");
    }

    #[test]
    fn equivalence_distinguishes_different_targets() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let x = b.state("X");
        let y = b.state("Y");
        let p = b.state("P");
        let q = b.state("Q");
        let e1 = b.event("e1");
        b.initial(a);
        b.on_entry(p, vec![Action::emit("p")]);
        b.on_entry(q, vec![Action::emit("q")]);
        b.transition(a, x).on(e1).build();
        b.transition(x, p).on(e1).build();
        b.transition(y, q).on(e1).build();
        let m = b.finish().expect("valid");
        let classes = equivalence_classes(&m);
        let cx = classes.iter().find(|c| c.contains(&x)).expect("x class");
        assert!(!cx.contains(&y), "X and Y go to distinguishable targets");
    }

    #[test]
    fn unread_variables_found() {
        let mut b = MachineBuilder::new("m");
        b.variable("used", 0);
        b.variable("ghostly", 0);
        let a = b.state("A");
        b.initial(a);
        b.on_entry(
            a,
            vec![
                Action::assign("ghostly", Expr::int(5)),
                Action::emit_arg("sig", Expr::var("used")),
            ],
        );
        let m = b.finish().expect("valid");
        assert_eq!(unread_variables(&m), vec!["ghostly".to_string()]);
    }

    #[test]
    fn unused_events_found() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let used = b.event("used");
        let unused = b.event("unused");
        b.initial(a);
        b.transition(a, a).on(used).build();
        let m = b.finish().expect("valid");
        assert_eq!(unused_events(&m), vec![unused]);
    }
}
