//! The optimization manager: user-selected passes, fixpoint iteration,
//! optional dynamic behaviour checking.
//!
//! The paper's tool "gives the user the ability to choose the optimization
//! that he would perform" and "generates the optimized model after running
//! the selected optimization"; its conclusion plans a mode that
//! "automatically executes optimizations that correspond to the UML model".
//! [`Optimizer`] provides both: [`select`](Optimizer::select) for manual
//! choice, [`with_all`](Optimizer::with_all) for the automatic mode.

use std::fmt;

use umlsm::{StateMachine, ValidateError};

use crate::equivalence::{check_trace_equivalence, EquivConfig, EquivReport};
use crate::passes::{self, ModelPass};
use crate::report::OptimizationReport;

/// The user-selectable optimization catalogue (the menu of the paper's
/// tool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Optimization {
    /// Constant-fold and drop trivially-true guards.
    SimplifyGuards,
    /// Remove transitions that can never fire.
    PruneDeadTransitions,
    /// Remove states that can never become active (the paper's headline
    /// optimization).
    RemoveUnreachableStates,
    /// Merge behaviourally equivalent simple states.
    MergeEquivalentStates,
    /// Drop event types that trigger no transition.
    RemoveUnusedEvents,
    /// Drop context variables that are never read.
    RemoveUnusedVariables,
}

impl Optimization {
    /// Every optimization, in canonical application order.
    pub fn all() -> [Optimization; 6] {
        [
            Optimization::SimplifyGuards,
            Optimization::PruneDeadTransitions,
            Optimization::RemoveUnreachableStates,
            Optimization::MergeEquivalentStates,
            Optimization::RemoveUnusedEvents,
            Optimization::RemoveUnusedVariables,
        ]
    }

    fn pass(self) -> Box<dyn ModelPass> {
        match self {
            Optimization::SimplifyGuards => Box::new(passes::SimplifyGuards),
            Optimization::PruneDeadTransitions => Box::new(passes::PruneDeadTransitions),
            Optimization::RemoveUnreachableStates => Box::new(passes::RemoveUnreachableStates),
            Optimization::MergeEquivalentStates => Box::new(passes::MergeEquivalentStates),
            Optimization::RemoveUnusedEvents => Box::new(passes::RemoveUnusedEvents),
            Optimization::RemoveUnusedVariables => Box::new(passes::RemoveUnusedVariables),
        }
    }

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        self.pass().name()
    }

    /// One-line description shown in tool listings.
    pub fn description(self) -> &'static str {
        self.pass().description()
    }
}

impl fmt::Display for Optimization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An optimization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// The input model is malformed.
    InvalidInput(ValidateError),
    /// A pass produced a malformed model (an optimizer bug).
    InvalidOutput {
        /// The offending pass.
        pass: String,
        /// The validation failure.
        error: ValidateError,
    },
    /// The optimized model is not trace-equivalent to the input (an
    /// optimizer bug caught by the dynamic check).
    BehaviourChanged(EquivReport),
    /// The dynamic check itself failed to run.
    CheckFailed(String),
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::InvalidInput(e) => write!(f, "input model is invalid: {e}"),
            OptimizeError::InvalidOutput { pass, error } => {
                write!(f, "pass `{pass}` produced an invalid model: {error}")
            }
            OptimizeError::BehaviourChanged(r) => {
                write!(f, "optimization changed behaviour: {r}")
            }
            OptimizeError::CheckFailed(msg) => write!(f, "equivalence check failed: {msg}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Result of a successful optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The optimized model.
    pub machine: StateMachine,
    /// What happened, pass by pass.
    pub report: OptimizationReport,
    /// The dynamic equivalence report, when checking was enabled.
    pub equivalence: Option<EquivReport>,
}

/// Configurable model optimizer.
///
/// # Example
///
/// ```
/// use mbo::Optimizer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let machine = umlsm::samples::hierarchical_never_active();
/// let outcome = Optimizer::with_all().check_behaviour(true).optimize(&machine)?;
/// assert!(outcome.machine.metrics().states < machine.metrics().states);
/// assert!(outcome.equivalence.expect("checked").equivalent);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Optimizer {
    selected: Vec<Optimization>,
    check_behaviour: bool,
    equiv_config: EquivConfig,
    max_iterations: usize,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::new()
    }
}

impl Optimizer {
    /// Creates an optimizer with *no* passes selected (the user picks, as in
    /// the paper's tool).
    pub fn new() -> Optimizer {
        Optimizer {
            selected: Vec::new(),
            check_behaviour: false,
            equiv_config: EquivConfig::default(),
            max_iterations: 8,
        }
    }

    /// Creates an optimizer with the full catalogue selected (the automatic
    /// mode of the paper's conclusion).
    pub fn with_all() -> Optimizer {
        let mut o = Optimizer::new();
        o.selected = Optimization::all().to_vec();
        o
    }

    /// Adds one optimization to the selection (idempotent).
    pub fn select(mut self, optimization: Optimization) -> Self {
        if !self.selected.contains(&optimization) {
            self.selected.push(optimization);
        }
        self
    }

    /// The current selection, in application order.
    pub fn selected(&self) -> &[Optimization] {
        &self.selected
    }

    /// Enables/disables the dynamic trace-equivalence check on the result.
    pub fn check_behaviour(mut self, enabled: bool) -> Self {
        self.check_behaviour = enabled;
        self
    }

    /// Overrides the equivalence-check configuration.
    pub fn equivalence_config(mut self, config: EquivConfig) -> Self {
        self.equiv_config = config;
        self
    }

    /// Bounds the number of fixpoint iterations (each iteration applies the
    /// full selection once).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Runs the selected passes to a fixpoint and returns the optimized
    /// model plus reports.
    ///
    /// # Errors
    ///
    /// Fails if the input model is invalid, if a pass breaks model validity
    /// (a bug), or — with [`check_behaviour`](Self::check_behaviour) — if
    /// the result is not trace-equivalent to the input.
    pub fn optimize(&self, machine: &StateMachine) -> Result<OptimizeOutcome, OptimizeError> {
        machine.validate().map_err(OptimizeError::InvalidInput)?;
        let mut out = machine.clone();
        let mut report = OptimizationReport {
            before: machine.metrics(),
            ..OptimizationReport::default()
        };

        // Application order is canonical regardless of selection order:
        // analyses feed each other (guard folding exposes dead transitions,
        // dead transitions expose unreachable states, ...).
        let mut ordered: Vec<Optimization> = Optimization::all()
            .into_iter()
            .filter(|o| self.selected.contains(o))
            .collect();
        if ordered.is_empty() {
            ordered = Vec::new();
        }

        for _ in 0..self.max_iterations {
            report.iterations += 1;
            let mut changed = false;
            for opt in &ordered {
                let pass = opt.pass();
                let pass_report = pass.run(&mut out);
                if let Err(error) = out.validate() {
                    return Err(OptimizeError::InvalidOutput {
                        pass: pass.name().to_string(),
                        error,
                    });
                }
                changed |= pass_report.changed();
                report.passes.push(pass_report);
            }
            if !changed {
                break;
            }
        }
        report.after = out.metrics();

        let equivalence = if self.check_behaviour {
            let r = check_trace_equivalence(machine, &out, &self.equiv_config)
                .map_err(|e| OptimizeError::CheckFailed(e.to_string()))?;
            if !r.equivalent {
                return Err(OptimizeError::BehaviourChanged(r));
            }
            Some(r)
        } else {
            None
        };

        Ok(OptimizeOutcome {
            machine: out,
            report,
            equivalence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::samples;

    #[test]
    fn empty_selection_is_identity() {
        let m = samples::flat_unreachable();
        let out = Optimizer::new().optimize(&m).expect("ok");
        assert_eq!(out.machine, m);
        assert!(!out.report.changed());
    }

    #[test]
    fn manual_selection_runs_only_selected() {
        let m = samples::flat_unreachable();
        let out = Optimizer::new()
            .select(Optimization::RemoveUnusedEvents)
            .optimize(&m)
            .expect("ok");
        // No event is unused before unreachable-state removal, so nothing
        // changes — the selection did not sneak in other passes.
        assert!(out.machine.state_by_name("S2").is_some());
    }

    #[test]
    fn automatic_mode_reaches_fixpoint() {
        let m = samples::hierarchical_never_active();
        let out = Optimizer::with_all()
            .check_behaviour(true)
            .optimize(&m)
            .expect("ok");
        // S3's submachine (6 states) is gone; e4 may become unused and
        // disappear too.
        assert!(out.machine.state_by_name("S3").is_none());
        assert!(out.report.iterations >= 2, "fixpoint needs a second pass");
        assert!(out.equivalence.expect("checked").equivalent);
        assert!(out.machine.validate().is_ok());
    }

    #[test]
    fn cascading_unlocks_event_removal() {
        // Removing the dead submachine frees events only it used.
        let m = samples::hierarchical_never_active();
        let before_events = m.metrics().events;
        let out = Optimizer::with_all().optimize(&m).expect("ok");
        assert!(
            out.machine.metrics().events < before_events,
            "events used only by the dead submachine must disappear"
        );
    }

    #[test]
    fn display_and_names_are_stable() {
        assert_eq!(
            Optimization::RemoveUnreachableStates.to_string(),
            "remove-unreachable-states"
        );
        assert!(!Optimization::SimplifyGuards.description().is_empty());
        assert_eq!(Optimization::all().len(), 6);
    }

    #[test]
    fn invalid_input_is_rejected() {
        let b = umlsm::MachineBuilder::new("broken");
        let m = b.finish_unchecked();
        assert!(matches!(
            Optimizer::with_all().optimize(&m),
            Err(OptimizeError::InvalidInput(_))
        ));
    }

    #[test]
    fn negative_control_fully_live_machine_unchanged() {
        let m = samples::cruise_control();
        let out = Optimizer::with_all()
            .check_behaviour(true)
            .optimize(&m)
            .expect("ok");
        assert_eq!(
            out.machine.metrics().states,
            m.metrics().states,
            "cruise control is fully live; no state may be removed"
        );
    }
}
