//! Lowering of the model's action language to target-language statements.
//!
//! Model context variables become fields of the generated `Ctx` struct
//! (prefixed `v_`), emissions become `env_emit(signal_code, arg)` extern
//! calls, and guards become boolean expressions over the context fields.

use tlang::{Expr as TExpr, Place, Stmt};
use umlsm::{Action, BinOp as MBinOp, Expr as MExpr, UnOp as MUnOp};

use crate::codes::CodeMap;
use crate::CodegenError;

/// Name of the generated context global.
pub(crate) const CTX: &str = "ctx";

/// The context field holding a model variable.
pub(crate) fn var_field(name: &str) -> String {
    format!("v_{}", sanitize(name))
}

/// Makes a model name usable as a target identifier.
pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Lowers a model expression to a target expression reading `ctx` fields.
pub(crate) fn lower_expr(expr: &MExpr) -> Result<TExpr, CodegenError> {
    Ok(match expr {
        MExpr::Int(v) => {
            if i32::try_from(*v).is_err() {
                return Err(CodegenError::ConstantOutOfRange(*v));
            }
            TExpr::Int(*v)
        }
        MExpr::Bool(b) => TExpr::Bool(*b),
        MExpr::Var(name) => TExpr::Place(Place::var(CTX).field(var_field(name))),
        MExpr::Unary(op, inner) => {
            let inner = lower_expr(inner)?;
            let op = match op {
                MUnOp::Neg => tlang::UnOp::Neg,
                MUnOp::Not => tlang::UnOp::Not,
            };
            TExpr::Unary(op, Box::new(inner))
        }
        MExpr::Binary(op, lhs, rhs) => {
            let l = lower_expr(lhs)?;
            let r = lower_expr(rhs)?;
            TExpr::Binary(lower_binop(*op), Box::new(l), Box::new(r))
        }
    })
}

fn lower_binop(op: MBinOp) -> tlang::BinOp {
    match op {
        MBinOp::Add => tlang::BinOp::Add,
        MBinOp::Sub => tlang::BinOp::Sub,
        MBinOp::Mul => tlang::BinOp::Mul,
        MBinOp::Div => tlang::BinOp::Div,
        MBinOp::Rem => tlang::BinOp::Rem,
        MBinOp::Eq => tlang::BinOp::Eq,
        MBinOp::Ne => tlang::BinOp::Ne,
        MBinOp::Lt => tlang::BinOp::Lt,
        MBinOp::Le => tlang::BinOp::Le,
        MBinOp::Gt => tlang::BinOp::Gt,
        MBinOp::Ge => tlang::BinOp::Ge,
        MBinOp::And => tlang::BinOp::And,
        MBinOp::Or => tlang::BinOp::Or,
    }
}

/// Lowers a sequence of model actions to target statements.
pub(crate) fn lower_actions(
    actions: &[Action],
    codes: &CodeMap,
) -> Result<Vec<Stmt>, CodegenError> {
    let mut out = Vec::new();
    for a in actions {
        lower_action(a, codes, &mut out)?;
    }
    Ok(out)
}

fn lower_action(action: &Action, codes: &CodeMap, out: &mut Vec<Stmt>) -> Result<(), CodegenError> {
    match action {
        Action::Assign { var, value } => {
            out.push(Stmt::Assign {
                place: Place::var(CTX).field(var_field(var)),
                value: lower_expr(value)?,
            });
        }
        Action::Emit { signal, arg } => {
            let code = codes
                .signal_code(signal)
                .expect("signal collected from the same machine");
            let arg = match arg {
                Some(a) => lower_expr(a)?,
                None => TExpr::Int(0),
            };
            out.push(Stmt::Expr(TExpr::Call(
                "env_emit".into(),
                vec![TExpr::Int(code), arg],
            )));
        }
        Action::If {
            cond,
            then_actions,
            else_actions,
        } => {
            out.push(Stmt::If {
                cond: lower_expr(cond)?,
                then_body: lower_actions(then_actions, codes)?,
                else_body: lower_actions(else_actions, codes)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::Expr as MExpr;

    #[test]
    fn sanitize_replaces_punctuation() {
        assert_eq!(sanitize("S3 Work-item"), "S3_Work_item");
        assert_eq!(var_field("speed"), "v_speed");
    }

    #[test]
    fn lower_expr_maps_vars_to_ctx_fields() {
        let e = MExpr::var("speed").ge(MExpr::int(30));
        let t = lower_expr(&e).expect("lowers");
        let src = format!("{t:?}");
        assert!(src.contains("v_speed"), "{src}");
    }

    #[test]
    fn out_of_range_constant_rejected() {
        let e = MExpr::int(i64::from(i32::MAX) + 1);
        assert!(matches!(
            lower_expr(&e),
            Err(CodegenError::ConstantOutOfRange(_))
        ));
    }

    #[test]
    fn emit_lowered_to_env_call() {
        let m = umlsm::samples::flat_unreachable();
        let codes = CodeMap::build(&m);
        let stmts = lower_actions(&[Action::emit("s1_left")], &codes).expect("lowers");
        assert_eq!(stmts.len(), 1);
        let text = format!("{stmts:?}");
        assert!(text.contains("env_emit"), "{text}");
    }
}
