//! The Nested Switch Case pattern (§III.B): "an outer case statement that
//! selects the current state and an inner case statement that selects the
//! appropriate behavior given the type of the received event".
//!
//! Composite states get their own dispatch function over their region's
//! state field — the implementation unit that disappears entirely when the
//! model optimizer removes the composite.

use tlang::{Expr, Function, Module, Place, Stmt, Type};
use umlsm::{StateId, StateKind};

use crate::actions::CTX;
use crate::common::{CallStyle, Gen};
use crate::CodegenError;

/// Nested-switch generators inline entry/exit/effect behaviour at every
/// fire site — the verbose style that makes this pattern large in Table I.
const STYLE: CallStyle = CallStyle::Inline;

pub(crate) fn emit(gen: &Gen) -> Result<Module, CodegenError> {
    let mut module = Module::new(format!("{}_nested_switch", gen.m.name()));
    let (ctx_def, ctx_global) = gen.ctx_items();
    module.push_struct(ctx_def);
    for e in gen.externs() {
        module.push_extern(e);
    }
    module.push_global(ctx_global);
    for (rid, region) in gen.m.regions() {
        if region.owner.is_some() {
            module.push_function(region_dispatch(gen, rid)?);
        }
    }
    module.push_function(sm_step(gen)?);
    module.push_function(gen.sm_init_with(STYLE)?);
    module.push_function(gen.sm_state());
    Ok(module)
}

fn dispatch_name(gen: &Gen, rid: umlsm::RegionId) -> String {
    format!("dispatch_{}", gen.region_field(rid))
}

/// The inner `switch (ev)` for one state: guarded fire sequences in
/// document order; `handled` is the value returned once a transition fires.
fn event_switch(gen: &Gen, s: StateId, handled: Stmt) -> Result<Option<Stmt>, CodegenError> {
    let groups = gen.transitions_by_event(s);
    if groups.is_empty() {
        return Ok(None);
    }
    let mut cases = Vec::new();
    for (code, transitions) in groups {
        let mut body = Vec::new();
        for (_, t) in transitions {
            let mut fire = gen.fire_stmts(s, t, STYLE)?;
            fire.push(handled.clone());
            match &t.guard {
                None => {
                    body.extend(fire);
                    break; // unconditional: later alternatives unreachable
                }
                Some(g) if g.is_const_true() => {
                    body.extend(fire);
                    break;
                }
                Some(g) if g.is_const_false() => {}
                Some(g) => body.push(Stmt::If {
                    cond: crate::actions::lower_expr(g)?,
                    then_body: fire,
                    else_body: vec![],
                }),
            }
        }
        cases.push((code, body));
    }
    Ok(Some(Stmt::Switch {
        scrutinee: Expr::var("ev"),
        cases,
        default: vec![],
    }))
}

/// Case body for one state of a region: innermost-first composite
/// dispatch, then the state's own event switch.
fn state_case(gen: &Gen, s: StateId, handled: Stmt) -> Result<Vec<Stmt>, CodegenError> {
    let mut body = Vec::new();
    if let StateKind::Composite(sub) = gen.m.state(s).kind {
        body.push(Stmt::If {
            cond: Expr::Call(dispatch_name(gen, sub), vec![Expr::var("ev")]),
            then_body: vec![handled.clone()],
            else_body: vec![],
        });
    }
    if let Some(sw) = event_switch(gen, s, handled)? {
        body.push(sw);
    }
    Ok(body)
}

/// Dispatch function of a nested region: `fn dispatch_<field>(ev) -> bool`.
fn region_dispatch(gen: &Gen, rid: umlsm::RegionId) -> Result<Function, CodegenError> {
    let field = gen.region_field(rid).to_string();
    let mut cases = Vec::new();
    for s in gen.m.states_in(rid) {
        let body = state_case(gen, s, Stmt::Return(Some(Expr::Bool(true))))?;
        cases.push((gen.state_code(s), body));
    }
    let body = vec![
        Stmt::Switch {
            scrutinee: Expr::Place(Place::var(CTX).field(field.clone())),
            cases,
            default: vec![],
        },
        Stmt::Return(Some(Expr::Bool(false))),
    ];
    Ok(Function {
        name: format!("dispatch_{field}"),
        params: vec![("ev".into(), Type::I32)],
        ret: Type::Bool,
        body,
        exported: false,
    })
}

/// The exported root dispatcher: `fn sm_step(ev) -> void`.
fn sm_step(gen: &Gen) -> Result<Function, CodegenError> {
    let mut cases = Vec::new();
    for s in gen.m.states_in(gen.m.root()) {
        let body = state_case(gen, s, Stmt::Return(None))?;
        cases.push((gen.state_code(s), body));
    }
    let body = vec![Stmt::Switch {
        scrutinee: Expr::Place(Place::var(CTX).field("state")),
        cases,
        default: vec![],
    }];
    Ok(Function {
        name: "sm_step".into(),
        params: vec![("ev".into(), Type::I32)],
        ret: Type::Void,
        body,
        exported: true,
    })
}

#[cfg(test)]
mod tests {
    use crate::{generate, Pattern};
    use umlsm::samples;

    #[test]
    fn generates_outer_and_inner_switches() {
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::NestedSwitch).expect("generates");
        let src = g.module.to_source();
        assert!(src.contains("switch ctx.state"));
        assert!(src.contains("switch ev"));
    }

    #[test]
    fn composite_gets_own_dispatch_unit() {
        let m = samples::hierarchical_never_active();
        let g = generate(&m, Pattern::NestedSwitch).expect("generates");
        let src = g.module.to_source();
        assert!(src.contains("fn dispatch_s3_state"), "{src}");
    }

    #[test]
    fn unreachable_state_code_is_still_generated() {
        // The paper's point: the generator is faithful; dead model parts
        // become dead code only the *model* optimizer can remove. S2's
        // case arm (with its exit behaviour and outgoing fires) is emitted
        // even though nothing can ever set ctx.state to S2's code.
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::NestedSwitch).expect("generates");
        let src = g.module.to_source();
        let s2 = m.state_by_name("S2").expect("S2");
        let s2_code = g.codes.state_code(s2).expect("code");
        assert!(src.contains(&format!("case {s2_code}:")), "{src}");
        // And removing S2 at the model level shrinks the source.
        let mut opt = m.clone();
        opt.remove_state(s2);
        let g_opt = generate(&opt, Pattern::NestedSwitch).expect("generates");
        assert!(g_opt.module.to_source().len() < src.len());
    }

    #[test]
    fn inline_style_duplicates_entry_actions_per_fire_site() {
        // Two transitions target S3, so S3's entry emission appears (at
        // least) twice in the generated source — the verbosity that makes
        // nested-switch code large in Table I.
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::NestedSwitch).expect("generates");
        let src = g.module.to_source();
        let sig = g.codes.signal_code("s3_active").expect("signal");
        let needle = format!("env_emit({sig}, ");
        assert!(src.matches(&needle).count() >= 2, "{src}");
    }
}
