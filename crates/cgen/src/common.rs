//! Shared generation machinery used by all three patterns.
//!
//! All patterns share the same *runtime structure* (context struct, per-state
//! enter/exit functions with eagerly chained completion transitions, region
//! state fields) and differ only in their dispatch mechanism — exactly the
//! degrees of freedom §III.B of the paper describes. Keeping the shared part
//! common also guarantees the three patterns implement the *same fixed
//! semantics*, which Table I's comparison presumes.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use tlang::{Expr, ExternDecl, Function, GlobalDef, Init, Place, Stmt, StructDef, Type};
use umlsm::{RegionId, StateId, StateKind, StateMachine, Transition, TransitionId, Trigger};

use crate::actions::{lower_actions, lower_expr, sanitize, var_field, CTX};
use crate::codes::CodeMap;
use crate::CodegenError;

/// How a pattern references another state's enter/exit behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CallStyle {
    /// Through shared `enter_*`/`exit_*` functions (factored; STT).
    Call,
    /// Spliced in place at every site (verbose; NestedSwitch and the
    /// per-class methods of the State Pattern).
    Inline,
}

/// Precomputed generation context shared by the pattern emitters.
pub(crate) struct Gen<'m> {
    pub m: &'m StateMachine,
    pub codes: CodeMap,
    region_fields: BTreeMap<RegionId, String>,
}

impl<'m> Gen<'m> {
    pub fn new(m: &'m StateMachine) -> Result<Gen<'m>, CodegenError> {
        let codes = CodeMap::build(m);
        let mut region_fields = BTreeMap::new();
        let mut used = BTreeSet::new();
        for (rid, region) in m.regions() {
            let field = match region.owner {
                None => "state".to_string(),
                Some(owner) => {
                    let base = format!("{}_state", sanitize(&m.state(owner).name).to_lowercase());
                    if used.contains(&base) {
                        format!("{base}_{}", rid.index())
                    } else {
                        base
                    }
                }
            };
            used.insert(field.clone());
            region_fields.insert(rid, field);
        }
        let gen = Gen {
            m,
            codes,
            region_fields,
        };
        gen.check_completion_acyclic()?;
        Ok(gen)
    }

    /// Consumes the context, returning the code map.
    pub fn into_codes(self) -> CodeMap {
        self.codes
    }

    // --------------------------------------------------------------
    // Naming
    // --------------------------------------------------------------

    pub fn enter_name(&self, s: StateId) -> String {
        format!("enter_{}", sanitize(&self.m.state(s).name))
    }

    pub fn exit_name(&self, s: StateId) -> String {
        format!("exit_{}", sanitize(&self.m.state(s).name))
    }

    /// The `ctx` field that stores the active state code of a region.
    pub fn region_field(&self, r: RegionId) -> &str {
        &self.region_fields[&r]
    }

    pub fn state_code(&self, s: StateId) -> i64 {
        self.codes.state_code(s).expect("state numbered at build")
    }

    /// Event-triggered transitions leaving `s`, in document (id) order.
    pub fn event_transitions(&self, s: StateId) -> Vec<(TransitionId, &Transition)> {
        self.m
            .transitions_from(s)
            .into_iter()
            .map(|tid| (tid, self.m.transition(tid)))
            .filter(|(_, t)| !t.is_completion())
            .collect()
    }

    /// Completion transitions leaving `s`, in document (id) order.
    pub fn completion_transitions(&self, s: StateId) -> Vec<(TransitionId, &Transition)> {
        self.m
            .transitions_from(s)
            .into_iter()
            .map(|tid| (tid, self.m.transition(tid)))
            .filter(|(_, t)| t.is_completion())
            .collect()
    }

    // --------------------------------------------------------------
    // Safety: generated completion chains must terminate
    // --------------------------------------------------------------

    /// Rejects models where chained completion transitions may cycle: the
    /// generated code chains them by direct calls, so a cycle would recurse
    /// forever. (The model interpreter bounds the chain dynamically; code
    /// generation must prove it statically.)
    fn check_completion_acyclic(&self) -> Result<(), CodegenError> {
        // may-chain edges from each state.
        let mut edges: BTreeMap<StateId, Vec<StateId>> = BTreeMap::new();
        for (sid, state) in self.m.states() {
            let mut out = Vec::new();
            match state.kind {
                StateKind::Composite(region) => {
                    if let Some(init) = self.m.region(region).initial {
                        out.push(init);
                    }
                }
                StateKind::Simple => {
                    for (_, t) in self.completion_transitions(sid) {
                        out.push(t.target);
                        if t.guard_is_trivially_true() {
                            break; // later completion transitions can never fire
                        }
                    }
                }
                StateKind::Final => {
                    // A final state completes its owner.
                    if let Some(owner) = self.m.region(state.parent).owner {
                        for (_, t) in self.completion_transitions(owner) {
                            out.push(t.target);
                            if t.guard_is_trivially_true() {
                                break;
                            }
                        }
                    }
                }
            }
            edges.insert(sid, out);
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<StateId, Mark> = edges.keys().map(|s| (*s, Mark::White)).collect();
        fn dfs(
            node: StateId,
            edges: &BTreeMap<StateId, Vec<StateId>>,
            marks: &mut BTreeMap<StateId, Mark>,
            machine: &StateMachine,
        ) -> Result<(), CodegenError> {
            marks.insert(node, Mark::Grey);
            for &next in &edges[&node] {
                match marks[&next] {
                    Mark::Grey => {
                        return Err(CodegenError::CompletionCycle(
                            machine.state(next).name.clone(),
                        ))
                    }
                    Mark::White => dfs(next, edges, marks, machine)?,
                    Mark::Black => {}
                }
            }
            marks.insert(node, Mark::Black);
            Ok(())
        }
        let nodes: Vec<StateId> = edges.keys().copied().collect();
        for s in nodes {
            if marks[&s] == Mark::White {
                dfs(s, &edges, &mut marks, self.m)?;
            }
        }
        Ok(())
    }

    // --------------------------------------------------------------
    // Shared emission
    // --------------------------------------------------------------

    /// The `Ctx` struct (state fields + model variables) and its global.
    pub fn ctx_items(&self) -> (StructDef, GlobalDef) {
        let mut fields = Vec::new();
        for (rid, _) in self.m.regions() {
            fields.push((self.region_field(rid).to_string(), Type::I32));
        }
        for name in self.m.variables().keys() {
            fields.push((var_field(name), Type::I32));
        }
        let def = StructDef {
            name: "Ctx".into(),
            fields,
        };
        let global = GlobalDef {
            name: CTX.into(),
            ty: Type::Struct("Ctx".into()),
            init: Init::Zero,
            mutable: true,
        };
        (def, global)
    }

    /// The `env_emit` extern declaration.
    pub fn externs(&self) -> Vec<ExternDecl> {
        vec![ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32, Type::I32],
            ret: Type::Void,
        }]
    }

    /// `sm_init`: reset variables and state fields, run the root initial
    /// effect, enter the initial state (through the enter functions).
    pub fn sm_init(&self) -> Result<Function, CodegenError> {
        self.sm_init_with(CallStyle::Call)
    }

    /// `sm_init` with an explicit call style for the initial entry.
    pub fn sm_init_with(&self, style: CallStyle) -> Result<Function, CodegenError> {
        let mut body = Vec::new();
        for (name, value) in self.m.variables() {
            if i32::try_from(*value).is_err() {
                return Err(CodegenError::ConstantOutOfRange(*value));
            }
            body.push(Stmt::Assign {
                place: Place::var(CTX).field(var_field(name)),
                value: Expr::Int(*value),
            });
        }
        for (rid, _) in self.m.regions() {
            body.push(Stmt::Assign {
                place: Place::var(CTX).field(self.region_field(rid).to_string()),
                value: Expr::Int(-1),
            });
        }
        let root = self.m.region(self.m.root());
        body.extend(lower_actions(&root.initial_effect, &self.codes)?);
        let initial = root.initial.expect("validated machine has root initial");
        body.extend(self.enter_ref(initial, style)?);
        Ok(Function {
            name: "sm_init".into(),
            params: vec![],
            ret: Type::Void,
            body,
            exported: true,
        })
    }

    /// `sm_state`: returns the root region's active state code.
    pub fn sm_state(&self) -> Function {
        Function {
            name: "sm_state".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![Stmt::Return(Some(Expr::Place(
                Place::var(CTX).field("state"),
            )))],
            exported: true,
        }
    }

    /// Enter sequence for a state: entry actions, state-field update,
    /// composite descent, and the eager completion chain.
    ///
    /// With [`CallStyle::Call`] references to other states go through their
    /// `enter_*`/`exit_*` functions (the factored style the STT pattern
    /// uses); with [`CallStyle::Inline`] the sequences are spliced in place
    /// — the verbose style nested-switch generators actually emit, which is
    /// why that pattern is so much larger in the paper's Table I.
    pub fn enter_seq(&self, s: StateId, style: CallStyle) -> Result<Vec<Stmt>, CodegenError> {
        let state = self.m.state(s);
        let mut body = lower_actions(&state.entry, &self.codes)?;
        body.push(Stmt::Assign {
            place: Place::var(CTX).field(self.region_field(state.parent).to_string()),
            value: Expr::Int(self.state_code(s)),
        });
        match state.kind {
            StateKind::Composite(region) => {
                let r = self.m.region(region);
                body.extend(lower_actions(&r.initial_effect, &self.codes)?);
                if let Some(init) = r.initial {
                    body.extend(self.enter_ref(init, style)?);
                }
                // The composite's own completion fires from the enter
                // sequence of its region's final state(s).
            }
            StateKind::Simple => {
                let chain = self.completion_transitions(s);
                body.extend(self.completion_chain(s, &chain, style)?);
            }
            StateKind::Final => {
                if let Some(owner) = self.m.region(state.parent).owner {
                    let chain = self.completion_transitions(owner);
                    body.extend(self.completion_chain(owner, &chain, style)?);
                }
            }
        }
        Ok(body)
    }

    /// Exit sequence for a state: composite substate exit (innermost
    /// first), then own exit actions.
    pub fn exit_seq(&self, s: StateId, style: CallStyle) -> Result<Vec<Stmt>, CodegenError> {
        let state = self.m.state(s);
        let mut body = Vec::new();
        if let StateKind::Composite(region) = state.kind {
            let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
            for sub in self.m.states_in(region) {
                cases.push((self.state_code(sub), self.exit_ref(sub, style)?));
            }
            body.push(Stmt::Switch {
                scrutinee: Expr::Place(
                    Place::var(CTX).field(self.region_field(region).to_string()),
                ),
                cases,
                default: vec![],
            });
        }
        body.extend(lower_actions(&state.exit, &self.codes)?);
        Ok(body)
    }

    fn enter_ref(&self, s: StateId, style: CallStyle) -> Result<Vec<Stmt>, CodegenError> {
        match style {
            CallStyle::Call => Ok(vec![Stmt::Expr(Expr::Call(self.enter_name(s), vec![]))]),
            CallStyle::Inline => self.enter_seq(s, style),
        }
    }

    fn exit_ref(&self, s: StateId, style: CallStyle) -> Result<Vec<Stmt>, CodegenError> {
        match style {
            CallStyle::Call => Ok(vec![Stmt::Expr(Expr::Call(self.exit_name(s), vec![]))]),
            CallStyle::Inline => self.exit_seq(s, style),
        }
    }

    /// Enter function for every state (used by table-driven patterns).
    pub fn enter_function(&self, s: StateId) -> Result<Function, CodegenError> {
        Ok(Function {
            name: self.enter_name(s),
            params: vec![],
            ret: Type::Void,
            body: self.enter_seq(s, CallStyle::Call)?,
            exported: false,
        })
    }

    /// Exit function for every state (used by table-driven patterns).
    pub fn exit_function(&self, s: StateId) -> Result<Function, CodegenError> {
        Ok(Function {
            name: self.exit_name(s),
            params: vec![],
            ret: Type::Void,
            body: self.exit_seq(s, CallStyle::Call)?,
            exported: false,
        })
    }

    /// All enter+exit functions, every region, in deterministic order.
    pub fn state_functions(&self) -> Result<Vec<Function>, CodegenError> {
        let mut out = Vec::new();
        for (sid, _) in self.m.states() {
            out.push(self.enter_function(sid)?);
            out.push(self.exit_function(sid)?);
        }
        Ok(out)
    }

    /// The eager completion chain of `owner` as a guard-nested if/else
    /// tree: in document order, the first transition whose guard holds
    /// fires (exit, effect, enter target); an unguarded transition ends the
    /// chain unconditionally.
    fn completion_chain(
        &self,
        owner: StateId,
        chain: &[(TransitionId, &Transition)],
        style: CallStyle,
    ) -> Result<Vec<Stmt>, CodegenError> {
        let Some(((_, t), rest)) = chain.split_first() else {
            return Ok(Vec::new());
        };
        let mut fire = self.exit_ref(owner, style)?;
        fire.extend(lower_actions(&t.effect, &self.codes)?);
        fire.extend(self.enter_ref(t.target, style)?);
        match &t.guard {
            None => Ok(fire),
            Some(g) if g.is_const_true() => Ok(fire),
            Some(g) if g.is_const_false() => self.completion_chain(owner, rest, style),
            Some(g) => Ok(vec![Stmt::If {
                cond: lower_expr(g)?,
                then_body: fire,
                else_body: self.completion_chain(owner, rest, style)?,
            }]),
        }
    }

    /// The statements that fire an *event-triggered* transition: exit the
    /// source (and everything nested in it), run the effect, enter the
    /// target.
    pub fn fire_stmts(
        &self,
        src: StateId,
        t: &Transition,
        style: CallStyle,
    ) -> Result<Vec<Stmt>, CodegenError> {
        debug_assert!(!t.is_completion());
        let mut out = self.exit_ref(src, style)?;
        out.extend(lower_actions(&t.effect, &self.codes)?);
        out.extend(self.enter_ref(t.target, style)?);
        Ok(out)
    }

    /// Groups a state's event transitions by event code, preserving
    /// document order within each group.
    pub fn transitions_by_event(
        &self,
        s: StateId,
    ) -> BTreeMap<i64, Vec<(TransitionId, &Transition)>> {
        let mut groups: BTreeMap<i64, Vec<(TransitionId, &Transition)>> = BTreeMap::new();
        for (tid, t) in self.event_transitions(s) {
            let Trigger::Event(eid) = t.trigger else {
                continue;
            };
            let code = self
                .codes
                .event_code(&self.m.event(eid).name)
                .expect("event numbered at build");
            groups.entry(code).or_default().push((tid, t));
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::{samples, MachineBuilder};

    #[test]
    fn region_fields_are_unique_and_named() {
        let m = samples::hierarchical_never_active();
        let g = Gen::new(&m).expect("gen");
        assert_eq!(g.region_field(m.root()), "state");
        let s3 = m.state_by_name("S3").expect("S3");
        let region = m.state(s3).region().expect("composite");
        assert_eq!(g.region_field(region), "s3_state");
    }

    #[test]
    fn completion_cycle_rejected() {
        let mut b = MachineBuilder::new("m");
        let a = b.state("A");
        let c = b.state("B");
        b.initial(a);
        b.transition(a, c).on_completion().build();
        b.transition(c, a).on_completion().build();
        let m = b.finish().expect("valid model (interp bounds it)");
        assert!(matches!(
            Gen::new(&m),
            Err(CodegenError::CompletionCycle(_))
        ));
    }

    #[test]
    fn guarded_completion_cycle_also_rejected_conservatively() {
        let mut b = MachineBuilder::new("m");
        b.variable("x", 0);
        let a = b.state("A");
        let c = b.state("B");
        b.initial(a);
        b.transition(a, c)
            .on_completion()
            .when(umlsm::Expr::var("x").gt(umlsm::Expr::int(0)))
            .build();
        b.transition(c, a).on_completion().build();
        let m = b.finish().expect("valid");
        assert!(matches!(
            Gen::new(&m),
            Err(CodegenError::CompletionCycle(_))
        ));
    }

    #[test]
    fn acyclic_completion_accepted() {
        let m = samples::hierarchical_never_active();
        assert!(Gen::new(&m).is_ok());
    }

    #[test]
    fn ctx_struct_has_region_and_var_fields() {
        let m = samples::hierarchical_never_active();
        let g = Gen::new(&m).expect("gen");
        let (def, global) = g.ctx_items();
        let names: Vec<&str> = def.fields.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"state"));
        assert!(names.contains(&"s3_state"));
        assert!(names.contains(&"v_counter"));
        assert!(global.mutable);
    }

    #[test]
    fn state_functions_cover_all_states() {
        let m = samples::flat_unreachable();
        let g = Gen::new(&m).expect("gen");
        let fns = g.state_functions().expect("emit");
        assert_eq!(fns.len(), 2 * m.metrics().states);
    }
}
