//! The State Pattern (§III.B): "each state is implemented as a whole
//! class".
//!
//! Reproduced structurally for a C-like target: every state gets a handler
//! function (its "class body") and a const `VTable` record of function
//! pointers (enter / exit / handle — the virtual interface). Regions carry
//! an array of vtables indexed by the state code, and dispatch is an
//! indirect call through the active state's vtable, exactly the dynamic
//! dispatch the C++ State Pattern pays for — which is why this pattern has
//! the largest code size in Table I.

use tlang::{Expr, Function, GlobalDef, Init, Module, Place, Stmt, StructDef, Type};
use umlsm::{RegionId, StateId, StateKind};

use crate::actions::{lower_expr, CTX};
use crate::common::{CallStyle, Gen};
use crate::CodegenError;

/// Each state is "a whole class": transition sequences are monomorphized
/// into the class's handler (inline), while the full virtual interface
/// (enter/exit/handle function-pointer records) is kept per state — the
/// per-class overhead that makes this the largest pattern in Table I.
const STYLE: CallStyle = CallStyle::Inline;

fn vtable_type() -> Type {
    Type::Struct("VTable".into())
}

fn vtables_name(gen: &Gen, rid: RegionId) -> String {
    format!("vt_{}", gen.region_field(rid))
}

fn handle_name(gen: &Gen, s: StateId) -> String {
    format!("handle_{}", crate::actions::sanitize(&gen.m.state(s).name))
}

pub(crate) fn emit(gen: &Gen) -> Result<Module, CodegenError> {
    let mut module = Module::new(format!("{}_state_pattern", gen.m.name()));
    let (ctx_def, ctx_global) = gen.ctx_items();
    module.push_struct(ctx_def);
    module.push_struct(StructDef {
        name: "VTable".into(),
        fields: vec![
            ("enter".into(), Type::fn_ptr(vec![], Type::Void)),
            ("exit".into(), Type::fn_ptr(vec![], Type::Void)),
            ("handle".into(), Type::fn_ptr(vec![Type::I32], Type::Bool)),
        ],
    });
    for e in gen.externs() {
        module.push_extern(e);
    }
    module.push_global(ctx_global);
    for f in gen.state_functions()? {
        module.push_function(f);
    }
    for (sid, _) in gen.m.states() {
        module.push_function(handler(gen, sid)?);
    }
    for (rid, _) in gen.m.regions() {
        let states = gen.m.states_in(rid);
        module.push_global(GlobalDef {
            name: vtables_name(gen, rid),
            ty: Type::Array(Box::new(vtable_type()), states.len()),
            init: Init::Array(
                states
                    .iter()
                    .map(|s| {
                        Init::Struct(vec![
                            Init::FnAddr(gen.enter_name(*s)),
                            Init::FnAddr(gen.exit_name(*s)),
                            Init::FnAddr(handle_name(gen, *s)),
                        ])
                    })
                    .collect(),
            ),
            mutable: false,
        });
    }
    for (rid, _) in gen.m.regions() {
        module.push_function(region_dispatch(gen, rid));
    }

    module.push_function(Function {
        name: "sm_step".into(),
        params: vec![("ev".into(), Type::I32)],
        ret: Type::Void,
        body: vec![Stmt::Expr(Expr::Call(
            format!("dispatch_{}", gen.region_field(gen.m.root())),
            vec![Expr::var("ev")],
        ))],
        exported: true,
    });
    module.push_function(gen.sm_init()?);
    module.push_function(gen.sm_state());
    Ok(module)
}

/// The virtual dispatcher of one region: an indirect call through the
/// active state's vtable. The active-state field is read straight from
/// the context in both the guard and the vtable index, like the naive
/// generated C++ it stands in for (`if (ctx.state < 0) …;
/// vt[ctx.state].handle(ev)`) — eliminating the re-read across the guard
/// block is the mid-end's job (cross-block store-to-load forwarding), not
/// the generator's.
fn region_dispatch(gen: &Gen, rid: RegionId) -> Function {
    let field = gen.region_field(rid).to_string();
    Function {
        name: format!("dispatch_{field}"),
        params: vec![("ev".into(), Type::I32)],
        ret: Type::Bool,
        body: vec![
            Stmt::If {
                cond: Expr::Place(Place::var(CTX).field(field.clone()))
                    .bin(tlang::BinOp::Lt, Expr::Int(0)),
                then_body: vec![Stmt::Return(Some(Expr::Bool(false)))],
                else_body: vec![],
            },
            Stmt::Return(Some(Expr::CallPtr(
                Box::new(Expr::Place(
                    Place::var(vtables_name(gen, rid))
                        .index(Expr::Place(Place::var(CTX).field(field)))
                        .field("handle"),
                )),
                vec![Expr::var("ev")],
            ))),
        ],
        exported: false,
    }
}

/// The per-state handler: the body of the state's "class". Composite
/// states first delegate to their nested region's dispatcher (innermost
/// first), then handle their own events. Transitions fire through the
/// vtables (indirect enter/exit), mirroring virtual calls.
fn handler(gen: &Gen, s: StateId) -> Result<Function, CodegenError> {
    let state = gen.m.state(s);
    let mut body = Vec::new();
    if let StateKind::Composite(sub) = state.kind {
        body.push(Stmt::If {
            cond: Expr::Call(
                format!("dispatch_{}", gen.region_field(sub)),
                vec![Expr::var("ev")],
            ),
            then_body: vec![Stmt::Return(Some(Expr::Bool(true)))],
            else_body: vec![],
        });
    }
    let groups = gen.transitions_by_event(s);
    if !groups.is_empty() {
        let mut cases = Vec::new();
        for (code, transitions) in groups {
            let mut case_body = Vec::new();
            for (_, t) in transitions {
                let mut fire = gen.fire_stmts(s, t, STYLE)?;
                fire.push(Stmt::Return(Some(Expr::Bool(true))));
                match &t.guard {
                    None => {
                        case_body.extend(fire);
                        break;
                    }
                    Some(g) if g.is_const_true() => {
                        case_body.extend(fire);
                        break;
                    }
                    Some(g) if g.is_const_false() => {}
                    Some(g) => case_body.push(Stmt::If {
                        cond: lower_expr(g)?,
                        then_body: fire,
                        else_body: vec![],
                    }),
                }
            }
            cases.push((code, case_body));
        }
        body.push(Stmt::Switch {
            scrutinee: Expr::var("ev"),
            cases,
            default: vec![],
        });
    }
    body.push(Stmt::Return(Some(Expr::Bool(false))));
    Ok(Function {
        name: handle_name(gen, s),
        params: vec![("ev".into(), Type::I32)],
        ret: Type::Bool,
        body,
        exported: false,
    })
}

#[cfg(test)]
mod tests {
    use crate::{generate, Pattern};
    use umlsm::samples;

    #[test]
    fn emits_vtables_and_handlers() {
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::StatePattern).expect("generates");
        let src = g.module.to_source();
        assert!(src.contains("struct VTable"));
        assert!(src.contains("const vt_state"));
        assert!(src.contains("fn handle_S1"));
        assert!(src.contains(".handle)"));
    }

    #[test]
    fn composite_handler_delegates_innermost_first() {
        let m = samples::hierarchical_never_active();
        let g = generate(&m, Pattern::StatePattern).expect("generates");
        let src = g.module.to_source();
        assert!(src.contains("fn handle_S3"));
        assert!(src.contains("dispatch_s3_state"));
        assert!(src.contains("vt_s3_state"));
    }

    #[test]
    fn every_state_has_a_vtable_entry() {
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::StatePattern).expect("generates");
        let src = g.module.to_source();
        // Even the unreachable S2: address-taken, so the compiler keeps it.
        assert!(src.contains("&handle_S2"));
    }
}
