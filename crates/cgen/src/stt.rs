//! The State Transition Table pattern (§III.B): "a 2 dimensions table
//! describing the relation between states and events", scanned by a small
//! generic engine.
//!
//! Per region the generator emits flattened `first`/`count` index tables
//! (state-major), parallel rule arrays (`target`, guard and effect function
//! pointers) and per-state enter/exit function-pointer tables. The engine is
//! shared logic but instantiated per region, so a removed composite removes
//! its whole table block *and* engine instance.
//!
//! Crucially for the paper's argument, every enter/exit/guard/effect
//! function is **address-taken** through these const tables: a compiler's
//! dead-function elimination must treat them all as live even when the
//! state they implement can never be reached.

use tlang::{Expr, Function, GlobalDef, Init, Module, Place, Stmt, Type};
use umlsm::{RegionId, StateKind, Trigger};

use crate::actions::{lower_actions, lower_expr, CTX};
use crate::common::Gen;
use crate::CodegenError;

pub(crate) fn emit(gen: &Gen) -> Result<Module, CodegenError> {
    let mut module = Module::new(format!("{}_stt", gen.m.name()));
    let (ctx_def, ctx_global) = gen.ctx_items();
    module.push_struct(ctx_def);
    for e in gen.externs() {
        module.push_extern(e);
    }
    module.push_global(ctx_global);
    for f in gen.state_functions()? {
        module.push_function(f);
    }

    // Shared trivial guard/effect used by table entries without their own.
    module.push_function(Function {
        name: "guard_true".into(),
        params: vec![],
        ret: Type::Bool,
        body: vec![Stmt::Return(Some(Expr::Bool(true)))],
        exported: false,
    });
    module.push_function(Function {
        name: "effect_none".into(),
        params: vec![],
        ret: Type::Void,
        body: vec![],
        exported: false,
    });

    for (rid, _) in gen.m.regions() {
        emit_region_tables(gen, rid, &mut module)?;
    }
    for (rid, _) in gen.m.regions() {
        module.push_function(region_engine(gen, rid)?);
    }

    // sm_step: bounds-check the event code, then run the root engine.
    let ne = gen.codes.event_count() as i64;
    module.push_function(Function {
        name: "sm_step".into(),
        params: vec![("ev".into(), Type::I32)],
        ret: Type::Void,
        body: vec![
            Stmt::If {
                cond: Expr::var("ev").bin(tlang::BinOp::Lt, Expr::Int(0)).bin(
                    tlang::BinOp::Or,
                    Expr::var("ev").bin(tlang::BinOp::Ge, Expr::Int(ne)),
                ),
                then_body: vec![Stmt::Return(None)],
                else_body: vec![],
            },
            Stmt::Expr(Expr::Call(
                format!("dispatch_{}", gen.region_field(gen.m.root())),
                vec![Expr::var("ev")],
            )),
        ],
        exported: true,
    });
    module.push_function(gen.sm_init()?);
    module.push_function(gen.sm_state());
    Ok(module)
}

/// One rule of a region's transition table.
struct Rule {
    target_code: i64,
    guard_fn: String,
    effect_fn: String,
}

fn emit_region_tables(gen: &Gen, rid: RegionId, module: &mut Module) -> Result<(), CodegenError> {
    let field = gen.region_field(rid).to_string();
    let states = gen.m.states_in(rid);
    let ns = states.len();
    let ne = gen.codes.event_count();

    let mut first = vec![-1i64; ns * ne];
    let mut count = vec![0i64; ns * ne];
    let mut rules: Vec<Rule> = Vec::new();

    for s in &states {
        let s_code = gen.state_code(*s) as usize;
        for (code, transitions) in gen.transitions_by_event(*s) {
            let cell = s_code * ne + code as usize;
            first[cell] = rules.len() as i64;
            let mut n = 0i64;
            for (tid, t) in transitions {
                let Trigger::Event(_) = t.trigger else {
                    continue;
                };
                if t.guard.as_ref().is_some_and(|g| g.is_const_false()) {
                    continue; // statically dead rule: the table never lists it
                }
                let guard_fn = match &t.guard {
                    None => "guard_true".to_string(),
                    Some(g) if g.is_const_true() => "guard_true".to_string(),
                    Some(g) => {
                        let name = format!("guard_{tid}");
                        module.push_function(Function {
                            name: name.clone(),
                            params: vec![],
                            ret: Type::Bool,
                            body: vec![Stmt::Return(Some(lower_expr(g)?))],
                            exported: false,
                        });
                        name
                    }
                };
                let effect_fn = if t.effect.is_empty() {
                    "effect_none".to_string()
                } else {
                    let name = format!("effect_{tid}");
                    module.push_function(Function {
                        name: name.clone(),
                        params: vec![],
                        ret: Type::Void,
                        body: lower_actions(&t.effect, &gen.codes)?,
                        exported: false,
                    });
                    name
                };
                rules.push(Rule {
                    target_code: gen.state_code(t.target),
                    guard_fn,
                    effect_fn,
                });
                n += 1;
            }
            count[cell] = n;
        }
    }

    let int_array = |name: &str, data: &[i64]| GlobalDef {
        name: name.to_string(),
        ty: Type::Array(Box::new(Type::I32), data.len()),
        init: Init::Array(data.iter().map(|v| Init::Int(*v)).collect()),
        mutable: false,
    };
    module.push_global(int_array(&format!("t_{field}_first"), &first));
    module.push_global(int_array(&format!("t_{field}_count"), &count));
    module.push_global(int_array(
        &format!("t_{field}_target"),
        &rules.iter().map(|r| r.target_code).collect::<Vec<_>>(),
    ));
    module.push_global(GlobalDef {
        name: format!("t_{field}_guard"),
        ty: Type::Array(Box::new(Type::fn_ptr(vec![], Type::Bool)), rules.len()),
        init: Init::Array(
            rules
                .iter()
                .map(|r| Init::FnAddr(r.guard_fn.clone()))
                .collect(),
        ),
        mutable: false,
    });
    module.push_global(GlobalDef {
        name: format!("t_{field}_effect"),
        ty: Type::Array(Box::new(Type::fn_ptr(vec![], Type::Void)), rules.len()),
        init: Init::Array(
            rules
                .iter()
                .map(|r| Init::FnAddr(r.effect_fn.clone()))
                .collect(),
        ),
        mutable: false,
    });
    // Enter/exit dispatch tables: the address-taken closure of every state's
    // implementation.
    module.push_global(GlobalDef {
        name: format!("t_{field}_enter"),
        ty: Type::Array(Box::new(Type::fn_ptr(vec![], Type::Void)), ns),
        init: Init::Array(
            states
                .iter()
                .map(|s| Init::FnAddr(gen.enter_name(*s)))
                .collect(),
        ),
        mutable: false,
    });
    module.push_global(GlobalDef {
        name: format!("t_{field}_exit"),
        ty: Type::Array(Box::new(Type::fn_ptr(vec![], Type::Void)), ns),
        init: Init::Array(
            states
                .iter()
                .map(|s| Init::FnAddr(gen.exit_name(*s)))
                .collect(),
        ),
        mutable: false,
    });
    Ok(())
}

/// The table-scanning engine of one region.
fn region_engine(gen: &Gen, rid: RegionId) -> Result<Function, CodegenError> {
    let field = gen.region_field(rid).to_string();
    let ne = gen.codes.event_count() as i64;
    let states = gen.m.states_in(rid);

    let mut body = vec![
        Stmt::Let {
            name: "s".into(),
            ty: Type::I32,
            init: Some(Expr::Place(Place::var(CTX).field(field.clone()))),
        },
        Stmt::If {
            cond: Expr::var("s").bin(tlang::BinOp::Lt, Expr::Int(0)),
            then_body: vec![Stmt::Return(Some(Expr::Bool(false)))],
            else_body: vec![],
        },
    ];
    // Innermost-first: active composite substates dispatch into their own
    // region engine before this one.
    let composite_cases: Vec<(i64, Vec<Stmt>)> = states
        .iter()
        .filter_map(|s| match gen.m.state(*s).kind {
            StateKind::Composite(sub) => Some((
                gen.state_code(*s),
                vec![Stmt::If {
                    cond: Expr::Call(
                        format!("dispatch_{}", gen.region_field(sub)),
                        vec![Expr::var("ev")],
                    ),
                    then_body: vec![Stmt::Return(Some(Expr::Bool(true)))],
                    else_body: vec![],
                }],
            )),
            _ => None,
        })
        .collect();
    if !composite_cases.is_empty() {
        body.push(Stmt::Switch {
            scrutinee: Expr::var("s"),
            cases: composite_cases,
            default: vec![],
        });
    }

    let idx = |name: &str, e: Expr| Expr::Place(Place::var(format!("t_{field}_{name}")).index(e));
    body.extend([
        Stmt::Let {
            name: "base".into(),
            ty: Type::I32,
            init: Some(
                Expr::var("s")
                    .bin(tlang::BinOp::Mul, Expr::Int(ne))
                    .add(Expr::var("ev")),
            ),
        },
        Stmt::Let {
            name: "head".into(),
            ty: Type::I32,
            init: Some(idx("first", Expr::var("base"))),
        },
        Stmt::Let {
            name: "k".into(),
            ty: Type::I32,
            init: Some(Expr::Int(0)),
        },
        // The rule count is indexed straight out of the table in the
        // loop condition, like the naive generated C++ the paper
        // compiles: the table is const and `base` is loop-invariant, so
        // a memory-aware compiler (occ's load-hoisting LICM) lifts the
        // load out of the loop — hand-caching it in a local here would
        // only hide the optimization the experiment measures.
        Stmt::While {
            cond: Expr::var("k").bin(tlang::BinOp::Lt, idx("count", Expr::var("base"))),
            body: vec![
                Stmt::If {
                    cond: Expr::CallPtr(
                        Box::new(idx("guard", Expr::var("head").add(Expr::var("k")))),
                        vec![],
                    ),
                    then_body: vec![
                        Stmt::Expr(Expr::CallPtr(Box::new(idx("exit", Expr::var("s"))), vec![])),
                        Stmt::Expr(Expr::CallPtr(
                            Box::new(idx("effect", Expr::var("head").add(Expr::var("k")))),
                            vec![],
                        )),
                        Stmt::Expr(Expr::CallPtr(
                            Box::new(idx(
                                "enter",
                                idx("target", Expr::var("head").add(Expr::var("k"))),
                            )),
                            vec![],
                        )),
                        Stmt::Return(Some(Expr::Bool(true))),
                    ],
                    else_body: vec![],
                },
                Stmt::Assign {
                    place: Place::var("k"),
                    value: Expr::var("k").add(Expr::Int(1)),
                },
            ],
        },
        Stmt::Return(Some(Expr::Bool(false))),
    ]);

    Ok(Function {
        name: format!("dispatch_{field}"),
        params: vec![("ev".into(), Type::I32)],
        ret: Type::Bool,
        body,
        exported: false,
    })
}

#[cfg(test)]
mod tests {
    use crate::{generate, Pattern};
    use umlsm::samples;

    #[test]
    fn emits_tables_and_engine() {
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::StateTable).expect("generates");
        let src = g.module.to_source();
        assert!(src.contains("const t_state_first"));
        assert!(src.contains("const t_state_enter"));
        assert!(src.contains("fn dispatch_state"));
        assert!(src.contains("while "));
    }

    #[test]
    fn composite_region_gets_own_table_block() {
        let m = samples::hierarchical_never_active();
        let g = generate(&m, Pattern::StateTable).expect("generates");
        let src = g.module.to_source();
        assert!(src.contains("t_s3_state_first"), "{src}");
        assert!(src.contains("fn dispatch_s3_state"));
    }

    #[test]
    fn dead_state_functions_are_address_taken() {
        // S2's enter/exit appear in the const tables even though S2 is
        // unreachable: the compiler must keep them (paper §III.C).
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::StateTable).expect("generates");
        let src = g.module.to_source();
        assert!(src.contains("&enter_S2"));
        assert!(src.contains("&exit_S2"));
    }
}
