//! Executing generated programs against the model: the end-to-end
//! behaviour-preservation harness.
//!
//! A generated program must be observationally equivalent to the model
//! interpreter: driving `sm_step` with the same event sequence must produce
//! the same sequence of emissions. This module runs the generated module on
//! the [`tlang`] reference interpreter and decodes the `env_emit` trace
//! back to signal names.

use tlang::{ExecError, Interpreter, RecordingEnv, Value};

use crate::Generated;

/// The observable result of running a generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedRun {
    /// Decoded `(signal name, argument)` emissions in order.
    pub observable: Vec<(String, i64)>,
    /// Final root-region state code (`sm_state()`).
    pub final_state: i32,
}

/// Runs `sm_init` followed by `sm_step` for each event name.
///
/// Event names unknown to the generated program are skipped: the model
/// discards them without observable effect, so equivalence is preserved by
/// not delivering them at all.
///
/// # Errors
///
/// Propagates interpreter failures (these indicate a generator bug — the
/// module type-checks by construction).
pub fn run_generated(generated: &Generated, events: &[&str]) -> Result<GeneratedRun, ExecError> {
    let mut interp = Interpreter::new(&generated.module, RecordingEnv::new());
    interp.call("sm_init", &[])?;
    for name in events {
        if let Some(code) = generated.codes.event_code(name) {
            interp.call("sm_step", &[Value::Int(code as i32)])?;
        }
    }
    let final_state = match interp.call("sm_state", &[])? {
        Some(Value::Int(v)) => v,
        _ => -1,
    };
    let env = interp.into_env();
    let observable = env
        .calls
        .iter()
        .filter(|(name, _)| name == "env_emit")
        .map(|(_, args)| {
            let code = i64::from(*args.first().unwrap_or(&0));
            let arg = i64::from(*args.get(1).unwrap_or(&0));
            let signal = generated
                .codes
                .signal_name(code)
                .unwrap_or("<unknown>")
                .to_string();
            (signal, arg)
        })
        .collect();
    Ok(GeneratedRun {
        observable,
        final_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Pattern};
    use umlsm::{samples, Interp};

    /// The flagship differential test: model interpreter vs generated code,
    /// all patterns, several event sequences.
    fn assert_equivalent(machine: &umlsm::StateMachine, events: &[&str]) {
        let mut model = Interp::new(machine).expect("model starts");
        for e in events {
            model.step_by_name(e).expect("model steps");
        }
        let expected = model.trace().observable();
        for pattern in Pattern::all() {
            let g = generate(machine, pattern).expect("generates");
            g.module.check().expect("type-checks");
            let run = run_generated(&g, events).expect("executes");
            assert_eq!(
                run.observable,
                expected,
                "{} / {pattern} diverges on {events:?}",
                machine.name()
            );
        }
    }

    #[test]
    fn flat_machine_equivalent_on_terminating_run() {
        let m = samples::flat_unreachable();
        assert_equivalent(&m, &["e1", "e2", "e1", "e3"]);
    }

    #[test]
    fn flat_machine_equivalent_with_discards() {
        let m = samples::flat_unreachable();
        assert_equivalent(&m, &["e2", "e2", "e1", "e1", "e3", "e1"]);
    }

    #[test]
    fn hierarchical_machine_equivalent() {
        let m = samples::hierarchical_never_active();
        assert_equivalent(&m, &["e1", "e2", "e3", "e4", "e1"]);
        assert_equivalent(&m, &["e2", "e4", "e1", "e1", "e2"]);
    }

    #[test]
    fn cruise_control_equivalent_through_composite() {
        let mut m = samples::cruise_control();
        m.set_variable("speed", 60);
        assert_equivalent(
            &m,
            &[
                "power", "set", "accel", "set", "accel", "brake", "resume", "power",
            ],
        );
    }

    #[test]
    fn protocol_handler_equivalent_full_session() {
        let m = samples::protocol_handler();
        assert_equivalent(
            &m,
            &[
                "open",
                "ack",
                "data",
                "data",
                "close",
                "downgrade",
                "ack",
                "open",
            ],
        );
    }

    #[test]
    fn optimized_model_generates_equivalent_code() {
        // Two-step sanity: optimize the model, generate, and compare against
        // the *original* model's behaviour.
        let m = samples::hierarchical_never_active();
        let opt = {
            let mut c = m.clone();
            let s3 = c.state_by_name("S3").expect("S3");
            c.remove_state(s3);
            c
        };
        let events = ["e1", "e2", "e1", "e2", "e3"];
        let mut model = Interp::new(&m).expect("model starts");
        for e in events {
            model.step_by_name(e).expect("model steps");
        }
        let expected = model.trace().observable();
        for pattern in Pattern::all() {
            let g = generate(&opt, pattern).expect("generates");
            let run = run_generated(&g, &events).expect("executes");
            assert_eq!(run.observable, expected, "{pattern}");
        }
    }

    #[test]
    fn final_state_reported() {
        let m = samples::flat_unreachable();
        let g = generate(&m, Pattern::NestedSwitch).expect("generates");
        let run = run_generated(&g, &["e1", "e3"]).expect("executes");
        let fin = m.state_by_name("Final").expect("Final");
        assert_eq!(
            i64::from(run.final_state),
            g.codes.state_code(fin).expect("code")
        );
    }
}
