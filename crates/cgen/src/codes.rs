//! Numbering of events, signals and states used by generated code.
//!
//! The numbering is deterministic (sorted names / id order) so that two
//! generations of the same model produce identical programs, and so the
//! experiment harness can translate between model-level names and the
//! integer codes the compiled program exchanges with its environment.

use std::collections::BTreeMap;

use umlsm::{RegionId, StateId, StateMachine};

/// Code assignments for one generated program.
#[derive(Debug, Clone, Default)]
pub struct CodeMap {
    events: Vec<String>,
    signals: Vec<String>,
    state_codes: BTreeMap<StateId, i64>,
    state_names: BTreeMap<StateId, String>,
    regions: Vec<RegionId>,
}

impl CodeMap {
    pub(crate) fn build(machine: &StateMachine) -> CodeMap {
        let mut events: Vec<String> = machine.events().map(|(_, e)| e.name.clone()).collect();
        events.sort();
        let signals: Vec<String> = machine.emitted_signals().into_iter().collect();
        let mut state_codes = BTreeMap::new();
        let mut state_names = BTreeMap::new();
        let mut regions = Vec::new();
        for (rid, _) in machine.regions() {
            regions.push(rid);
            for (code, sid) in machine.states_in(rid).into_iter().enumerate() {
                state_codes.insert(sid, code as i64);
                state_names.insert(sid, machine.state(sid).name.clone());
            }
        }
        CodeMap {
            events,
            signals,
            state_codes,
            state_names,
            regions,
        }
    }

    /// Number of event codes.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Event names in code order.
    pub fn event_names(&self) -> &[String] {
        &self.events
    }

    /// Signal names in code order.
    pub fn signal_names(&self) -> &[String] {
        &self.signals
    }

    /// The integer code of an event name, if the machine declares it.
    pub fn event_code(&self, name: &str) -> Option<i64> {
        self.events.iter().position(|e| e == name).map(|i| i as i64)
    }

    /// The integer code of a signal name, if any action emits it.
    pub fn signal_code(&self, name: &str) -> Option<i64> {
        self.signals
            .iter()
            .position(|s| s == name)
            .map(|i| i as i64)
    }

    /// The signal name for a code (used to decode `env_emit` traces).
    pub fn signal_name(&self, code: i64) -> Option<&str> {
        usize::try_from(code)
            .ok()
            .and_then(|i| self.signals.get(i))
            .map(String::as_str)
    }

    /// The per-region state code of a state (its position within its
    /// region).
    pub fn state_code(&self, state: StateId) -> Option<i64> {
        self.state_codes.get(&state).copied()
    }

    /// The state name for an id captured at generation time.
    pub fn state_name(&self, state: StateId) -> Option<&str> {
        self.state_names.get(&state).map(String::as_str)
    }

    /// All regions of the generated machine, root first.
    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::samples;

    #[test]
    fn event_codes_are_sorted_names() {
        let m = samples::flat_unreachable();
        let c = CodeMap::build(&m);
        assert_eq!(c.event_names(), &["e1", "e2", "e3"]);
        assert_eq!(c.event_code("e2"), Some(1));
        assert_eq!(c.event_code("zzz"), None);
    }

    #[test]
    fn signal_codes_round_trip() {
        let m = samples::flat_unreachable();
        let c = CodeMap::build(&m);
        let code = c.signal_code("s1_active").expect("signal exists");
        assert_eq!(c.signal_name(code), Some("s1_active"));
    }

    #[test]
    fn state_codes_are_region_local() {
        let m = samples::hierarchical_never_active();
        let c = CodeMap::build(&m);
        // Root region: S1 S2 S3 Final -> codes 0..3 in id order.
        let s1 = m.state_by_name("S1").expect("S1");
        let s3i = m.state_by_name("S3_Init").expect("S3_Init");
        assert_eq!(c.state_code(s1), Some(0));
        // Nested region restarts numbering at 0.
        assert_eq!(c.state_code(s3i), Some(0));
    }

    #[test]
    fn deterministic_across_builds() {
        let m = samples::protocol_handler();
        let a = CodeMap::build(&m);
        let b = CodeMap::build(&m);
        assert_eq!(a.event_names(), b.event_names());
        assert_eq!(a.signal_names(), b.signal_names());
    }
}
