//! `cgen` — code generation from UML state machines.
//!
//! Implements the three implementation patterns of §III.B of the paper:
//!
//! * **Nested Switch Case** ([`Pattern::NestedSwitch`]) — "an outer case
//!   statement that selects the current state and an inner case statement
//!   that selects the appropriate behavior given the type of the received
//!   event"; the most commonly used pattern.
//! * **State Transition Table** ([`Pattern::StateTable`]) — "a 2 dimensions
//!   table describing the relation between states and events", scanned by a
//!   small generic engine; data-heavy, code-light.
//! * **State Pattern** ([`Pattern::StatePattern`]) — "each state is
//!   implemented as a whole class"; reproduced as per-state handler
//!   functions plus a per-state table of function pointers (the moral
//!   vtable), dispatched through indirect calls.
//!
//! Every pattern emits the same runtime interface (the paper fixes the
//! execution semantics before generating code):
//!
//! * `sm_init()` — resets the context and enters the initial configuration,
//! * `sm_step(ev: i32)` — dispatches one event occurrence and runs the
//!   run-to-completion step (completion transitions chained eagerly),
//! * `sm_state() -> i32` — the active root-region state code (debugging),
//! * observable behaviour is reported through the `env_emit(signal, arg)`
//!   extern.
//!
//! Composite states map to a dedicated implementation unit (their own
//! enter/exit/dispatch functions, table block or handler set). When the
//! model optimizer removes a composite state, that entire unit vanishes
//! from the generated program — "when we optimize the model, the whole
//! class is removed".
//!
//! # Example
//!
//! ```
//! use cgen::{generate, Pattern};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = umlsm::samples::flat_unreachable();
//! let generated = generate(&machine, Pattern::NestedSwitch)?;
//! generated.module.check()?;
//! assert!(generated.module.to_source().contains("fn sm_step"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod codes;
mod common;
mod exec;
mod nested_switch;
mod state_pattern;
mod stt;

use std::fmt;

use umlsm::StateMachine;

pub use codes::CodeMap;
pub use exec::{run_generated, GeneratedRun};

/// The implementation pattern to generate (§III.B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pattern {
    /// Nested switch-case statements (the paper's default).
    NestedSwitch,
    /// State transition table + generic engine.
    StateTable,
    /// State Pattern: per-state handlers behind function-pointer tables.
    StatePattern,
}

impl Pattern {
    /// All patterns, in the paper's Table I row order.
    pub fn all() -> [Pattern; 3] {
        [
            Pattern::StateTable,
            Pattern::NestedSwitch,
            Pattern::StatePattern,
        ]
    }

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::NestedSwitch => "Nested Switch",
            Pattern::StateTable => "STT",
            Pattern::StatePattern => "State Pattern",
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A code-generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The model failed validation.
    InvalidModel(String),
    /// The machine's semantics are outside what the generators implement
    /// (the paper fixes completion-priority, innermost-first semantics
    /// before generating).
    UnsupportedSemantics(String),
    /// A chain of always-firing completion transitions forms a cycle; the
    /// generated code would recurse forever.
    CompletionCycle(String),
    /// A model constant does not fit the target's 32-bit integers.
    ConstantOutOfRange(i64),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            CodegenError::UnsupportedSemantics(msg) => {
                write!(f, "unsupported semantics: {msg}")
            }
            CodegenError::CompletionCycle(state) => {
                write!(f, "completion-transition cycle through `{state}`")
            }
            CodegenError::ConstantOutOfRange(v) => {
                write!(f, "constant {v} does not fit the target i32")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// A generated program plus the code maps needed to drive it.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The generated compilation unit.
    pub module: tlang::Module,
    /// Event/signal/state numbering used by the program.
    pub codes: CodeMap,
    /// The pattern that was generated.
    pub pattern: Pattern,
}

/// Generates code for `machine` using `pattern`.
///
/// # Errors
///
/// Fails if the model is invalid, uses semantics outside the generated
/// subset (completion-priority + innermost-first), contains an
/// unconditional completion cycle, or uses constants beyond `i32`.
pub fn generate(machine: &StateMachine, pattern: Pattern) -> Result<Generated, CodegenError> {
    machine
        .validate()
        .map_err(|e| CodegenError::InvalidModel(e.to_string()))?;
    let sem = machine.semantics();
    if !sem.completion_priority {
        return Err(CodegenError::UnsupportedSemantics(
            "generators implement the paper's completion-priority semantics".into(),
        ));
    }
    if sem.conflict != umlsm::ConflictResolution::InnermostFirst {
        return Err(CodegenError::UnsupportedSemantics(
            "generators implement innermost-first conflict resolution".into(),
        ));
    }
    let gen = common::Gen::new(machine)?;
    let module = match pattern {
        Pattern::NestedSwitch => nested_switch::emit(&gen)?,
        Pattern::StateTable => stt::emit(&gen)?,
        Pattern::StatePattern => state_pattern::emit(&gen)?,
    };
    Ok(Generated {
        module,
        codes: gen.into_codes(),
        pattern,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use umlsm::samples;

    #[test]
    fn all_patterns_generate_checkable_modules_for_all_samples() {
        let machines = [
            samples::flat_unreachable(),
            samples::hierarchical_never_active(),
            samples::flat_with_unreachable(3),
            samples::cruise_control(),
            samples::protocol_handler(),
        ];
        for m in &machines {
            for p in Pattern::all() {
                let g = generate(m, p).unwrap_or_else(|e| panic!("{} / {p}: {e}", m.name()));
                g.module
                    .check()
                    .unwrap_or_else(|e| panic!("{} / {p}: type error {e}", m.name()));
            }
        }
    }

    #[test]
    fn fallback_semantics_rejected() {
        let mut m = samples::flat_unreachable();
        m.set_semantics(umlsm::Semantics::completion_as_fallback());
        assert!(matches!(
            generate(&m, Pattern::NestedSwitch),
            Err(CodegenError::UnsupportedSemantics(_))
        ));
    }

    #[test]
    fn pattern_labels_match_table1() {
        assert_eq!(Pattern::StateTable.label(), "STT");
        assert_eq!(Pattern::NestedSwitch.label(), "Nested Switch");
        assert_eq!(Pattern::StatePattern.label(), "State Pattern");
    }
}
