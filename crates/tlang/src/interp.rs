//! Reference interpreter for modules: the compiler-correctness oracle.
//!
//! `occ` (the optimizing compiler) is validated by differential testing:
//! a compiled program executed on the EM32 VM must produce exactly the
//! environment-call trace this interpreter produces for the same source and
//! inputs. The interpreter is deliberately simple and close to the language
//! definition.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{BinOp, Expr, Function, Init, Module, Place, Stmt, Type, UnOp};

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// 32-bit integer.
    Int(i32),
    /// Boolean.
    Bool(bool),
    /// Function pointer (by name; the checker guarantees it exists).
    Fn(String),
    /// Array value.
    Array(Vec<Value>),
    /// Struct value (fields in definition order).
    Struct(Vec<Value>),
}

impl Value {
    fn as_int(&self) -> Result<i32, ExecError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(ExecError::TypeConfusion(format!(
                "expected int, found {other:?}"
            ))),
        }
    }

    fn as_bool(&self) -> Result<bool, ExecError> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(ExecError::TypeConfusion(format!(
                "expected bool, found {other:?}"
            ))),
        }
    }
}

/// The host environment: receives extern calls (`env_emit`, ...).
pub trait Env {
    /// Handles one extern call; returns the call's result value (ignored
    /// for void externs — return `Value::Int(0)`).
    ///
    /// # Errors
    ///
    /// Returns a message when the host rejects the call; execution aborts
    /// with [`ExecError::Host`].
    fn call_extern(&mut self, name: &str, args: &[Value]) -> Result<Value, String>;
}

/// An [`Env`] that records every extern call — the observable trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingEnv {
    /// `(extern name, integer arguments)` in call order.
    pub calls: Vec<(String, Vec<i32>)>,
}

impl RecordingEnv {
    /// Creates an empty recorder.
    pub fn new() -> RecordingEnv {
        RecordingEnv::default()
    }

    /// The recorded trace restricted to one extern name.
    pub fn calls_to(&self, name: &str) -> Vec<&[i32]> {
        self.calls
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, a)| a.as_slice())
            .collect()
    }
}

impl Env for RecordingEnv {
    fn call_extern(&mut self, name: &str, args: &[Value]) -> Result<Value, String> {
        let ints: Result<Vec<i32>, String> = args
            .iter()
            .map(|v| match v {
                Value::Int(i) => Ok(*i),
                Value::Bool(b) => Ok(i32::from(*b)),
                other => Err(format!("non-scalar extern argument {other:?}")),
            })
            .collect();
        self.calls.push((name.to_string(), ints?));
        Ok(Value::Int(0))
    }
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Call of an unknown function.
    UnknownFunction(String),
    /// Read of an unknown variable (checker bypassed).
    UnknownVariable(String),
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Index used.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Value used at the wrong type (checker bypassed).
    TypeConfusion(String),
    /// The step budget was exhausted (runaway loop).
    OutOfFuel,
    /// The host environment rejected an extern call.
    Host(String),
    /// A non-void function returned no value (checker bypassed).
    MissingValue(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::UnknownVariable(n) => write!(f, "unknown variable `{n}`"),
            ExecError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
            ExecError::TypeConfusion(msg) => write!(f, "type confusion: {msg}"),
            ExecError::OutOfFuel => write!(f, "execution step budget exhausted"),
            ExecError::Host(msg) => write!(f, "host rejected extern call: {msg}"),
            ExecError::MissingValue(n) => write!(f, "function `{n}` returned no value"),
        }
    }
}

impl std::error::Error for ExecError {}

enum Flow {
    Normal,
    Break,
    Return(Option<Value>),
}

/// An executing module instance. Globals persist across calls, so a state
/// machine's context survives between `sm_step` invocations exactly as it
/// does in the compiled program.
pub struct Interpreter<'m, E> {
    module: &'m Module,
    globals: BTreeMap<String, Value>,
    env: E,
    fuel: u64,
}

impl<'m, E: Env> Interpreter<'m, E> {
    /// Creates an instance with initialized globals and a step budget of
    /// 10 million statements.
    pub fn new(module: &'m Module, env: E) -> Interpreter<'m, E> {
        let mut globals = BTreeMap::new();
        for g in &module.globals {
            globals.insert(g.name.clone(), value_of_init(module, &g.ty, &g.init));
        }
        Interpreter {
            module,
            globals,
            env,
            fuel: 10_000_000,
        }
    }

    /// Overrides the step budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The host environment (e.g. to read a recorded trace).
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Consumes the interpreter, returning the host environment.
    pub fn into_env(self) -> E {
        self.env
    }

    /// Reads a global's current value.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Calls a function by name with scalar arguments.
    ///
    /// # Errors
    ///
    /// Fails on unknown functions, out-of-fuel, host rejection, or — for
    /// unchecked modules — dynamic type errors.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let func = self
            .module
            .function(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?
            .clone();
        self.call_function(&func, args)
    }

    fn call_function(
        &mut self,
        func: &Function,
        args: &[Value],
    ) -> Result<Option<Value>, ExecError> {
        let mut locals: BTreeMap<String, Value> = BTreeMap::new();
        for ((pname, _), arg) in func.params.iter().zip(args) {
            locals.insert(pname.clone(), arg.clone());
        }
        match self.exec_block(&func.body, &mut locals)? {
            Flow::Return(v) => Ok(v),
            _ if func.ret == Type::Void => Ok(None),
            _ => Err(ExecError::MissingValue(func.name.clone())),
        }
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        locals: &mut BTreeMap<String, Value>,
    ) -> Result<Flow, ExecError> {
        for stmt in body {
            match self.exec_stmt(stmt, locals)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn burn(&mut self) -> Result<(), ExecError> {
        if self.fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        locals: &mut BTreeMap<String, Value>,
    ) -> Result<Flow, ExecError> {
        self.burn()?;
        match stmt {
            Stmt::Let { name, ty, init } => {
                let value = match init {
                    Some(e) => self.eval(e, locals)?,
                    None => default_value(self.module, ty),
                };
                locals.insert(name.clone(), value);
                Ok(Flow::Normal)
            }
            Stmt::Assign { place, value } => {
                let v = self.eval(value, locals)?;
                self.store(place, v, locals)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval(cond, locals)?.as_bool()? {
                    self.exec_block(then_body, locals)
                } else {
                    self.exec_block(else_body, locals)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    self.burn()?;
                    if !self.eval(cond, locals)?.as_bool()? {
                        break;
                    }
                    match self.exec_block(body, locals)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let v = i64::from(self.eval(scrutinee, locals)?.as_int()?);
                let body = cases
                    .iter()
                    .find(|(c, _)| *c == v)
                    .map(|(_, b)| b)
                    .unwrap_or(default);
                self.exec_block(body, locals)
            }
            Stmt::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e, locals)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr(e) => {
                self.eval(e, locals)?;
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
        }
    }

    fn eval(
        &mut self,
        expr: &Expr,
        locals: &mut BTreeMap<String, Value>,
    ) -> Result<Value, ExecError> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v as i32)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Place(p) => self.load(p, locals),
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, locals)?;
                match op {
                    UnOp::Neg => Ok(Value::Int(v.as_int()?.wrapping_neg())),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let l = self.eval(lhs, locals)?;
                let r = self.eval(rhs, locals)?;
                eval_binop(*op, &l, &r)
            }
            Expr::Call(name, args) => {
                let argv: Result<Vec<Value>, ExecError> =
                    args.iter().map(|a| self.eval(a, locals)).collect();
                let argv = argv?;
                if self.module.function(name).is_some() {
                    let func = self.module.function(name).expect("checked").clone();
                    Ok(self.call_function(&func, &argv)?.unwrap_or(Value::Int(0)))
                } else if self.module.extern_decl(name).is_some() {
                    self.env.call_extern(name, &argv).map_err(ExecError::Host)
                } else {
                    Err(ExecError::UnknownFunction(name.clone()))
                }
            }
            Expr::CallPtr(callee, args) => {
                let target = self.eval(callee, locals)?;
                let Value::Fn(name) = target else {
                    return Err(ExecError::TypeConfusion(format!(
                        "indirect call through non-function {target:?}"
                    )));
                };
                let argv: Result<Vec<Value>, ExecError> =
                    args.iter().map(|a| self.eval(a, locals)).collect();
                let func = self
                    .module
                    .function(&name)
                    .ok_or(ExecError::UnknownFunction(name))?
                    .clone();
                Ok(self.call_function(&func, &argv?)?.unwrap_or(Value::Int(0)))
            }
            Expr::FnAddr(name) => Ok(Value::Fn(name.clone())),
        }
    }

    fn load(
        &mut self,
        place: &Place,
        locals: &mut BTreeMap<String, Value>,
    ) -> Result<Value, ExecError> {
        match place {
            Place::Var(name) => {
                if let Some(v) = locals.get(name) {
                    return Ok(v.clone());
                }
                self.globals
                    .get(name)
                    .cloned()
                    .ok_or_else(|| ExecError::UnknownVariable(name.clone()))
            }
            Place::Field(base, field) => {
                let bv = self.load(base, locals)?;
                let idx = self.field_index(base, field, locals)?;
                match bv {
                    Value::Struct(fields) => fields
                        .get(idx)
                        .cloned()
                        .ok_or_else(|| ExecError::TypeConfusion("bad field index".into())),
                    other => Err(ExecError::TypeConfusion(format!(
                        "field access on {other:?}"
                    ))),
                }
            }
            Place::Index(base, index) => {
                let i = i64::from(self.eval(index, locals)?.as_int()?);
                let bv = self.load(base, locals)?;
                match bv {
                    Value::Array(items) => {
                        let len = items.len();
                        usize::try_from(i)
                            .ok()
                            .and_then(|i| items.into_iter().nth(i))
                            .ok_or(ExecError::IndexOutOfBounds { index: i, len })
                    }
                    other => Err(ExecError::TypeConfusion(format!("indexing {other:?}"))),
                }
            }
        }
    }

    /// Resolves a field name to its index using the static type of `base`.
    fn field_index(
        &mut self,
        base: &Place,
        field: &str,
        locals: &BTreeMap<String, Value>,
    ) -> Result<usize, ExecError> {
        let ty = self.static_type_of_place(base, locals)?;
        let Type::Struct(name) = ty else {
            return Err(ExecError::TypeConfusion(format!(
                "field `.{field}` on non-struct"
            )));
        };
        let def = self
            .module
            .struct_def(&name)
            .ok_or_else(|| ExecError::UnknownVariable(name.clone()))?;
        def.field(field)
            .map(|(i, _)| i)
            .ok_or_else(|| ExecError::UnknownVariable(format!("{name}.{field}")))
    }

    fn static_type_of_place(
        &self,
        place: &Place,
        locals: &BTreeMap<String, Value>,
    ) -> Result<Type, ExecError> {
        match place {
            Place::Var(name) => {
                if locals.contains_key(name) {
                    // Locals are scalars; fields are never accessed on them,
                    // but we still need a type: reconstruct from the value.
                    return Ok(match locals[name] {
                        Value::Int(_) => Type::I32,
                        Value::Bool(_) => Type::Bool,
                        Value::Fn(_) => Type::fn_ptr(vec![], Type::Void),
                        _ => Type::I32,
                    });
                }
                self.module
                    .global(name)
                    .map(|g| g.ty.clone())
                    .ok_or_else(|| ExecError::UnknownVariable(name.clone()))
            }
            Place::Field(base, field) => {
                let bt = self.static_type_of_place(base, locals)?;
                let Type::Struct(name) = bt else {
                    return Err(ExecError::TypeConfusion("field on non-struct".into()));
                };
                let def = self
                    .module
                    .struct_def(&name)
                    .ok_or(ExecError::UnknownVariable(name))?;
                def.field(field)
                    .map(|(_, t)| t.clone())
                    .ok_or_else(|| ExecError::UnknownVariable(field.to_string()))
            }
            Place::Index(base, _) => {
                let bt = self.static_type_of_place(base, locals)?;
                match bt {
                    Type::Array(elem, _) => Ok(*elem),
                    _ => Err(ExecError::TypeConfusion("index on non-array".into())),
                }
            }
        }
    }

    fn store(
        &mut self,
        place: &Place,
        value: Value,
        locals: &mut BTreeMap<String, Value>,
    ) -> Result<(), ExecError> {
        // Resolve the chain of accessors into a mutable slot.
        enum Step {
            Field(usize),
            Index(usize),
        }
        let mut steps = Vec::new();
        let mut cursor = place;
        loop {
            match cursor {
                Place::Var(_) => break,
                Place::Field(base, field) => {
                    let idx = self.field_index(base, field, locals)?;
                    steps.push(Step::Field(idx));
                    cursor = base;
                }
                Place::Index(base, index) => {
                    let i = i64::from(self.eval(index, locals)?.as_int()?);
                    let i = usize::try_from(i)
                        .map_err(|_| ExecError::IndexOutOfBounds { index: i, len: 0 })?;
                    steps.push(Step::Index(i));
                    cursor = base;
                }
            }
        }
        let Place::Var(root) = cursor else {
            unreachable!("loop exits only at Var");
        };
        let slot = if let Some(v) = locals.get_mut(root) {
            v
        } else {
            self.globals
                .get_mut(root)
                .ok_or_else(|| ExecError::UnknownVariable(root.clone()))?
        };
        let mut target = slot;
        for step in steps.iter().rev() {
            target = match (step, target) {
                (Step::Field(i), Value::Struct(fields)) => {
                    let len = fields.len();
                    fields.get_mut(*i).ok_or(ExecError::IndexOutOfBounds {
                        index: *i as i64,
                        len,
                    })?
                }
                (Step::Index(i), Value::Array(items)) => {
                    let len = items.len();
                    items.get_mut(*i).ok_or(ExecError::IndexOutOfBounds {
                        index: *i as i64,
                        len,
                    })?
                }
                _ => return Err(ExecError::TypeConfusion("bad store path".into())),
            };
        }
        *target = value;
        Ok(())
    }
}

fn default_value(module: &Module, ty: &Type) -> Value {
    match ty {
        Type::I32 | Type::Void => Value::Int(0),
        Type::Bool => Value::Bool(false),
        Type::FnPtr { .. } => Value::Int(0),
        Type::Array(elem, n) => Value::Array(vec![default_value(module, elem); *n]),
        Type::Struct(name) => {
            let def = module.struct_def(name).expect("checked struct");
            Value::Struct(
                def.fields
                    .iter()
                    .map(|(_, t)| default_value(module, t))
                    .collect(),
            )
        }
    }
}

fn value_of_init(module: &Module, ty: &Type, init: &Init) -> Value {
    match (ty, init) {
        (_, Init::Zero) => default_value(module, ty),
        (Type::I32, Init::Int(v)) => Value::Int(*v as i32),
        (Type::Bool, Init::Bool(b)) => Value::Bool(*b),
        (Type::FnPtr { .. }, Init::FnAddr(name)) => Value::Fn(name.clone()),
        (Type::Array(elem, _), Init::Array(items)) => Value::Array(
            items
                .iter()
                .map(|i| value_of_init(module, elem, i))
                .collect(),
        ),
        (Type::Struct(name), Init::Struct(items)) => {
            let def = module.struct_def(name).expect("checked struct");
            Value::Struct(
                def.fields
                    .iter()
                    .zip(items)
                    .map(|((_, t), i)| value_of_init(module, t, i))
                    .collect(),
            )
        }
        _ => default_value(module, ty),
    }
}

fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    use BinOp::*;
    Ok(match op {
        Add => Value::Int(l.as_int()?.wrapping_add(r.as_int()?)),
        Sub => Value::Int(l.as_int()?.wrapping_sub(r.as_int()?)),
        Mul => Value::Int(l.as_int()?.wrapping_mul(r.as_int()?)),
        Div => {
            let (a, b) = (l.as_int()?, r.as_int()?);
            Value::Int(if b == 0 { 0 } else { a.wrapping_div(b) })
        }
        Rem => {
            let (a, b) = (l.as_int()?, r.as_int()?);
            Value::Int(if b == 0 { 0 } else { a.wrapping_rem(b) })
        }
        Eq => Value::Bool(values_eq(l, r)?),
        Ne => Value::Bool(!values_eq(l, r)?),
        Lt => Value::Bool(l.as_int()? < r.as_int()?),
        Le => Value::Bool(l.as_int()? <= r.as_int()?),
        Gt => Value::Bool(l.as_int()? > r.as_int()?),
        Ge => Value::Bool(l.as_int()? >= r.as_int()?),
        And => Value::Bool(l.as_bool()? && r.as_bool()?),
        Or => Value::Bool(l.as_bool()? || r.as_bool()?),
    })
}

fn values_eq(l: &Value, r: &Value) -> Result<bool, ExecError> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(a == b),
        (Value::Bool(a), Value::Bool(b)) => Ok(a == b),
        (Value::Fn(a), Value::Fn(b)) => Ok(a == b),
        _ => Err(ExecError::TypeConfusion("mixed-type equality".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ExternDecl, GlobalDef, StructDef};

    fn run_main(m: &Module) -> (Option<Value>, RecordingEnv) {
        let mut i = Interpreter::new(m, RecordingEnv::new());
        let r = i.call("main", &[]).expect("runs");
        (r, i.into_env())
    }

    #[test]
    fn arithmetic_and_locals() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "x".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(6)),
                },
                Stmt::Return(Some(Expr::var("x").bin(BinOp::Mul, Expr::Int(7)))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        assert_eq!(run_main(&m).0, Some(Value::Int(42)));
    }

    #[test]
    fn division_by_zero_is_zero() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![Stmt::Return(Some(
                Expr::Int(9).bin(BinOp::Div, Expr::Int(0)),
            ))],
            exported: true,
        });
        assert_eq!(run_main(&m).0, Some(Value::Int(0)));
    }

    #[test]
    fn while_loop_sums() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "i".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::Let {
                    name: "acc".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::While {
                    cond: Expr::var("i").bin(BinOp::Lt, Expr::Int(5)),
                    body: vec![
                        Stmt::Assign {
                            place: Place::var("acc"),
                            value: Expr::var("acc").add(Expr::var("i")),
                        },
                        Stmt::Assign {
                            place: Place::var("i"),
                            value: Expr::var("i").add(Expr::Int(1)),
                        },
                    ],
                },
                Stmt::Return(Some(Expr::var("acc"))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        assert_eq!(run_main(&m).0, Some(Value::Int(10)));
    }

    #[test]
    fn break_exits_loop() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "i".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::While {
                    cond: Expr::Bool(true),
                    body: vec![
                        Stmt::Assign {
                            place: Place::var("i"),
                            value: Expr::var("i").add(Expr::Int(1)),
                        },
                        Stmt::If {
                            cond: Expr::var("i").bin(BinOp::Ge, Expr::Int(3)),
                            then_body: vec![Stmt::Break],
                            else_body: vec![],
                        },
                    ],
                },
                Stmt::Return(Some(Expr::var("i"))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        assert_eq!(run_main(&m).0, Some(Value::Int(3)));
    }

    #[test]
    fn switch_selects_case_and_default() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "sel".into(),
            params: vec![("k".into(), Type::I32)],
            ret: Type::I32,
            body: vec![Stmt::Switch {
                scrutinee: Expr::var("k"),
                cases: vec![
                    (0, vec![Stmt::Return(Some(Expr::Int(100)))]),
                    (5, vec![Stmt::Return(Some(Expr::Int(500)))]),
                ],
                default: vec![Stmt::Return(Some(Expr::Int(-1)))],
            }],
            exported: true,
        });
        m.check().expect("typed");
        let mut i = Interpreter::new(&m, RecordingEnv::new());
        assert_eq!(
            i.call("sel", &[Value::Int(5)]).expect("runs"),
            Some(Value::Int(500))
        );
        assert_eq!(
            i.call("sel", &[Value::Int(9)]).expect("runs"),
            Some(Value::Int(-1))
        );
    }

    #[test]
    fn globals_persist_across_calls() {
        let mut m = Module::new("m");
        m.push_global(GlobalDef {
            name: "counter".into(),
            ty: Type::I32,
            init: Init::Int(0),
            mutable: true,
        });
        m.push_function(Function {
            name: "bump".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Assign {
                    place: Place::var("counter"),
                    value: Expr::var("counter").add(Expr::Int(1)),
                },
                Stmt::Return(Some(Expr::var("counter"))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        let mut i = Interpreter::new(&m, RecordingEnv::new());
        i.call("bump", &[]).expect("runs");
        assert_eq!(i.call("bump", &[]).expect("runs"), Some(Value::Int(2)));
    }

    #[test]
    fn struct_fields_and_arrays() {
        let mut m = Module::new("m");
        m.push_struct(StructDef {
            name: "Ctx".into(),
            fields: vec![
                ("state".into(), Type::I32),
                ("flags".into(), Type::Array(Box::new(Type::I32), 3)),
            ],
        });
        m.push_global(GlobalDef {
            name: "ctx".into(),
            ty: Type::Struct("Ctx".into()),
            init: Init::Zero,
            mutable: true,
        });
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Assign {
                    place: Place::var("ctx").field("state"),
                    value: Expr::Int(7),
                },
                Stmt::Assign {
                    place: Place::var("ctx").field("flags").index(Expr::Int(2)),
                    value: Expr::Int(9),
                },
                Stmt::Return(Some(Expr::Place(Place::var("ctx").field("state")).add(
                    Expr::Place(Place::var("ctx").field("flags").index(Expr::Int(2))),
                ))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        assert_eq!(run_main(&m).0, Some(Value::Int(16)));
    }

    #[test]
    fn extern_calls_are_recorded() {
        let mut m = Module::new("m");
        m.push_extern(ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32, Type::I32],
            ret: Type::Void,
        });
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![
                Stmt::Expr(Expr::Call(
                    "env_emit".into(),
                    vec![Expr::Int(3), Expr::Int(4)],
                )),
                Stmt::Expr(Expr::Call(
                    "env_emit".into(),
                    vec![Expr::Int(5), Expr::Int(6)],
                )),
            ],
            exported: true,
        });
        m.check().expect("typed");
        let (_, env) = run_main(&m);
        assert_eq!(
            env.calls,
            vec![
                ("env_emit".to_string(), vec![3, 4]),
                ("env_emit".to_string(), vec![5, 6]),
            ]
        );
    }

    #[test]
    fn indirect_calls_through_const_table() {
        let mut m = Module::new("m");
        m.push_extern(ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32],
            ret: Type::Void,
        });
        for (name, v) in [("h0", 100), ("h1", 200)] {
            m.push_function(Function {
                name: name.into(),
                params: vec![],
                ret: Type::Void,
                body: vec![Stmt::Expr(Expr::Call(
                    "env_emit".into(),
                    vec![Expr::Int(v)],
                ))],
                exported: false,
            });
        }
        m.push_global(GlobalDef {
            name: "handlers".into(),
            ty: Type::Array(Box::new(Type::fn_ptr(vec![], Type::Void)), 2),
            init: Init::Array(vec![Init::FnAddr("h0".into()), Init::FnAddr("h1".into())]),
            mutable: false,
        });
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![Stmt::Expr(Expr::CallPtr(
                Box::new(Expr::Place(Place::var("handlers").index(Expr::Int(1)))),
                vec![],
            ))],
            exported: true,
        });
        m.check().expect("typed");
        let (_, env) = run_main(&m);
        assert_eq!(env.calls, vec![("env_emit".to_string(), vec![200])]);
    }

    #[test]
    fn out_of_fuel_detected() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![Stmt::While {
                cond: Expr::Bool(true),
                body: vec![],
            }],
            exported: true,
        });
        let mut i = Interpreter::new(&m, RecordingEnv::new()).with_fuel(1000);
        assert_eq!(i.call("main", &[]), Err(ExecError::OutOfFuel));
    }

    #[test]
    fn index_out_of_bounds_detected() {
        let mut m = Module::new("m");
        m.push_global(GlobalDef {
            name: "arr".into(),
            ty: Type::Array(Box::new(Type::I32), 2),
            init: Init::Zero,
            mutable: true,
        });
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![Stmt::Return(Some(Expr::Place(
                Place::var("arr").index(Expr::Int(5)),
            )))],
            exported: true,
        });
        let mut i = Interpreter::new(&m, RecordingEnv::new());
        assert!(matches!(
            i.call("main", &[]),
            Err(ExecError::IndexOutOfBounds { .. })
        ));
    }
}
