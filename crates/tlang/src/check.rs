//! Structural and type checking of modules.
//!
//! The checker establishes everything `occ`'s lowering assumes: resolved
//! names, scalar locals, well-typed places, no assignment to `const`
//! globals, acyclic struct definitions, and terminated non-void functions.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{BinOp, Expr, Function, Init, Module, Place, Stmt, Type, UnOp};

/// A checking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Duplicate definition of a top-level name.
    Duplicate(String),
    /// Reference to an unknown name.
    Unknown(String),
    /// A type mismatch, with a human-readable context.
    Mismatch {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
        /// Where.
        context: String,
    },
    /// Locals and parameters must have scalar types.
    NonScalarLocal(String),
    /// Integer literal outside the 32-bit range.
    LiteralOutOfRange(i64),
    /// Assignment to (part of) a `const` global.
    AssignToConst(String),
    /// `break` outside a loop.
    BreakOutsideLoop(String),
    /// Duplicate `case` value in a `switch`.
    DuplicateCase(i64),
    /// A non-void function may fall off its end.
    MissingReturn(String),
    /// Struct definitions form a cycle (layout would be infinite).
    RecursiveStruct(String),
    /// A global initializer does not match the global's type.
    BadInitializer(String),
    /// Wrong number of call arguments.
    ArityMismatch {
        /// Callee name or description.
        callee: String,
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Duplicate(n) => write!(f, "duplicate definition of `{n}`"),
            TypeError::Unknown(n) => write!(f, "unknown name `{n}`"),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            TypeError::NonScalarLocal(n) => write!(f, "local `{n}` has a non-scalar type"),
            TypeError::LiteralOutOfRange(v) => write!(f, "literal {v} does not fit in i32"),
            TypeError::AssignToConst(n) => write!(f, "assignment to const global `{n}`"),
            TypeError::BreakOutsideLoop(fun) => write!(f, "`break` outside a loop in `{fun}`"),
            TypeError::DuplicateCase(v) => write!(f, "duplicate case value {v}"),
            TypeError::MissingReturn(fun) => {
                write!(f, "non-void function `{fun}` may fall off its end")
            }
            TypeError::RecursiveStruct(n) => write!(f, "recursive struct `{n}`"),
            TypeError::BadInitializer(n) => {
                write!(f, "initializer of `{n}` does not match its type")
            }
            TypeError::ArityMismatch {
                callee,
                expected,
                found,
            } => write!(
                f,
                "call of `{callee}`: expected {expected} args, found {found}"
            ),
        }
    }
}

impl std::error::Error for TypeError {}

struct Ctx<'m> {
    module: &'m Module,
    locals: BTreeMap<String, Type>,
    current_fn: String,
}

impl Module {
    /// Checks the whole module.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in a deterministic order
    /// (top-level names, struct shapes, globals, then function bodies).
    pub fn check(&self) -> Result<(), TypeError> {
        self.check_toplevel_names()?;
        self.check_struct_acyclicity()?;
        for g in &self.globals {
            self.check_init(&g.ty, &g.init)
                .map_err(|_| TypeError::BadInitializer(g.name.clone()))?;
        }
        for f in &self.functions {
            self.check_function(f)?;
        }
        Ok(())
    }

    fn check_toplevel_names(&self) -> Result<(), TypeError> {
        let mut seen = BTreeSet::new();
        for n in self
            .structs
            .iter()
            .map(|s| &s.name)
            .chain(self.externs.iter().map(|e| &e.name))
            .chain(self.globals.iter().map(|g| &g.name))
            .chain(self.functions.iter().map(|f| &f.name))
        {
            if !seen.insert(n.clone()) {
                return Err(TypeError::Duplicate(n.clone()));
            }
        }
        Ok(())
    }

    fn check_struct_acyclicity(&self) -> Result<(), TypeError> {
        fn visit(
            module: &Module,
            name: &str,
            visiting: &mut BTreeSet<String>,
            done: &mut BTreeSet<String>,
        ) -> Result<(), TypeError> {
            if done.contains(name) {
                return Ok(());
            }
            if !visiting.insert(name.to_string()) {
                return Err(TypeError::RecursiveStruct(name.to_string()));
            }
            let def = module
                .struct_def(name)
                .ok_or_else(|| TypeError::Unknown(name.to_string()))?;
            for (_, ty) in &def.fields {
                let mut t = ty;
                while let Type::Array(elem, _) = t {
                    t = elem;
                }
                if let Type::Struct(inner) = t {
                    visit(module, inner, visiting, done)?;
                }
            }
            visiting.remove(name);
            done.insert(name.to_string());
            Ok(())
        }
        let mut done = BTreeSet::new();
        for s in &self.structs {
            visit(self, &s.name, &mut BTreeSet::new(), &mut done)?;
        }
        Ok(())
    }

    fn check_init(&self, ty: &Type, init: &Init) -> Result<(), ()> {
        match (ty, init) {
            (_, Init::Zero) => Ok(()),
            (Type::I32, Init::Int(v)) => {
                if i32::try_from(*v).is_ok() {
                    Ok(())
                } else {
                    Err(())
                }
            }
            (Type::Bool, Init::Bool(_)) => Ok(()),
            (Type::FnPtr { params, ret }, Init::FnAddr(name)) => {
                let f = self.function(name).ok_or(())?;
                let sig_params: Vec<Type> = f.params.iter().map(|(_, t)| t.clone()).collect();
                if &sig_params == params && f.ret == **ret {
                    Ok(())
                } else {
                    Err(())
                }
            }
            (Type::Array(elem, n), Init::Array(items)) => {
                if items.len() != *n {
                    return Err(());
                }
                for item in items {
                    self.check_init(elem, item)?;
                }
                Ok(())
            }
            (Type::Struct(name), Init::Struct(items)) => {
                let def = self.struct_def(name).ok_or(())?;
                if def.fields.len() != items.len() {
                    return Err(());
                }
                for ((_, fty), item) in def.fields.iter().zip(items) {
                    self.check_init(fty, item)?;
                }
                Ok(())
            }
            _ => Err(()),
        }
    }

    fn check_function(&self, f: &Function) -> Result<(), TypeError> {
        let mut ctx = Ctx {
            module: self,
            locals: BTreeMap::new(),
            current_fn: f.name.clone(),
        };
        for (name, ty) in &f.params {
            if !ty.is_scalar() {
                return Err(TypeError::NonScalarLocal(name.clone()));
            }
            if ctx.locals.insert(name.clone(), ty.clone()).is_some() {
                return Err(TypeError::Duplicate(name.clone()));
            }
        }
        ctx.check_block(&f.body, &f.ret, false)?;
        if f.ret != Type::Void && !block_terminates(&f.body) {
            return Err(TypeError::MissingReturn(f.name.clone()));
        }
        Ok(())
    }
}

/// `true` if every path through the block ends in `return`.
fn block_terminates(body: &[Stmt]) -> bool {
    body.last().is_some_and(stmt_terminates)
}

fn stmt_terminates(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Return(_) => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => block_terminates(then_body) && block_terminates(else_body),
        Stmt::Switch { cases, default, .. } => {
            cases.iter().all(|(_, b)| block_terminates(b)) && block_terminates(default)
        }
        _ => false,
    }
}

impl Ctx<'_> {
    fn check_block(&mut self, body: &[Stmt], ret: &Type, in_loop: bool) -> Result<(), TypeError> {
        for stmt in body {
            self.check_stmt(stmt, ret, in_loop)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt, ret: &Type, in_loop: bool) -> Result<(), TypeError> {
        match stmt {
            Stmt::Let { name, ty, init } => {
                if !ty.is_scalar() {
                    return Err(TypeError::NonScalarLocal(name.clone()));
                }
                if let Some(init) = init {
                    let found = self.type_of_expr(init)?;
                    self.expect(ty, &found, &format!("initializer of `{name}`"))?;
                }
                if self.locals.insert(name.clone(), ty.clone()).is_some() {
                    return Err(TypeError::Duplicate(name.clone()));
                }
                Ok(())
            }
            Stmt::Assign { place, value } => {
                if let Some(root) = place_root(place) {
                    if !self.locals.contains_key(root) {
                        if let Some(g) = self.module.global(root) {
                            if !g.mutable {
                                return Err(TypeError::AssignToConst(root.to_string()));
                            }
                        }
                    }
                }
                let pt = self.type_of_place(place)?;
                let vt = self.type_of_expr(value)?;
                self.expect(&pt, &vt, "assignment")
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let t = self.type_of_expr(cond)?;
                self.expect(&Type::Bool, &t, "if condition")?;
                self.check_block(then_body, ret, in_loop)?;
                self.check_block(else_body, ret, in_loop)
            }
            Stmt::While { cond, body } => {
                let t = self.type_of_expr(cond)?;
                self.expect(&Type::Bool, &t, "while condition")?;
                self.check_block(body, ret, true)
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let t = self.type_of_expr(scrutinee)?;
                self.expect(&Type::I32, &t, "switch scrutinee")?;
                let mut seen = BTreeSet::new();
                for (value, body) in cases {
                    if !seen.insert(*value) {
                        return Err(TypeError::DuplicateCase(*value));
                    }
                    if i32::try_from(*value).is_err() {
                        return Err(TypeError::LiteralOutOfRange(*value));
                    }
                    self.check_block(body, ret, in_loop)?;
                }
                self.check_block(default, ret, in_loop)
            }
            Stmt::Return(value) => match (value, ret) {
                (None, Type::Void) => Ok(()),
                (Some(_), Type::Void) => Err(TypeError::Mismatch {
                    expected: "void return".into(),
                    found: "value".into(),
                    context: format!("return in `{}`", self.current_fn),
                }),
                (None, other) => Err(TypeError::Mismatch {
                    expected: other.to_string(),
                    found: "void return".into(),
                    context: format!("return in `{}`", self.current_fn),
                }),
                (Some(e), other) => {
                    let t = self.type_of_expr(e)?;
                    self.expect(other, &t, "return value")
                }
            },
            Stmt::Expr(e) => {
                self.type_of_expr(e)?;
                Ok(())
            }
            Stmt::Break => {
                if in_loop {
                    Ok(())
                } else {
                    Err(TypeError::BreakOutsideLoop(self.current_fn.clone()))
                }
            }
        }
    }

    fn expect(&self, expected: &Type, found: &Type, context: &str) -> Result<(), TypeError> {
        if expected == found {
            Ok(())
        } else {
            Err(TypeError::Mismatch {
                expected: expected.to_string(),
                found: found.to_string(),
                context: format!("{context} (in `{}`)", self.current_fn),
            })
        }
    }

    fn type_of_place(&mut self, place: &Place) -> Result<Type, TypeError> {
        match place {
            Place::Var(name) => {
                if let Some(t) = self.locals.get(name) {
                    return Ok(t.clone());
                }
                if let Some(g) = self.module.global(name) {
                    return Ok(g.ty.clone());
                }
                Err(TypeError::Unknown(name.clone()))
            }
            Place::Field(base, field) => {
                let bt = self.type_of_place(base)?;
                let Type::Struct(name) = bt else {
                    return Err(TypeError::Mismatch {
                        expected: "struct".into(),
                        found: bt.to_string(),
                        context: format!("field access `.{field}`"),
                    });
                };
                let def = self
                    .module
                    .struct_def(&name)
                    .ok_or_else(|| TypeError::Unknown(name.clone()))?;
                let (_, ty) = def
                    .field(field)
                    .ok_or_else(|| TypeError::Unknown(format!("{name}.{field}")))?;
                Ok(ty.clone())
            }
            Place::Index(base, index) => {
                let bt = self.type_of_place(base)?;
                let Type::Array(elem, _) = bt else {
                    return Err(TypeError::Mismatch {
                        expected: "array".into(),
                        found: bt.to_string(),
                        context: "indexing".into(),
                    });
                };
                let it = self.type_of_expr(index)?;
                self.expect(&Type::I32, &it, "array index")?;
                Ok(*elem)
            }
        }
    }

    fn type_of_expr(&mut self, expr: &Expr) -> Result<Type, TypeError> {
        match expr {
            Expr::Int(v) => {
                if i32::try_from(*v).is_err() {
                    return Err(TypeError::LiteralOutOfRange(*v));
                }
                Ok(Type::I32)
            }
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Place(p) => self.type_of_place(p),
            Expr::Unary(op, inner) => {
                let t = self.type_of_expr(inner)?;
                match op {
                    UnOp::Neg => {
                        self.expect(&Type::I32, &t, "negation")?;
                        Ok(Type::I32)
                    }
                    UnOp::Not => {
                        self.expect(&Type::Bool, &t, "boolean not")?;
                        Ok(Type::Bool)
                    }
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let lt = self.type_of_expr(lhs)?;
                let rt = self.type_of_expr(rhs)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        self.expect(&Type::I32, &lt, "arithmetic lhs")?;
                        self.expect(&Type::I32, &rt, "arithmetic rhs")?;
                        Ok(Type::I32)
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        self.expect(&Type::I32, &lt, "comparison lhs")?;
                        self.expect(&Type::I32, &rt, "comparison rhs")?;
                        Ok(Type::Bool)
                    }
                    BinOp::Eq | BinOp::Ne => {
                        self.expect(&lt, &rt, "equality operands")?;
                        Ok(Type::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        self.expect(&Type::Bool, &lt, "logic lhs")?;
                        self.expect(&Type::Bool, &rt, "logic rhs")?;
                        Ok(Type::Bool)
                    }
                }
            }
            Expr::Call(name, args) => {
                let (params, ret): (Vec<Type>, Type) = if let Some(f) = self.module.function(name) {
                    (
                        f.params.iter().map(|(_, t)| t.clone()).collect(),
                        f.ret.clone(),
                    )
                } else if let Some(e) = self.module.extern_decl(name) {
                    (e.params.clone(), e.ret.clone())
                } else {
                    return Err(TypeError::Unknown(name.clone()));
                };
                self.check_args(name, &params, args)?;
                Ok(ret)
            }
            Expr::CallPtr(callee, args) => {
                let ct = self.type_of_expr(callee)?;
                let Type::FnPtr { params, ret } = ct else {
                    return Err(TypeError::Mismatch {
                        expected: "function pointer".into(),
                        found: ct.to_string(),
                        context: "indirect call".into(),
                    });
                };
                self.check_args("<indirect>", &params, args)?;
                Ok(*ret)
            }
            Expr::FnAddr(name) => {
                let f = self
                    .module
                    .function(name)
                    .ok_or_else(|| TypeError::Unknown(name.clone()))?;
                Ok(Type::fn_ptr(
                    f.params.iter().map(|(_, t)| t.clone()).collect(),
                    f.ret.clone(),
                ))
            }
        }
    }

    fn check_args(
        &mut self,
        callee: &str,
        params: &[Type],
        args: &[Expr],
    ) -> Result<(), TypeError> {
        if params.len() != args.len() {
            return Err(TypeError::ArityMismatch {
                callee: callee.to_string(),
                expected: params.len(),
                found: args.len(),
            });
        }
        for (p, a) in params.iter().zip(args) {
            let at = self.type_of_expr(a)?;
            self.expect(p, &at, &format!("argument of `{callee}`"))?;
        }
        Ok(())
    }
}

fn place_root(place: &Place) -> Option<&str> {
    match place {
        Place::Var(name) => Some(name),
        Place::Field(base, _) => place_root(base),
        Place::Index(base, _) => place_root(base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ExternDecl, GlobalDef, StructDef};

    fn f(name: &str, ret: Type, body: Vec<Stmt>) -> Function {
        Function {
            name: name.into(),
            params: vec![],
            ret,
            body,
            exported: true,
        }
    }

    #[test]
    fn accepts_simple_function() {
        let mut m = Module::new("m");
        m.push_function(f(
            "main",
            Type::I32,
            vec![
                Stmt::Let {
                    name: "x".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(1)),
                },
                Stmt::Return(Some(Expr::var("x").add(Expr::Int(2)))),
            ],
        ));
        m.check().expect("well-typed");
    }

    #[test]
    fn rejects_duplicate_toplevel() {
        let mut m = Module::new("m");
        m.push_function(f("x", Type::Void, vec![]));
        m.push_global(GlobalDef {
            name: "x".into(),
            ty: Type::I32,
            init: Init::Int(0),
            mutable: true,
        });
        assert!(matches!(m.check(), Err(TypeError::Duplicate(_))));
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut m = Module::new("m");
        m.push_function(f("main", Type::Void, vec![Stmt::Expr(Expr::var("ghost"))]));
        assert!(matches!(m.check(), Err(TypeError::Unknown(_))));
    }

    #[test]
    fn rejects_bad_condition_type() {
        let mut m = Module::new("m");
        m.push_function(f(
            "main",
            Type::Void,
            vec![Stmt::If {
                cond: Expr::Int(1),
                then_body: vec![],
                else_body: vec![],
            }],
        ));
        assert!(matches!(m.check(), Err(TypeError::Mismatch { .. })));
    }

    #[test]
    fn rejects_assign_to_const() {
        let mut m = Module::new("m");
        m.push_global(GlobalDef {
            name: "table".into(),
            ty: Type::Array(Box::new(Type::I32), 2),
            init: Init::Array(vec![Init::Int(1), Init::Int(2)]),
            mutable: false,
        });
        m.push_function(f(
            "main",
            Type::Void,
            vec![Stmt::Assign {
                place: Place::var("table").index(Expr::Int(0)),
                value: Expr::Int(9),
            }],
        ));
        assert!(matches!(m.check(), Err(TypeError::AssignToConst(_))));
    }

    #[test]
    fn rejects_missing_return() {
        let mut m = Module::new("m");
        m.push_function(f(
            "main",
            Type::I32,
            vec![Stmt::If {
                cond: Expr::Bool(true),
                then_body: vec![Stmt::Return(Some(Expr::Int(1)))],
                else_body: vec![],
            }],
        ));
        assert!(matches!(m.check(), Err(TypeError::MissingReturn(_))));
    }

    #[test]
    fn accepts_exhaustive_switch_return() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "sel".into(),
            params: vec![("k".into(), Type::I32)],
            ret: Type::I32,
            body: vec![Stmt::Switch {
                scrutinee: Expr::var("k"),
                cases: vec![
                    (0, vec![Stmt::Return(Some(Expr::Int(10)))]),
                    (1, vec![Stmt::Return(Some(Expr::Int(20)))]),
                ],
                default: vec![Stmt::Return(Some(Expr::Int(0)))],
            }],
            exported: true,
        });
        m.check().expect("well-typed");
    }

    #[test]
    fn rejects_duplicate_case() {
        let mut m = Module::new("m");
        m.push_function(f(
            "main",
            Type::Void,
            vec![Stmt::Switch {
                scrutinee: Expr::Int(0),
                cases: vec![(1, vec![]), (1, vec![])],
                default: vec![],
            }],
        ));
        assert!(matches!(m.check(), Err(TypeError::DuplicateCase(1))));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let mut m = Module::new("m");
        m.push_function(f("main", Type::Void, vec![Stmt::Break]));
        assert!(matches!(m.check(), Err(TypeError::BreakOutsideLoop(_))));
    }

    #[test]
    fn rejects_recursive_struct() {
        let mut m = Module::new("m");
        m.push_struct(StructDef {
            name: "A".into(),
            fields: vec![("b".into(), Type::Struct("B".into()))],
        });
        m.push_struct(StructDef {
            name: "B".into(),
            fields: vec![("a".into(), Type::Struct("A".into()))],
        });
        assert!(matches!(m.check(), Err(TypeError::RecursiveStruct(_))));
    }

    #[test]
    fn checks_fn_ptr_tables() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "h0".into(),
            params: vec![("e".into(), Type::I32)],
            ret: Type::Void,
            body: vec![],
            exported: false,
        });
        m.push_global(GlobalDef {
            name: "handlers".into(),
            ty: Type::Array(Box::new(Type::fn_ptr(vec![Type::I32], Type::Void)), 1),
            init: Init::Array(vec![Init::FnAddr("h0".into())]),
            mutable: false,
        });
        m.push_function(f(
            "main",
            Type::Void,
            vec![Stmt::Expr(Expr::CallPtr(
                Box::new(Expr::Place(Place::var("handlers").index(Expr::Int(0)))),
                vec![Expr::Int(7)],
            ))],
        ));
        m.check().expect("well-typed");
    }

    #[test]
    fn rejects_fn_ptr_signature_mismatch() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "h0".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![],
            exported: false,
        });
        m.push_global(GlobalDef {
            name: "handlers".into(),
            ty: Type::Array(Box::new(Type::fn_ptr(vec![Type::I32], Type::Void)), 1),
            init: Init::Array(vec![Init::FnAddr("h0".into())]),
            mutable: false,
        });
        assert!(matches!(m.check(), Err(TypeError::BadInitializer(_))));
    }

    #[test]
    fn rejects_extern_arity_mismatch() {
        let mut m = Module::new("m");
        m.push_extern(ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32, Type::I32],
            ret: Type::Void,
        });
        m.push_function(f(
            "main",
            Type::Void,
            vec![Stmt::Expr(Expr::Call(
                "env_emit".into(),
                vec![Expr::Int(1)],
            ))],
        ));
        assert!(matches!(m.check(), Err(TypeError::ArityMismatch { .. })));
    }
}
