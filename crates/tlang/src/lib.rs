//! `tlang` — the target language for state-machine code generation.
//!
//! The paper generates C++ from UML state machines and compiles it with
//! GCC. This crate is the corresponding substrate: a small, typed, C-like
//! language with
//!
//! * 32-bit integers and booleans (the embedded target's `int`),
//! * structs, fixed-size arrays and constant global tables,
//! * function pointers (used by the State-Pattern and STT generators for
//!   handler tables, i.e. the moral equivalent of C++ vtables),
//! * `if`/`while`/`switch` control flow.
//!
//! It ships three tools the rest of the toolchain builds on:
//!
//! * a structural [`check`](Module::check) pass (name resolution + types),
//! * a C-flavoured pretty-printer ([`Module::to_source`]) so generated
//!   programs can be read and diffed like the paper's generated C++,
//! * a reference [`interp`] interpreter used as the oracle when validating
//!   the `occ` optimizing compiler: a compiled program must behave exactly
//!   like its source.
//!
//! # Example
//!
//! ```
//! use tlang::{Expr, Function, Module, Stmt, Type};
//!
//! let mut module = Module::new("demo");
//! module.push_function(Function {
//!     name: "answer".into(),
//!     params: vec![],
//!     ret: Type::I32,
//!     body: vec![Stmt::Return(Some(Expr::Int(42)))],
//!     exported: true,
//! });
//! module.check().expect("well-typed");
//! assert!(module.to_source().contains("fn answer"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod check;
pub mod interp;
mod printer;

pub use ast::{
    BinOp, Expr, ExternDecl, Function, GlobalDef, Init, Module, Place, Stmt, StructDef, Type, UnOp,
};
pub use check::TypeError;
pub use interp::{Env, ExecError, Interpreter, RecordingEnv, Value};
