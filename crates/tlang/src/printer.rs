//! Pretty-printing of modules as human-readable source.
//!
//! The output mirrors the role of the paper's generated C++ files: an
//! inspectable artifact whose byte size is itself a metric (the experiments
//! report encoded machine-code bytes, but source size is printed alongside
//! for orientation).

use std::fmt::Write as _;

use crate::ast::{Expr, Init, Module, Place, Stmt, UnOp};

const INDENT: &str = "    ";

impl Module {
    /// Renders the module as source text.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "// module {}", self.name);
        for s in &self.structs {
            let _ = writeln!(out, "struct {} {{", s.name);
            for (f, t) in &s.fields {
                let _ = writeln!(out, "{INDENT}{f}: {t};");
            }
            let _ = writeln!(out, "}}");
        }
        for e in &self.externs {
            let params: Vec<String> = e.params.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(
                out,
                "extern fn {}({}) -> {};",
                e.name,
                params.join(", "),
                e.ret
            );
        }
        for g in &self.globals {
            let kw = if g.mutable { "static" } else { "const" };
            let _ = writeln!(out, "{kw} {}: {} = {};", g.name, g.ty, print_init(&g.init));
        }
        for f in &self.functions {
            let params: Vec<String> = f.params.iter().map(|(n, t)| format!("{n}: {t}")).collect();
            let vis = if f.exported { "pub " } else { "" };
            let _ = writeln!(
                out,
                "{vis}fn {}({}) -> {} {{",
                f.name,
                params.join(", "),
                f.ret
            );
            for stmt in &f.body {
                print_stmt(stmt, 1, &mut out);
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

fn print_init(init: &Init) -> String {
    match init {
        Init::Int(v) => v.to_string(),
        Init::Bool(b) => b.to_string(),
        Init::Array(items) => {
            let inner: Vec<String> = items.iter().map(print_init).collect();
            format!("[{}]", inner.join(", "))
        }
        Init::Struct(items) => {
            let inner: Vec<String> = items.iter().map(print_init).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Init::FnAddr(name) => format!("&{name}"),
        Init::Zero => "zeroed".to_string(),
    }
}

fn print_stmt(stmt: &Stmt, depth: usize, out: &mut String) {
    let pad = INDENT.repeat(depth);
    match stmt {
        Stmt::Let { name, ty, init } => {
            match init {
                Some(e) => {
                    let _ = writeln!(out, "{pad}let {name}: {ty} = {};", print_expr(e));
                }
                None => {
                    let _ = writeln!(out, "{pad}let {name}: {ty};");
                }
            };
        }
        Stmt::Assign { place, value } => {
            let _ = writeln!(out, "{pad}{} = {};", print_place(place), print_expr(value));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if {} {{", print_expr(cond));
            for s in then_body {
                print_stmt(s, depth + 1, out);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    print_stmt(s, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while {} {{", print_expr(cond));
            for s in body {
                print_stmt(s, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            let _ = writeln!(out, "{pad}switch {} {{", print_expr(scrutinee));
            for (v, body) in cases {
                let _ = writeln!(out, "{pad}case {v}: {{");
                for s in body {
                    print_stmt(s, depth + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            let _ = writeln!(out, "{pad}default: {{");
            for s in default {
                print_stmt(s, depth + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "{pad}return {};", print_expr(e));
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{pad}{};", print_expr(e));
        }
        Stmt::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
    }
}

fn print_place(place: &Place) -> String {
    match place {
        Place::Var(name) => name.clone(),
        Place::Field(base, field) => format!("{}.{field}", print_place(base)),
        Place::Index(base, index) => format!("{}[{}]", print_place(base), print_expr(index)),
    }
}

fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Int(v) => v.to_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Place(p) => print_place(p),
        Expr::Unary(UnOp::Neg, e) => format!("(-{})", print_expr(e)),
        Expr::Unary(UnOp::Not, e) => format!("(!{})", print_expr(e)),
        Expr::Binary(op, l, r) => {
            format!("({} {} {})", print_expr(l), op.symbol(), print_expr(r))
        }
        Expr::Call(name, args) => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", a.join(", "))
        }
        Expr::CallPtr(callee, args) => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("({})({})", print_expr(callee), a.join(", "))
        }
        Expr::FnAddr(name) => format!("&{name}"),
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::*;

    #[test]
    fn prints_full_module() {
        let mut m = Module::new("demo");
        m.push_struct(StructDef {
            name: "Ctx".into(),
            fields: vec![("state".into(), Type::I32)],
        });
        m.push_extern(ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32, Type::I32],
            ret: Type::Void,
        });
        m.push_global(GlobalDef {
            name: "ctx".into(),
            ty: Type::Struct("Ctx".into()),
            init: Init::Struct(vec![Init::Int(0)]),
            mutable: true,
        });
        m.push_function(Function {
            name: "step".into(),
            params: vec![("ev".into(), Type::I32)],
            ret: Type::Void,
            body: vec![
                Stmt::Switch {
                    scrutinee: Expr::var("ev"),
                    cases: vec![(
                        0,
                        vec![Stmt::Assign {
                            place: Place::var("ctx").field("state"),
                            value: Expr::Int(1),
                        }],
                    )],
                    default: vec![Stmt::Expr(Expr::Call(
                        "env_emit".into(),
                        vec![Expr::Int(9), Expr::Int(0)],
                    ))],
                },
                Stmt::Return(None),
            ],
            exported: true,
        });
        let src = m.to_source();
        assert!(src.contains("struct Ctx"));
        assert!(src.contains("extern fn env_emit(i32, i32) -> void;"));
        assert!(src.contains("static ctx"));
        assert!(src.contains("switch ev {"));
        assert!(src.contains("ctx.state = 1;"));
        assert!(src.contains("pub fn step(ev: i32) -> void {"));
    }

    #[test]
    fn const_globals_print_const() {
        let mut m = Module::new("m");
        m.push_global(GlobalDef {
            name: "t".into(),
            ty: Type::Array(Box::new(Type::I32), 2),
            init: Init::Array(vec![Init::Int(4), Init::Int(5)]),
            mutable: false,
        });
        assert!(m.to_source().contains("const t: i32[2] = [4, 5];"));
    }
}
