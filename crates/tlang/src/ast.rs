//! Abstract syntax of the target language.

use std::fmt;

/// A type of the target language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer (the embedded `int`).
    I32,
    /// Boolean (lowered to a byte by the backend).
    Bool,
    /// No value; only valid as a return type.
    Void,
    /// A named struct type.
    Struct(String),
    /// Fixed-size array.
    Array(Box<Type>, usize),
    /// Pointer to a function with the given signature.
    FnPtr {
        /// Parameter types.
        params: Vec<Type>,
        /// Return type.
        ret: Box<Type>,
    },
}

impl Type {
    /// Convenience constructor for a function-pointer type.
    pub fn fn_ptr(params: Vec<Type>, ret: Type) -> Type {
        Type::FnPtr {
            params,
            ret: Box::new(ret),
        }
    }

    /// `true` for types a local variable or parameter may have (scalars and
    /// function pointers; aggregates live in globals only).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::I32 | Type::Bool | Type::FnPtr { .. })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I32 => write!(f, "i32"),
            Type::Bool => write!(f, "bool"),
            Type::Void => write!(f, "void"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Array(elem, n) => write!(f, "{elem}[{n}]"),
            Type::FnPtr { params, ret } => {
                write!(f, "fn(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") -> {ret}")
            }
        }
    }
}

/// Binary operators. `And`/`Or` are strict (non-short-circuit) boolean
/// operators, matching the model-level action language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields zero (embedded-friendly totalized
    /// semantics shared with the model level).
    Div,
    /// Remainder; remainder by zero yields zero.
    Rem,
    /// Equality (ints or bools).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than (ints).
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Strict boolean and.
    And,
    /// Strict boolean or.
    Or,
}

impl BinOp {
    /// Surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&",
            BinOp::Or => "|",
        }
    }

    /// `true` for operators producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean not.
    Not,
}

/// A *place*: something that designates a storage location (local,
/// parameter, global, struct field, array element).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Place {
    /// A named local, parameter or global (resolution order: local scope,
    /// then globals).
    Var(String),
    /// A struct field of a place.
    Field(Box<Place>, String),
    /// An array element of a place.
    Index(Box<Place>, Box<Expr>),
}

impl Place {
    /// Convenience constructor for a named place.
    pub fn var(name: impl Into<String>) -> Place {
        Place::Var(name.into())
    }

    /// Selects a field of this place.
    pub fn field(self, name: impl Into<String>) -> Place {
        Place::Field(Box::new(self), name.into())
    }

    /// Indexes this place.
    pub fn index(self, index: Expr) -> Place {
        Place::Index(Box::new(self), Box::new(index))
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// 32-bit integer literal (stored widened; the checker rejects
    /// out-of-range literals).
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Read of a place.
    Place(Place),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Direct call of a module function or extern.
    Call(String, Vec<Expr>),
    /// Indirect call through a function-pointer expression.
    CallPtr(Box<Expr>, Vec<Expr>),
    /// Address of a module function (a function-pointer value).
    FnAddr(String),
}

// `add` intentionally shadows the `std::ops::Add` method name: it builds
// an AST node by value rather than evaluating, so the operator trait would
// misleadingly suggest arithmetic.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Reads a named variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Place(Place::var(name))
    }

    /// Builds `self OP rhs`.
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(self), Box::new(rhs))
    }

    /// Builds `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    /// Builds `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// Declares a scalar local, optionally initialized.
    Let {
        /// Local name.
        name: String,
        /// Declared type (must be scalar).
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Stores into a place.
    Assign {
        /// Destination.
        place: Place,
        /// Value.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Condition (boolean).
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch.
        else_body: Vec<Stmt>,
    },
    /// Loop.
    While {
        /// Loop condition (boolean).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Multi-way branch on an integer scrutinee. Cases do not fall through
    /// (each case body is a block, as in the generated nested-switch code).
    Switch {
        /// Scrutinee (integer).
        scrutinee: Expr,
        /// `(value, body)` arms.
        cases: Vec<(i64, Vec<Stmt>)>,
        /// Default arm.
        default: Vec<Stmt>,
    },
    /// Returns from the function.
    Return(Option<Expr>),
    /// Evaluates an expression for effect (calls).
    Expr(Expr),
    /// Exits the innermost `While` loop.
    Break,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, Type)>,
}

impl StructDef {
    /// Index and type of a field.
    pub fn field(&self, name: &str) -> Option<(usize, &Type)> {
        self.fields
            .iter()
            .enumerate()
            .find(|(_, (f, _))| f == name)
            .map(|(i, (_, t))| (i, t))
    }
}

/// Declaration of an environment (host) function, e.g. `env_emit`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExternDecl {
    /// Extern name.
    pub name: String,
    /// Parameter types (scalars).
    pub params: Vec<Type>,
    /// Return type (scalar or void).
    pub ret: Type,
}

/// Static initializer for a global.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Init {
    /// Integer value.
    Int(i64),
    /// Boolean value.
    Bool(bool),
    /// Array elements.
    Array(Vec<Init>),
    /// Struct fields in order.
    Struct(Vec<Init>),
    /// Address of a module function.
    FnAddr(String),
    /// Zero-initialized.
    Zero,
}

/// A global variable or constant table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalDef {
    /// Global name.
    pub name: String,
    /// Type (any type, aggregates allowed).
    pub ty: Type,
    /// Initializer.
    pub init: Init,
    /// `false` for `const` data (the backend places it in rodata).
    pub mutable: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters (scalar types only).
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret: Type,
    /// Body.
    pub body: Vec<Stmt>,
    /// Exported functions are roots for dead-function elimination and are
    /// callable from the host/VM.
    pub exported: bool,
}

/// A compilation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Environment function declarations.
    pub externs: Vec<ExternDecl>,
    /// Globals (mutable data and const tables).
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Adds a struct definition.
    pub fn push_struct(&mut self, def: StructDef) {
        self.structs.push(def);
    }

    /// Adds an extern declaration.
    pub fn push_extern(&mut self, decl: ExternDecl) {
        self.externs.push(decl);
    }

    /// Adds a global.
    pub fn push_global(&mut self, def: GlobalDef) {
        self.globals.push(def);
    }

    /// Adds a function.
    pub fn push_function(&mut self, func: Function) {
        self.functions.push(func);
    }

    /// Looks up a struct by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up an extern by name.
    pub fn extern_decl(&self, name: &str) -> Option<&ExternDecl> {
        self.externs.iter().find(|e| e.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::Array(Box::new(Type::I32), 4).to_string(), "i32[4]");
        assert_eq!(
            Type::fn_ptr(vec![Type::I32], Type::Void).to_string(),
            "fn(i32) -> void"
        );
    }

    #[test]
    fn scalar_classification() {
        assert!(Type::I32.is_scalar());
        assert!(Type::fn_ptr(vec![], Type::Void).is_scalar());
        assert!(!Type::Array(Box::new(Type::I32), 2).is_scalar());
        assert!(!Type::Struct("S".into()).is_scalar());
    }

    #[test]
    fn struct_field_lookup() {
        let s = StructDef {
            name: "Ctx".into(),
            fields: vec![("a".into(), Type::I32), ("b".into(), Type::Bool)],
        };
        assert_eq!(s.field("b").map(|(i, _)| i), Some(1));
        assert!(s.field("zzz").is_none());
    }

    #[test]
    fn module_lookups() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "f".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![],
            exported: false,
        });
        m.push_global(GlobalDef {
            name: "g".into(),
            ty: Type::I32,
            init: Init::Int(0),
            mutable: true,
        });
        assert!(m.function("f").is_some());
        assert!(m.global("g").is_some());
        assert!(m.function("g").is_none());
    }

    #[test]
    fn place_builders_nest() {
        let p = Place::var("tbl").index(Expr::Int(3)).field("handler");
        assert!(matches!(p, Place::Field(_, _)));
    }
}
