//! SSA construction and destruction.
//!
//! Construction follows Cytron et al. (the algorithm behind GCC's Tree SSA,
//! which the paper credits for enabling its higher-level optimizations):
//! φ-nodes are placed at iterated dominance frontiers of multi-definition
//! registers, then a dominator-tree walk renames versions. Destruction
//! splits critical edges and lowers φs to staged parallel copies.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::cfg;
use crate::mir::{Block, BlockId, Inst, MirFunction, Term, VReg};

/// Converts a function into SSA form (φ-nodes appear in block headers).
pub fn construct(f: &mut MirFunction) {
    // Work on reachable code only; unreachable blocks would confuse
    // renaming (they have no dominator-tree position).
    remove_unreachable_blocks(f);

    let preds = cfg::predecessors(f);
    let df = cfg::dominance_frontiers(f);
    let idom = cfg::dominators(f);

    // Definition sites per register.
    let mut defsites: BTreeMap<VReg, BTreeSet<BlockId>> = BTreeMap::new();
    let mut def_count: BTreeMap<VReg, usize> = BTreeMap::new();
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            if let Some(d) = inst.def() {
                defsites.entry(d).or_default().insert(b);
                *def_count.entry(d).or_default() += 1;
            }
        }
    }
    // Parameters are defined at entry.
    for p in 0..f.params {
        defsites
            .entry(VReg(p as u32))
            .or_default()
            .insert(BlockId(0));
        *def_count.entry(VReg(p as u32)).or_default() += 1;
    }

    // φ placement at iterated dominance frontiers for registers with more
    // than one definition site or several definitions.
    let mut phis: BTreeMap<BlockId, BTreeMap<VReg, usize>> = BTreeMap::new();
    for (v, sites) in &defsites {
        if def_count[v] <= 1 && sites.len() <= 1 {
            continue;
        }
        let mut work: Vec<BlockId> = sites.iter().copied().collect();
        let mut placed: BTreeSet<BlockId> = BTreeSet::new();
        while let Some(b) = work.pop() {
            let Some(frontier) = df.get(&b) else { continue };
            for &y in frontier {
                if placed.insert(y) {
                    let idx = f.block(y).insts.len();
                    let _ = idx;
                    let entry = phis.entry(y).or_default();
                    entry.insert(*v, preds[y.0 as usize].len());
                    work.push(y);
                }
            }
        }
    }
    for (b, vars) in &phis {
        let block_preds = &preds[b.0 as usize];
        let mut new_insts: Vec<Inst> = Vec::new();
        for v in vars.keys() {
            new_insts.push(Inst::Phi {
                dst: *v,
                args: block_preds.iter().map(|p| (*p, *v)).collect(),
            });
        }
        let blk = f.block_mut(*b);
        new_insts.append(&mut blk.insts);
        blk.insts = new_insts;
    }

    // Renaming: dominator-tree walk with version stacks.
    let children = cfg::dominator_tree_children(&idom);
    let mut stacks: BTreeMap<VReg, Vec<VReg>> = BTreeMap::new();
    for p in 0..f.params {
        stacks.insert(VReg(p as u32), vec![VReg(p as u32)]);
    }

    rename(f, BlockId(0), &children, &mut stacks, &preds);

    // Strictness repair. A variable first assigned inside a conditional
    // or loop body has no definition on the path that skips the
    // assignment; renaming then leaves the pre-rename register dangling
    // in that path's φ-argument (the `top` fallback). Give every such
    // register one synthetic zero definition at entry, making the SSA
    // strict (every use dominated by a def, the `crate::verify`
    // contract): the zero is only observable on paths where the source
    // program never reads the variable anyway.
    let mut defined: BTreeSet<VReg> = (0..f.params as u32).map(VReg).collect();
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            if let Some(d) = inst.def() {
                defined.insert(d);
            }
        }
    }
    let mut dangling: BTreeSet<VReg> = BTreeSet::new();
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            dangling.extend(inst.uses().into_iter().filter(|u| !defined.contains(u)));
        }
        dangling.extend(
            f.block(b)
                .term
                .uses()
                .into_iter()
                .filter(|u| !defined.contains(u)),
        );
    }
    if !dangling.is_empty() {
        let entry = f.block_mut(BlockId(0));
        let mut prefix: Vec<Inst> = dangling
            .into_iter()
            .map(|dst| Inst::Const { dst, value: 0 })
            .collect();
        prefix.append(&mut entry.insts);
        entry.insts = prefix;
    }

    // Post-construct boundary of the pipeline verifier: the output must
    // satisfy the full SSA tier (debug builds only; see `crate::verify`).
    if cfg!(debug_assertions) {
        let vs = crate::verify::verify_function(f, crate::verify::Tier::Ssa);
        assert!(
            vs.is_empty(),
            "ssa::construct produced invalid SSA for `{}`:{}",
            f.name,
            crate::verify::report(&vs)
        );
    }
}

/// Folds φs of single-predecessor (and predecessor-less) blocks into
/// plain copies, preserving the verifier's φ-join discipline
/// ([`crate::verify::Rule::PhiOutsideJoin`]): edge pruning — a folded
/// branch, a dropped `Switch` arm, an unreachable predecessor — can
/// leave a join block with one surviving predecessor, whose φs are just
/// copies of their single remaining argument. Returns `true` if any φ
/// was folded.
pub fn fold_trivial_phis(f: &mut MirFunction) -> bool {
    let preds = cfg::predecessors(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let distinct: BTreeSet<BlockId> = preds[b.0 as usize].iter().copied().collect();
        if distinct.len() >= 2 {
            continue;
        }
        for inst in &mut f.block_mut(b).insts {
            if let Inst::Phi { dst, args } = inst {
                if let [(_, src)] = args[..] {
                    *inst = Inst::Copy { dst: *dst, src };
                    changed = true;
                }
            }
        }
    }
    changed
}

fn top(stacks: &BTreeMap<VReg, Vec<VReg>>, v: VReg) -> VReg {
    stacks.get(&v).and_then(|s| s.last()).copied().unwrap_or(v)
}

fn rename(
    f: &mut MirFunction,
    b: BlockId,
    children: &BTreeMap<BlockId, Vec<BlockId>>,
    stacks: &mut BTreeMap<VReg, Vec<VReg>>,
    preds: &[Vec<BlockId>],
) {
    let mut pushed: Vec<VReg> = Vec::new();

    // Rewrite instructions.
    let insts_len = f.block(b).insts.len();
    for i in 0..insts_len {
        let is_phi = matches!(f.block(b).insts[i], Inst::Phi { .. });
        if !is_phi {
            let mut inst = f.block(b).insts[i].clone();
            inst.map_uses(&mut |v| top(stacks, v));
            f.block_mut(b).insts[i] = inst;
        }
        // Redefine the destination with a fresh version.
        if let Some(d) = f.block(b).insts[i].def() {
            let fresh = f.fresh();
            if let Some(dst) = f.block_mut(b).insts[i].def_mut() {
                *dst = fresh;
            }
            stacks.entry(d).or_default().push(fresh);
            pushed.push(d);
        }
    }
    {
        let mut term = f.block(b).term.clone();
        term.map_uses(&mut |v| top(stacks, v));
        f.block_mut(b).term = term;
    }

    // Fill φ arguments of successors. A block can appear several times in
    // a successor's predecessor list (e.g. a `Br` whose arms share a
    // target), so every matching slot must be filled — filling only the
    // first would leave stale pre-SSA registers in the later slots.
    for s in f.block(b).term.succs() {
        let pred_indices: Vec<usize> = preds[s.0 as usize]
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == b)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !pred_indices.is_empty(),
            "b is a predecessor of its successor"
        );
        let insts_len = f.block(s).insts.len();
        for i in 0..insts_len {
            for &pred_index in &pred_indices {
                let Inst::Phi { args, .. } = &f.block(s).insts[i] else {
                    continue;
                };
                let original = args[pred_index].1;
                let renamed = top(stacks, original);
                if let Inst::Phi { args, .. } = &mut f.block_mut(s).insts[i] {
                    args[pred_index] = (b, renamed);
                }
            }
        }
    }

    // Recurse into dominator-tree children.
    if let Some(kids) = children.get(&b) {
        for &k in kids {
            rename(f, k, children, stacks, preds);
        }
    }

    for v in pushed {
        stacks.get_mut(&v).expect("pushed").pop();
    }
}

/// Removes blocks unreachable from the entry, remapping ids.
pub fn remove_unreachable_blocks(f: &mut MirFunction) {
    let reach = cfg::reachable(f);
    if reach.len() == f.blocks.len() {
        return;
    }
    let mut remap: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    let mut new_blocks = Vec::new();
    for b in f.block_ids() {
        if reach.contains(&b) {
            remap.insert(b, BlockId(new_blocks.len() as u32));
            new_blocks.push(f.block(b).clone());
        }
    }
    for blk in &mut new_blocks {
        blk.term.map_succs(&mut |s| remap[&s]);
        for inst in &mut blk.insts {
            if let Inst::Phi { args, .. } = inst {
                args.retain(|(p, _)| remap.contains_key(p));
                for (p, _) in args {
                    *p = remap[p];
                }
            }
        }
    }
    f.blocks = new_blocks;
}

/// Lowers φ-nodes back to copies (splitting critical edges), leaving a
/// φ-free function ready for the backend.
pub fn destruct(f: &mut MirFunction) {
    // Collect copies to insert per edge (pred -> block).
    // Post-destruct boundary of the pipeline verifier: the output must
    // be φ-free and structurally sound (debug builds only).
    fn debug_verify_phi_free(f: &MirFunction) {
        if cfg!(debug_assertions) {
            let vs = crate::verify::verify_function(f, crate::verify::Tier::PhiFree);
            assert!(
                vs.is_empty(),
                "ssa::destruct produced invalid MIR for `{}`:{}",
                f.name,
                crate::verify::report(&vs)
            );
        }
    }

    let mut edge_copies: BTreeMap<(BlockId, BlockId), Vec<(VReg, VReg)>> = BTreeMap::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut kept = Vec::new();
        for inst in f.block(b).insts.clone() {
            if let Inst::Phi { dst, args } = inst {
                for (p, v) in args {
                    edge_copies.entry((p, b)).or_default().push((dst, v));
                }
            } else {
                kept.push(inst);
            }
        }
        f.block_mut(b).insts = kept;
    }
    if edge_copies.is_empty() {
        debug_verify_phi_free(f);
        return;
    }
    for ((p, b), copies) in edge_copies {
        // Staged parallel copy: tmp_i = src_i ; dst_i = tmp_i. This is
        // immune to the swap/lost-copy problems.
        let mut seq = Vec::new();
        let mut temps = Vec::new();
        for (_, src) in &copies {
            let t = f.fresh();
            temps.push(t);
            seq.push(Inst::Copy { dst: t, src: *src });
        }
        for ((dst, _), t) in copies.iter().zip(&temps) {
            seq.push(Inst::Copy { dst: *dst, src: *t });
        }
        let p_succs = f.block(p).term.succs();
        if p_succs.len() == 1 {
            // Insert at the end of the predecessor.
            let blk = f.block_mut(p);
            blk.insts.extend(seq);
        } else {
            // Critical edge: split with a fresh forwarding block.
            let e = BlockId(f.blocks.len() as u32);
            f.blocks.push(Block {
                insts: seq,
                term: Term::Goto(b),
            });
            f.block_mut(p)
                .term
                .map_succs(&mut |s| if s == b { e } else { s });
        }
    }
    debug_verify_phi_free(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::BinOp;

    /// let x = 0; if c { x = 1 } else { x = 2 }; return x  — the classic
    /// φ example.
    fn phi_example() -> MirFunction {
        MirFunction {
            name: "t".into(),
            params: 1, // v0 = c
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 0,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 1,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 2,
        }
    }

    #[test]
    fn construct_places_phi_at_join() {
        let mut f = phi_example();
        construct(&mut f);
        let join = &f.blocks[3];
        assert!(matches!(join.insts.first(), Some(Inst::Phi { .. })), "{f}");
        // Single static assignment: every def is unique.
        let mut defs = BTreeSet::new();
        for b in &f.blocks {
            for i in &b.insts {
                if let Some(d) = i.def() {
                    assert!(defs.insert(d), "double definition of {d} in\n{f}");
                }
            }
        }
    }

    /// Regression keyed to the verifier's `undefined-use` rule: a local
    /// first assigned inside a conditional reaches the join with no
    /// definition at all along the fall-through path, and Cytron
    /// renaming's stack fallback would leave the pre-rename register
    /// dangling in the φ. `construct` must repair this to *strict* SSA
    /// (a zero definition at entry) so every register has a def.
    #[test]
    fn construct_repairs_conditionally_assigned_locals_to_strict_ssa() {
        // if c { x = 5 } ; return x — x has no def on the else path.
        let mut f = MirFunction {
            name: "t".into(),
            params: 1, // v0 = c
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 5,
                    }],
                    term: Term::Goto(BlockId(2)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 2,
        };
        construct(&mut f);
        let vs = crate::verify::verify_function(&f, crate::verify::Tier::Ssa);
        assert!(vs.is_empty(), "{}{f}", crate::verify::report(&vs));
    }

    #[test]
    fn destruct_removes_phis_and_stays_executable() {
        let mut f = phi_example();
        construct(&mut f);
        destruct(&mut f);
        for b in &f.blocks {
            for i in &b.insts {
                assert!(!matches!(i, Inst::Phi { .. }));
            }
        }
    }

    #[test]
    fn unreachable_block_removal_remaps_ids() {
        let mut f = phi_example();
        // Add a dangling block.
        f.blocks.push(Block {
            insts: vec![Inst::Bin {
                op: BinOp::Add,
                dst: VReg(9),
                lhs: VReg(0),
                rhs: VReg(0),
            }],
            term: Term::Ret(None),
        });
        remove_unreachable_blocks(&mut f);
        assert_eq!(f.blocks.len(), 4);
        // Terminators still point at valid blocks.
        for b in f.block_ids() {
            for s in f.block(b).term.succs() {
                assert!((s.0 as usize) < f.blocks.len());
            }
        }
    }

    #[test]
    fn loop_variable_gets_phi_in_header() {
        // i = 0; while (i < n) { i = i + 1 } return i
        let mut f = MirFunction {
            name: "loop".into(),
            params: 1, // v0 = n
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 0,
                    }],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Lt,
                        dst: VReg(2),
                        lhs: VReg(1),
                        rhs: VReg(0),
                    }],
                    term: Term::Br {
                        cond: VReg(2),
                        then_block: BlockId(2),
                        else_block: BlockId(3),
                    },
                },
                Block {
                    insts: vec![
                        Inst::Const {
                            dst: VReg(3),
                            value: 1,
                        },
                        Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(1),
                            lhs: VReg(1),
                            rhs: VReg(3),
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 4,
        };
        construct(&mut f);
        let header = &f.blocks[1];
        assert!(
            matches!(header.insts.first(), Some(Inst::Phi { .. })),
            "{f}"
        );
        destruct(&mut f);
        for b in &f.blocks {
            for i in &b.insts {
                assert!(!matches!(i, Inst::Phi { .. }));
            }
        }
    }
}
