//! EM32 backend: instruction selection, linear-scan register allocation,
//! peephole cleanup, switch lowering and byte-accurate encoding.
//!
//! EM32 is a synthetic 32-bit RISC with a compressed-instruction subset
//! (2-byte `mv`/`ret`), 4-byte ALU/branch/memory forms and 8-byte address
//! formation, so `-Os` decisions have real bytes to win. Registers:
//!
//! | regs      | role                                   |
//! |-----------|----------------------------------------|
//! | `r0`      | hardwired zero                         |
//! | `r1..r4`  | arguments / return value (caller-saved)|
//! | `r5..r11` | allocatable (callee-saved)             |
//! | `r12,r13` | spill scratch                          |
//! | `r14`     | stack pointer                          |
//! | `r15`     | link register (managed by the VM)      |
//!
//! The size report ([`SizeReport`]) mirrors the paper's metric: text bytes
//! plus rodata (const tables, jump tables) plus data.

use std::collections::BTreeMap;
use std::fmt;

use crate::cfg;
use crate::mir::{BinOp, BlockId, Inst, MirFunction, Program, Term, VReg, Word};
use crate::{CompileError, OptLevel};

/// Base address of the data image in VM memory.
pub const DATA_BASE: u32 = 0x1_0000;
/// Base address of the text segment (function entry addresses).
pub const TEXT_BASE: u32 = 0x100_0000;

const ZERO: u8 = 0;
const RET_REG: u8 = 1;
const ARG_REGS: [u8; 4] = [1, 2, 3, 4];
const ALLOC_REGS: [u8; 7] = [5, 6, 7, 8, 9, 10, 11];
const SCRATCH0: u8 = 12;
const SCRATCH1: u8 = 13;
const SP: u8 = 14;

/// One EM32 instruction (labels are zero-size markers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmInst {
    /// Branch target marker.
    Label(usize),
    /// Load immediate.
    Li {
        /// Destination register.
        rd: u8,
        /// Immediate value.
        imm: i32,
    },
    /// Register move (compressed).
    Mv {
        /// Destination.
        rd: u8,
        /// Source.
        rs: u8,
    },
    /// Three-register ALU operation.
    Alu {
        /// Operation.
        op: BinOp,
        /// Destination.
        rd: u8,
        /// Left operand.
        rs1: u8,
        /// Right operand.
        rs2: u8,
    },
    /// Word load `rd = mem[base + off]`.
    Lw {
        /// Destination.
        rd: u8,
        /// Base register.
        base: u8,
        /// Byte offset.
        off: i32,
    },
    /// Word store `mem[base + off] = src`.
    Sw {
        /// Source register.
        src: u8,
        /// Base register.
        base: u8,
        /// Byte offset.
        off: i32,
    },
    /// Branch if equal.
    Beq {
        /// Left comparand.
        rs1: u8,
        /// Right comparand.
        rs2: u8,
        /// Target label.
        label: usize,
    },
    /// Branch if not equal.
    Bne {
        /// Left comparand.
        rs1: u8,
        /// Right comparand.
        rs2: u8,
        /// Target label.
        label: usize,
    },
    /// Unconditional jump to a label.
    J {
        /// Target label.
        label: usize,
    },
    /// Direct call.
    Jal {
        /// Callee function index.
        func: usize,
    },
    /// Indirect call through a register holding a code address.
    Jalr {
        /// Register with the target address.
        rs: u8,
    },
    /// Host-environment call.
    Ecall {
        /// Extern index.
        ext: usize,
        /// Number of register arguments.
        nargs: usize,
        /// Whether a result is produced in `r1`.
        returns: bool,
    },
    /// Function return (compressed).
    Ret,
    /// Address formation: `rd = DATA_BASE + global_offset + off`.
    La {
        /// Destination.
        rd: u8,
        /// Global index.
        global: usize,
        /// Extra byte offset.
        off: i32,
    },
    /// Code-address formation: `rd = &function`.
    LaFn {
        /// Destination.
        rd: u8,
        /// Function index.
        func: usize,
    },
    /// Bounds-checked jump table: `if rs in [lo, lo+n) goto labels[rs-lo]
    /// else default`. Costs 16 text bytes plus 4 rodata bytes per entry.
    JumpTable {
        /// Scrutinee register.
        rs: u8,
        /// Lowest covered value.
        lo: i32,
        /// Targets for `lo..lo+n`.
        labels: Vec<usize>,
        /// Out-of-range target.
        default: usize,
    },
}

impl AsmInst {
    /// Encoded size in text bytes.
    pub fn size(&self) -> usize {
        match self {
            AsmInst::Label(_) => 0,
            AsmInst::Mv { .. } | AsmInst::Ret => 2,
            AsmInst::Li { imm, .. } => {
                if i16::try_from(*imm).is_ok() {
                    4
                } else {
                    8
                }
            }
            AsmInst::La { .. } | AsmInst::LaFn { .. } => 8,
            AsmInst::JumpTable { .. } => 16,
            _ => 4,
        }
    }

    /// Additional rodata bytes (jump tables).
    pub fn rodata(&self) -> usize {
        match self {
            AsmInst::JumpTable { labels, .. } => labels.len() * 4,
            _ => 0,
        }
    }
}

/// One assembled function.
#[derive(Debug, Clone)]
pub struct AsmFunction {
    /// Symbol name.
    pub name: String,
    /// Callable from the host.
    pub exported: bool,
    /// Instruction stream.
    pub insts: Vec<AsmInst>,
}

impl AsmFunction {
    /// Text bytes of this function.
    pub fn text_size(&self) -> usize {
        self.insts.iter().map(AsmInst::size).sum()
    }

    /// Rodata bytes contributed by this function's jump tables.
    pub fn rodata_size(&self) -> usize {
        self.insts.iter().map(AsmInst::rodata).sum()
    }
}

/// An assembled global datum (function addresses resolved).
#[derive(Debug, Clone)]
pub struct AsmGlobal {
    /// Symbol name.
    pub name: String,
    /// Initialized words.
    pub words: Vec<i32>,
    /// `false` for rodata.
    pub mutable: bool,
    /// Byte offset within the data image.
    pub offset: u32,
}

/// A fully assembled program.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// Functions in layout order.
    pub functions: Vec<AsmFunction>,
    /// Data image.
    pub globals: Vec<AsmGlobal>,
    /// Extern names (`ecall` targets).
    pub externs: Vec<String>,
    /// Entry address of each function (`TEXT_BASE`-relative layout).
    pub fn_addrs: Vec<u32>,
}

/// Size accounting — the paper's "assembly code size (bytes)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeReport {
    /// Machine-code bytes.
    pub text: usize,
    /// Read-only data (const tables, jump tables).
    pub rodata: usize,
    /// Mutable data.
    pub data: usize,
}

impl SizeReport {
    /// Total image size.
    pub fn total(&self) -> usize {
        self.text + self.rodata + self.data
    }
}

impl fmt::Display for SizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "text {} + rodata {} + data {} = {} bytes",
            self.text,
            self.rodata,
            self.data,
            self.total()
        )
    }
}

impl Assembly {
    /// Computes the size report.
    pub fn sizes(&self) -> SizeReport {
        let mut r = SizeReport::default();
        for f in &self.functions {
            r.text += f.text_size();
            r.rodata += f.rodata_size();
        }
        for g in &self.globals {
            if g.mutable {
                r.data += g.words.len() * 4;
            } else {
                r.rodata += g.words.len() * 4;
            }
        }
        r
    }

    /// Per-function text sizes, for the dead-code report.
    pub fn function_sizes(&self) -> Vec<(String, usize)> {
        self.functions
            .iter()
            .map(|f| (f.name.clone(), f.text_size()))
            .collect()
    }

    /// Finds a function index by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Renders a human-readable listing.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.functions.iter().enumerate() {
            out.push_str(&format!(
                "{}: # {} bytes @0x{:x}\n",
                f.name,
                f.text_size(),
                self.fn_addrs[i]
            ));
            for inst in &f.insts {
                match inst {
                    AsmInst::Label(l) => out.push_str(&format!(".L{l}:\n")),
                    other => out.push_str(&format!("    {other:?}\n")),
                }
            }
        }
        for g in &self.globals {
            let kind = if g.mutable { ".data" } else { ".rodata" };
            out.push_str(&format!(
                "{kind} {}: {} bytes @0x{:x}\n",
                g.name,
                g.words.len() * 4,
                DATA_BASE + g.offset
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Register allocation (linear scan)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(u8),
    Slot(usize),
}

struct Alloc {
    loc: BTreeMap<VReg, Loc>,
    slots: usize,
    used_callee_saved: Vec<u8>,
}

fn linear_scan(f: &MirFunction) -> Alloc {
    // Linear positions over blocks in layout order.
    let live = cfg::liveness(f);
    let mut pos = 0usize;
    let mut start: BTreeMap<VReg, usize> = BTreeMap::new();
    let mut end: BTreeMap<VReg, usize> = BTreeMap::new();
    let touch =
        |v: VReg, p: usize, start: &mut BTreeMap<VReg, usize>, end: &mut BTreeMap<VReg, usize>| {
            start.entry(v).or_insert(p);
            let e = end.entry(v).or_insert(p);
            if *e < p {
                *e = p;
            }
        };
    for p in 0..f.params {
        touch(VReg(p as u32), 0, &mut start, &mut end);
    }
    for b in f.block_ids() {
        let bi = b.0 as usize;
        let block_start = pos;
        for v in &live.live_in[bi] {
            touch(*v, block_start, &mut start, &mut end);
        }
        for inst in &f.block(b).insts {
            pos += 1;
            for u in inst.uses() {
                touch(u, pos, &mut start, &mut end);
            }
            if let Some(d) = inst.def() {
                touch(d, pos, &mut start, &mut end);
            }
        }
        pos += 1; // terminator
        for u in f.block(b).term.uses() {
            touch(u, pos, &mut start, &mut end);
        }
        for v in &live.live_out[bi] {
            touch(*v, pos, &mut start, &mut end);
        }
    }

    let mut intervals: Vec<(VReg, usize, usize)> =
        start.iter().map(|(v, s)| (*v, *s, end[v])).collect();
    intervals.sort_by_key(|(v, s, _)| (*s, v.0));

    let mut free: Vec<u8> = ALLOC_REGS.to_vec();
    let mut active: Vec<(usize, VReg, u8)> = Vec::new(); // (end, vreg, reg)
    let mut loc: BTreeMap<VReg, Loc> = BTreeMap::new();
    let mut slots = 0usize;
    let mut used: Vec<u8> = Vec::new();

    for (v, s, e) in intervals {
        active.retain(|(ae, _, r)| {
            if *ae < s {
                free.push(*r);
                false
            } else {
                true
            }
        });
        if let Some(r) = free.pop() {
            loc.insert(v, Loc::Reg(r));
            if !used.contains(&r) {
                used.push(r);
            }
            active.push((e, v, r));
            active.sort_by_key(|(ae, _, _)| *ae);
        } else {
            // Spill the interval that ends last.
            let (last_end, last_v, last_r) = *active.last().expect("active non-empty");
            if last_end > e {
                loc.insert(last_v, Loc::Slot(slots));
                loc.insert(v, Loc::Reg(last_r));
                active.pop();
                active.push((e, v, last_r));
                active.sort_by_key(|(ae, _, _)| *ae);
            } else {
                loc.insert(v, Loc::Slot(slots));
            }
            slots += 1;
        }
    }
    used.sort_unstable();
    Alloc {
        loc,
        slots,
        used_callee_saved: used,
    }
}

// ---------------------------------------------------------------------
// Instruction selection / emission
// ---------------------------------------------------------------------

struct Emitter<'a> {
    alloc: &'a Alloc,
    insts: Vec<AsmInst>,
    frame: i32,
    saved: Vec<u8>,
    level: OptLevel,
}

impl Emitter<'_> {
    fn slot_off(&self, slot: usize) -> i32 {
        (self.saved.len() as i32 + slot as i32) * 4
    }

    /// Materializes a vreg into a physical register, preferring `scratch`
    /// for spilled values.
    fn read(&mut self, v: VReg, scratch: u8) -> u8 {
        match self.alloc.loc.get(&v) {
            Some(Loc::Reg(r)) => *r,
            Some(Loc::Slot(s)) => {
                let off = self.slot_off(*s);
                self.insts.push(AsmInst::Lw {
                    rd: scratch,
                    base: SP,
                    off,
                });
                scratch
            }
            None => ZERO, // value never materialized (dead)
        }
    }

    /// Destination register to compute into; spilled destinations use the
    /// scratch register and [`flush`](Self::flush) stores them.
    fn write_reg(&mut self, v: VReg) -> u8 {
        match self.alloc.loc.get(&v) {
            Some(Loc::Reg(r)) => *r,
            Some(Loc::Slot(_)) => SCRATCH0,
            None => SCRATCH0,
        }
    }

    fn flush(&mut self, v: VReg, computed_in: u8) {
        if let Some(Loc::Slot(s)) = self.alloc.loc.get(&v) {
            let off = self.slot_off(*s);
            self.insts.push(AsmInst::Sw {
                src: computed_in,
                base: SP,
                off,
            });
        }
    }

    fn move_args(&mut self, args: &[VReg]) {
        for (i, a) in args.iter().enumerate() {
            let dst = ARG_REGS[i];
            match self.alloc.loc.get(a) {
                Some(Loc::Reg(r)) => self.insts.push(AsmInst::Mv { rd: dst, rs: *r }),
                Some(Loc::Slot(s)) => {
                    let off = self.slot_off(*s);
                    self.insts.push(AsmInst::Lw {
                        rd: dst,
                        base: SP,
                        off,
                    });
                }
                None => self.insts.push(AsmInst::Mv { rd: dst, rs: ZERO }),
            }
        }
    }

    fn emit_inst(&mut self, inst: &Inst) -> Result<(), CompileError> {
        match inst {
            Inst::Const { dst, value } => {
                let rd = self.write_reg(*dst);
                self.insts.push(AsmInst::Li { rd, imm: *value });
                self.flush(*dst, rd);
            }
            Inst::Copy { dst, src } => {
                let rs = self.read(*src, SCRATCH0);
                let rd = self.write_reg(*dst);
                self.insts.push(AsmInst::Mv { rd, rs });
                self.flush(*dst, rd);
            }
            Inst::Un { op, dst, src } => {
                let rs = self.read(*src, SCRATCH0);
                let rd = self.write_reg(*dst);
                match op {
                    crate::mir::UnOp::Neg => self.insts.push(AsmInst::Alu {
                        op: BinOp::Sub,
                        rd,
                        rs1: ZERO,
                        rs2: rs,
                    }),
                    crate::mir::UnOp::Not => self.insts.push(AsmInst::Alu {
                        op: BinOp::Eq,
                        rd,
                        rs1: rs,
                        rs2: ZERO,
                    }),
                }
                self.flush(*dst, rd);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let r1 = self.read(*lhs, SCRATCH0);
                let r2 = self.read(*rhs, SCRATCH1);
                let rd = self.write_reg(*dst);
                self.insts.push(AsmInst::Alu {
                    op: *op,
                    rd,
                    rs1: r1,
                    rs2: r2,
                });
                self.flush(*dst, rd);
            }
            Inst::Load { dst, addr } => {
                let base = self.read(*addr, SCRATCH0);
                let rd = self.write_reg(*dst);
                self.insts.push(AsmInst::Lw { rd, base, off: 0 });
                self.flush(*dst, rd);
            }
            Inst::Store { addr, src } => {
                let base = self.read(*addr, SCRATCH0);
                let s = self.read(*src, SCRATCH1);
                self.insts.push(AsmInst::Sw {
                    src: s,
                    base,
                    off: 0,
                });
            }
            Inst::Addr {
                dst,
                global,
                offset,
            } => {
                let rd = self.write_reg(*dst);
                self.insts.push(AsmInst::La {
                    rd,
                    global: *global,
                    off: *offset,
                });
                self.flush(*dst, rd);
            }
            Inst::FnAddr { dst, func } => {
                let rd = self.write_reg(*dst);
                self.insts.push(AsmInst::LaFn { rd, func: *func });
                self.flush(*dst, rd);
            }
            Inst::Call { dst, func, args } => {
                self.move_args(args);
                self.insts.push(AsmInst::Jal { func: *func });
                if let Some(d) = dst {
                    let rd = self.write_reg(*d);
                    self.insts.push(AsmInst::Mv { rd, rs: RET_REG });
                    self.flush(*d, rd);
                }
            }
            Inst::CallExtern { dst, ext, args } => {
                self.move_args(args);
                self.insts.push(AsmInst::Ecall {
                    ext: *ext,
                    nargs: args.len(),
                    returns: dst.is_some(),
                });
                if let Some(d) = dst {
                    let rd = self.write_reg(*d);
                    self.insts.push(AsmInst::Mv { rd, rs: RET_REG });
                    self.flush(*d, rd);
                }
            }
            Inst::CallInd { dst, ptr, args } => {
                // Read the pointer before clobbering argument registers.
                let pr = self.read(*ptr, SCRATCH0);
                self.move_args(args);
                self.insts.push(AsmInst::Jalr { rs: pr });
                if let Some(d) = dst {
                    let rd = self.write_reg(*d);
                    self.insts.push(AsmInst::Mv { rd, rs: RET_REG });
                    self.flush(*d, rd);
                }
            }
            Inst::Phi { .. } => {
                return Err(CompileError::Internal(
                    "phi reached the backend (SSA not destructed)".into(),
                ))
            }
        }
        Ok(())
    }

    fn emit_epilogue(&mut self) {
        if self.frame != 0 {
            for (i, r) in self.saved.clone().iter().enumerate() {
                self.insts.push(AsmInst::Lw {
                    rd: *r,
                    base: SP,
                    off: (i as i32) * 4,
                });
            }
            self.insts.push(AsmInst::Alu {
                op: BinOp::Add,
                rd: SP,
                rs1: SP,
                rs2: SCRATCH1,
            });
        }
        self.insts.push(AsmInst::Ret);
    }

    fn emit_term(&mut self, term: &Term) -> Result<(), CompileError> {
        match term {
            Term::Goto(b) => self.insts.push(AsmInst::J {
                label: b.0 as usize,
            }),
            Term::Br {
                cond,
                then_block,
                else_block,
            } => {
                let c = self.read(*cond, SCRATCH0);
                self.insts.push(AsmInst::Bne {
                    rs1: c,
                    rs2: ZERO,
                    label: then_block.0 as usize,
                });
                self.insts.push(AsmInst::J {
                    label: else_block.0 as usize,
                });
            }
            Term::Switch {
                val,
                cases,
                default,
            } => {
                let v = self.read(*val, SCRATCH0);
                self.emit_switch(v, cases, *default);
            }
            Term::Ret(value) => {
                if let Some(v) = value {
                    let r = self.read(*v, SCRATCH0);
                    if r != RET_REG {
                        self.insts.push(AsmInst::Mv { rd: RET_REG, rs: r });
                    }
                }
                // Restore frame. SCRATCH1 holds the frame size constant.
                if self.frame != 0 {
                    self.insts.push(AsmInst::Li {
                        rd: SCRATCH1,
                        imm: self.frame,
                    });
                }
                self.emit_epilogue();
            }
        }
        Ok(())
    }

    fn emit_switch(&mut self, v: u8, cases: &[(i32, BlockId)], default: BlockId) {
        if cases.is_empty() {
            self.insts.push(AsmInst::J {
                label: default.0 as usize,
            });
            return;
        }
        let lo = cases.iter().map(|(c, _)| *c).min().expect("non-empty");
        let hi = cases.iter().map(|(c, _)| *c).max().expect("non-empty");
        let range = (i64::from(hi) - i64::from(lo) + 1) as usize;
        let chain_cost = cases.len() * 8 + 4;
        let table_cost = 16 + range * 4;
        let use_table = match self.level {
            OptLevel::O0 | OptLevel::O1 => false,
            OptLevel::O2 => cases.len() >= 4 && range <= cases.len() * 3,
            OptLevel::Os => range <= 1024 && table_cost < chain_cost,
        };
        if use_table {
            let mut labels = vec![default.0 as usize; range];
            for (c, b) in cases {
                labels[(c - lo) as usize] = b.0 as usize;
            }
            self.insts.push(AsmInst::JumpTable {
                rs: v,
                lo,
                labels,
                default: default.0 as usize,
            });
        } else {
            for (c, b) in cases {
                self.insts.push(AsmInst::Li {
                    rd: SCRATCH1,
                    imm: *c,
                });
                self.insts.push(AsmInst::Beq {
                    rs1: v,
                    rs2: SCRATCH1,
                    label: b.0 as usize,
                });
            }
            self.insts.push(AsmInst::J {
                label: default.0 as usize,
            });
        }
    }
}

/// Compiles one MIR function to EM32.
fn compile_function(f: &MirFunction, level: OptLevel) -> Result<AsmFunction, CompileError> {
    let alloc = linear_scan(f);
    let saved = alloc.used_callee_saved.clone();
    let frame = ((saved.len() + alloc.slots) * 4) as i32;
    let mut e = Emitter {
        alloc: &alloc,
        insts: Vec::new(),
        frame,
        saved,
        level,
    };
    // Prologue: allocate the frame, save callee-saved registers.
    if frame != 0 {
        e.insts.push(AsmInst::Li {
            rd: SCRATCH1,
            imm: frame,
        });
        e.insts.push(AsmInst::Alu {
            op: BinOp::Sub,
            rd: SP,
            rs1: SP,
            rs2: SCRATCH1,
        });
        for (i, r) in e.saved.clone().iter().enumerate() {
            e.insts.push(AsmInst::Sw {
                src: *r,
                base: SP,
                off: (i as i32) * 4,
            });
        }
    }
    // Move incoming arguments to their allocated homes.
    assert!(
        f.params <= ARG_REGS.len(),
        "EM32 calling convention passes at most {} register arguments",
        ARG_REGS.len()
    );
    for (p, arg_reg) in ARG_REGS.iter().enumerate().take(f.params) {
        let v = VReg(p as u32);
        match alloc.loc.get(&v) {
            Some(Loc::Reg(r)) => e.insts.push(AsmInst::Mv {
                rd: *r,
                rs: *arg_reg,
            }),
            Some(Loc::Slot(s)) => {
                let off = e.slot_off(*s);
                e.insts.push(AsmInst::Sw {
                    src: *arg_reg,
                    base: SP,
                    off,
                });
            }
            None => {}
        }
    }
    for b in f.block_ids() {
        e.insts.push(AsmInst::Label(b.0 as usize));
        for inst in &f.block(b).insts {
            e.emit_inst(inst)?;
        }
        let term = f.block(b).term.clone();
        e.emit_term(&term)?;
    }
    let mut insts = e.insts;
    peephole(&mut insts);
    Ok(AsmFunction {
        name: f.name.clone(),
        exported: f.exported,
        insts,
    })
}

/// Local cleanups: drop no-op moves and jumps to the immediately following
/// label.
fn peephole(insts: &mut Vec<AsmInst>) {
    loop {
        let mut changed = false;
        let mut out: Vec<AsmInst> = Vec::with_capacity(insts.len());
        let mut i = 0;
        while i < insts.len() {
            match &insts[i] {
                AsmInst::Mv { rd, rs } if rd == rs => {
                    changed = true;
                }
                AsmInst::J { label } => {
                    // Find the next non-label instruction; if our target
                    // label occurs before it, the jump is a fallthrough.
                    let mut j = i + 1;
                    let mut falls_through = false;
                    while j < insts.len() {
                        match &insts[j] {
                            AsmInst::Label(l) => {
                                if l == label {
                                    falls_through = true;
                                    break;
                                }
                                j += 1;
                            }
                            _ => break,
                        }
                    }
                    if falls_through {
                        changed = true;
                    } else {
                        out.push(insts[i].clone());
                    }
                }
                other => out.push(other.clone()),
            }
            i += 1;
        }
        *insts = out;
        if !changed {
            return;
        }
    }
}

/// Assembles a whole program: per-function compilation, layout, data-image
/// relocation.
pub fn compile_program(program: &Program, level: OptLevel) -> Result<Assembly, CompileError> {
    let mut functions = Vec::new();
    for f in &program.functions {
        functions.push(compile_function(f, level)?);
    }
    // Text layout.
    let mut fn_addrs = Vec::with_capacity(functions.len());
    let mut cursor = TEXT_BASE;
    for f in &functions {
        fn_addrs.push(cursor);
        cursor += f.text_size() as u32;
    }
    // Data layout + relocation of function addresses.
    let mut globals = Vec::new();
    let mut offset = 0u32;
    for g in &program.globals {
        let words: Vec<i32> = g
            .words
            .iter()
            .map(|w| match w {
                Word::Int(v) => *v,
                Word::FnAddr(i) => fn_addrs[*i] as i32,
            })
            .collect();
        globals.push(AsmGlobal {
            name: g.name.clone(),
            words,
            mutable: g.mutable,
            offset,
        });
        offset += g.size as u32;
    }
    Ok(Assembly {
        functions,
        globals,
        externs: program.externs.clone(),
        fn_addrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::Block;

    fn tiny_fn(name: &str, value: i32) -> MirFunction {
        MirFunction {
            name: name.into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![Block {
                insts: vec![Inst::Const {
                    dst: VReg(0),
                    value,
                }],
                term: Term::Ret(Some(VReg(0))),
            }],
            next_vreg: 1,
        }
    }

    #[test]
    fn compiles_tiny_function() {
        let f = tiny_fn("t", 7);
        let asm = compile_function(&f, OptLevel::O1).expect("compiles");
        assert!(asm.text_size() > 0);
        assert!(asm.insts.iter().any(|i| matches!(i, AsmInst::Ret)));
    }

    #[test]
    fn large_immediates_cost_more() {
        let small = compile_function(&tiny_fn("s", 7), OptLevel::O1).expect("ok");
        let large = compile_function(&tiny_fn("l", 1_000_000), OptLevel::O1).expect("ok");
        assert!(large.text_size() > small.text_size());
    }

    #[test]
    fn peephole_removes_fallthrough_jumps() {
        let mut insts = vec![AsmInst::J { label: 1 }, AsmInst::Label(1), AsmInst::Ret];
        peephole(&mut insts);
        assert_eq!(insts.len(), 2);
    }

    #[test]
    fn peephole_keeps_real_jumps() {
        let mut insts = vec![
            AsmInst::J { label: 2 },
            AsmInst::Label(1),
            AsmInst::Ret,
            AsmInst::Label(2),
            AsmInst::Ret,
        ];
        peephole(&mut insts);
        assert!(insts.iter().any(|i| matches!(i, AsmInst::J { .. })));
    }

    #[test]
    fn switch_lowering_strategy_depends_on_level() {
        let cases: Vec<(i32, BlockId)> = (0..8).map(|i| (i, BlockId(1))).collect();
        for (level, expect_table) in [(OptLevel::O1, false), (OptLevel::Os, true)] {
            let f = MirFunction {
                name: "sw".into(),
                params: 1,
                returns_value: false,
                exported: true,
                blocks: vec![
                    Block {
                        insts: vec![],
                        term: Term::Switch {
                            val: VReg(0),
                            cases: cases.clone(),
                            default: BlockId(1),
                        },
                    },
                    Block {
                        insts: vec![],
                        term: Term::Ret(None),
                    },
                ],
                next_vreg: 1,
            };
            let asm = compile_function(&f, level).expect("compiles");
            let has_table = asm
                .insts
                .iter()
                .any(|i| matches!(i, AsmInst::JumpTable { .. }));
            assert_eq!(has_table, expect_table, "{level}");
        }
    }

    #[test]
    fn program_layout_assigns_addresses_and_relocates() {
        let p = Program {
            functions: vec![tiny_fn("a", 1), tiny_fn("b", 2)],
            globals: vec![crate::mir::GlobalData {
                name: "tbl".into(),
                size: 8,
                words: vec![Word::FnAddr(1), Word::Int(5)],
                mutable: false,
            }],
            externs: vec![],
        };
        let asm = compile_program(&p, OptLevel::O1).expect("assembles");
        assert_eq!(asm.fn_addrs.len(), 2);
        assert!(asm.fn_addrs[1] > asm.fn_addrs[0]);
        assert_eq!(asm.globals[0].words[0], asm.fn_addrs[1] as i32);
        let sizes = asm.sizes();
        assert_eq!(sizes.rodata, 8);
        assert!(sizes.total() > 8);
    }

    #[test]
    fn listing_is_readable() {
        let p = Program {
            functions: vec![tiny_fn("main", 3)],
            globals: vec![],
            externs: vec![],
        };
        let asm = compile_program(&p, OptLevel::O1).expect("assembles");
        let text = asm.listing();
        assert!(text.contains("main:"));
        assert!(text.contains("Ret"));
    }
}
