//! The EM32 virtual machines: a pre-decoded fast engine and a reference
//! oracle, kept trace-equal by contract and by the differential net.
//!
//! This module is the canonical two-engine execution contract. Two
//! engines execute the same [`Assembly`](crate::backend::Assembly):
//!
//! * **The oracle** ([`Vm`]) walks the [`AsmInst`](crate::backend::AsmInst)
//!   stream exactly as the emitter produced it (and as the pretty-printer
//!   prints it): label markers are skipped in place, branch targets are
//!   looked up in per-function label maps, calls are resolved by function
//!   index, indirect calls by a linear scan of the address table. Nothing
//!   is precomputed beyond the label maps, so the oracle is a direct
//!   transcription of the EM32 semantics — slow, but obviously faithful.
//!   It exists to *validate*: a compiled program must reproduce the
//!   extern-call trace of the `tlang` reference interpreter, and the fast
//!   engine must reproduce the oracle's.
//! * **The fast engine** ([`FastVm`]) executes a [`DecodedProgram`] — a
//!   one-time pre-decode of the assembly into one flat, dense array of
//!   `Copy` micro-ops shared by all functions — in a tight threaded-style
//!   dispatch loop: fetch `ops[pc]`, advance, one `match`, no per-step
//!   allocation, cloning, or name/label lookup of any kind.
//!
//! # Decode invariants
//!
//! [`DecodedProgram::decode`] establishes, or fails with a
//! [`DecodeError`] — at decode time, never at dispatch time:
//!
//! * every branch and jump-table target resolves to a valid op index of
//!   the same function (undefined labels are a decode error, so the
//!   oracle's [`VmError::BadLabel`] has no fast-engine counterpart);
//! * every direct-call target is a valid function entry, every extern
//!   index names a declared extern (passing at most the four argument
//!   registers of the calling convention), every global index an
//!   existing global;
//! * label markers are erased entirely — they occupy no slot;
//! * address formation (`La`/`LaFn`) is pre-split into plain immediate
//!   loads of the absolute address;
//! * every function's op range ends in an explicit `Ret`: decode appends
//!   one, so "falling off the end" (a void tail) is ordinary dispatch;
//! * jump-table targets live in one flat side pool, keeping every op
//!   `Copy` and the instruction array dense;
//! * writes to the hardwired-zero register decay to `Nop` at decode time
//!   (`rd == 0` on `Li`/`Mv`/`Alu`/`La`/`LaFn`), so dispatch writes
//!   destination registers unconditionally and `regs[0] == 0` is an
//!   invariant, never a per-step check (`Lw` to `r0` is the one
//!   exception: it keeps its fault check, guards its write in dispatch,
//!   and is excluded from fusion);
//! * indirect-call resolution is a dense table: `code_map[(addr -
//!   TEXT_BASE) / 2]` maps every 2-aligned code address to its function's
//!   entry op index, or a poison value for addresses inside a function
//!   body — no search at dispatch time. Function addresses below
//!   `TEXT_BASE` or not 2-aligned are a decode error.
//!
//! # Superinstruction fusion
//!
//! After per-function decode, a peephole pass fuses hot adjacent
//! fall-through pairs (`Li`+`Alu`, `Li`+`Li`, `Alu`+`Alu`, `Alu`+branch,
//! `Lw`+`Lw`, `Sw`+`Sw`, immediates permitting) into single fused ops
//! with nibble-packed register fields. Fusion preserves the slot
//! numbering: the second instruction of a fused pair *keeps* its plain op
//! in place, and the fused op skips it with an extra `pc` bump — so
//! branches into the middle of a pair stay valid and no target needs
//! rewriting. Each fused op re-checks fuel between its two halves, so
//! `OutOfFuel` faults land at exactly the same instruction boundary as on
//! the oracle, trace and count included.
//!
//! Only genuinely run-time faults remain at dispatch time: memory faults,
//! indirect calls to non-entry addresses, host rejections, and fuel
//! exhaustion.
//!
//! # Op coverage
//!
//! The fast engine exports a cheap coverage hook for fuzzing harnesses:
//! [`FastVm::run_with_coverage`] takes any [`CoverageSink`] and reports
//! the decoded-op index of every fetch to it. [`OpCoverage`] is the
//! standard sink — a fixed-size bitset over the program's op array
//! (one bit per [`DecodedProgram::op_count`] slot) with popcount and
//! merge — and [`NoCoverage`] is the zero-cost default that
//! [`FastVm::run`] monomorphizes away, so the plain dispatch loop stays
//! byte-for-byte the hot path the throughput gate locks.
//!
//! Coverage is recorded per *fetch*: a fused superinstruction lights the
//! bit of the pair's first slot only (its still-populated second slot is
//! lit only when a branch enters the pair mid-way). That makes the set
//! deterministic for a deterministic program + input sequence — the
//! property the fuzzer's corpus selection (keep inputs that light new
//! ops) depends on, and the one `occ::vm` unit tests pin.
//!
//! # Dispatch loop shape
//!
//! The fast engine's whole interpreter loop is: check fuel, fetch
//! `ops[pc]` (a `Copy` of a few bytes), pre-increment `pc`, and execute
//! one `match` arm; taken branches overwrite `pc` with a pre-resolved
//! absolute index. Calls push the return op index on an internal stack.
//! Register file and memory image are flat arrays owned by the engine.
//!
//! # What the oracle guarantees (the shared fuel/trace contract)
//!
//! Both engines implement [`Engine`] and must agree, for the same
//! program, entry point, arguments and fuel budget, on:
//!
//! * the returned value or the failure kind ([`VmError`] variants compare
//!   by kind and payload; `BadLabel` cannot occur on the fast path);
//! * the extern-call trace as observed by the host environment, even on
//!   a failed run (the trace up to the fault is identical);
//! * the executed-instruction count ([`Engine::executed`]): every
//!   instruction costs exactly one fuel unit, labels are free (they are
//!   zero-size markers, not instructions), and a void tail's implicit
//!   return costs one like the explicit `Ret` the decoder materializes.
//!
//! That deterministic count is the time-like axis of the bench
//! trajectory: `bench --bin throughput` reports it per machine × pattern
//! × level cell and the regression gate locks it, so an "optimization"
//! that shrinks bytes but inflates dynamic instructions fails CI. The
//! MIR differential net (`tests/mir_differential.rs`) holds the two
//! engines to this contract over the generated corpus at every level,
//! including fuel-exhaustion points.
//!
//! # Example
//!
//! ```
//! use occ::vm::{DecodedProgram, Engine, FastVm, Vm};
//! use occ::{compile, OptLevel};
//! use tlang::{Expr, Function, Module, Stmt, Type, RecordingEnv};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut module = Module::new("demo");
//! module.push_function(Function {
//!     name: "answer".into(),
//!     params: vec![],
//!     ret: Type::I32,
//!     body: vec![Stmt::Return(Some(Expr::Int(40).add(Expr::Int(2))))],
//!     exported: true,
//! });
//! let artifact = compile(&module, OptLevel::Os)?;
//!
//! // The artifact carries the pre-decoded program; the fast engine and
//! // the oracle agree on result and executed-instruction count.
//! let mut fast = FastVm::new(artifact.decoded(), RecordingEnv::new());
//! let mut oracle = Vm::new(artifact.assembly(), RecordingEnv::new());
//! assert_eq!(fast.run("answer", &[])?, 42);
//! assert_eq!(oracle.run("answer", &[])?, 42);
//! assert_eq!(fast.executed(), oracle.executed());
//! # Ok(())
//! # }
//! ```

use std::fmt;

mod decode;
mod dispatch;
mod oracle;

pub use decode::{DecodeError, DecodedProgram};
pub use dispatch::FastVm;
pub use oracle::Vm;

/// Bytes reserved for the stack above the data image.
pub(crate) const STACK_SIZE: usize = 64 * 1024;
/// Register index of the stack pointer.
pub(crate) const SP: usize = 14;
/// Default instruction budget of a fresh engine.
pub(crate) const DEFAULT_FUEL: u64 = 50_000_000;

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Call of an unknown exported function.
    UnknownFunction(String),
    /// Memory access outside the address space.
    MemoryFault {
        /// Offending byte address.
        addr: i64,
    },
    /// Indirect call to an address that is not a function entry.
    BadCodeAddress(i32),
    /// Branch to a label the function does not define (assembler bug;
    /// oracle only — the fast engine rejects these at decode time).
    BadLabel(usize),
    /// The instruction budget was exhausted.
    OutOfFuel,
    /// The host environment rejected an extern call.
    Host(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnknownFunction(n) => write!(f, "unknown exported function `{n}`"),
            VmError::MemoryFault { addr } => write!(f, "memory fault at 0x{addr:x}"),
            VmError::BadCodeAddress(a) => write!(f, "indirect call to bad address 0x{a:x}"),
            VmError::BadLabel(l) => write!(f, "branch to undefined label {l}"),
            VmError::OutOfFuel => write!(f, "instruction budget exhausted"),
            VmError::Host(msg) => write!(f, "host rejected extern call: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

/// The shared engine interface: what both EM32 execution engines expose,
/// so harnesses (the MIR differential net, the throughput bench) can
/// drive either one generically and diff them.
///
/// Implementations must honour the fuel/trace contract in the
/// [module docs](self): one fuel unit per executed instruction, identical
/// traces, faults and [`executed`](Engine::executed) counts for the same
/// program and inputs.
pub trait Engine {
    /// Calls an exported function with up to four arguments; returns the
    /// value left in `r1`. Memory persists across calls, matching how the
    /// compiled program would behave on a device.
    ///
    /// # Errors
    ///
    /// See [`VmError`].
    fn call(&mut self, name: &str, args: &[i32]) -> Result<i32, VmError>;

    /// Instructions executed so far, accumulated across
    /// [`call`](Engine::call)s. Labels are free; a void tail's implicit
    /// return counts as one. Deterministic for a deterministic program +
    /// input sequence — the regression-gated "time" metric.
    fn executed(&self) -> u64;

    /// Replaces the remaining instruction budget.
    fn set_fuel(&mut self, fuel: u64);
}

/// A consumer of per-fetch op-coverage events from the fast engine.
///
/// [`FastVm::run_with_coverage`] calls [`record`](CoverageSink::record)
/// with the decoded-op index of every fetch (fused pairs report their
/// first slot; see the [module docs](self)). Implementations must be
/// cheap — the hook sits inside the dispatch loop.
pub trait CoverageSink {
    /// Observes one fetched decoded-op index.
    fn record(&mut self, op_index: u32);
}

/// The zero-cost [`CoverageSink`]: every record call inlines to nothing,
/// so [`FastVm::run`] keeps the exact uninstrumented dispatch loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCoverage;

impl CoverageSink for NoCoverage {
    #[inline(always)]
    fn record(&mut self, _op_index: u32) {}
}

/// A bitset of executed decoded-op indices — the standard
/// [`CoverageSink`] for coverage-guided fuzzing (`bench::fuzz` keeps a
/// corpus entry whenever its run lights bits no earlier run did).
///
/// Out-of-range indices are ignored rather than growing the set, so a
/// sink sized with [`OpCoverage::for_program`] can never allocate inside
/// the dispatch loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCoverage {
    bits: Vec<u64>,
    ops: usize,
}

impl OpCoverage {
    /// An empty set over `op_count` decoded-op slots.
    pub fn new(op_count: usize) -> OpCoverage {
        OpCoverage {
            bits: vec![0; op_count.div_ceil(64)],
            ops: op_count,
        }
    }

    /// An empty set sized for `prog`'s op array.
    pub fn for_program(prog: &DecodedProgram) -> OpCoverage {
        OpCoverage::new(prog.op_count())
    }

    /// Number of op slots the set ranges over.
    pub fn op_count(&self) -> usize {
        self.ops
    }

    /// Number of distinct op indices recorded so far.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether op index `i` has been recorded.
    pub fn covers(&self, i: usize) -> bool {
        self.bits
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Unions `other` into `self`; returns how many bits were *newly*
    /// set — the fuzzer's "did this input reach anything new" signal.
    pub fn merge(&mut self, other: &OpCoverage) -> usize {
        let mut fresh = 0;
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            let new = o & !*w;
            fresh += new.count_ones() as usize;
            *w |= new;
        }
        fresh
    }
}

impl CoverageSink for OpCoverage {
    #[inline]
    fn record(&mut self, op_index: u32) {
        let i = op_index as usize;
        if let Some(w) = self.bits.get_mut(i / 64) {
            *w |= 1u64 << (i % 64);
        }
    }
}

/// Builds the initial memory image for an assembly's globals: the data
/// segment at [`DATA_BASE`](crate::backend::DATA_BASE) followed by
/// [`STACK_SIZE`] zeroed stack bytes. Shared by both engines so their
/// address spaces are bit-identical.
pub(crate) fn initial_memory(globals: &[crate::backend::AsmGlobal]) -> Vec<u8> {
    let data_len: usize = globals.iter().map(|g| g.words.len() * 4).sum();
    let mem_len = crate::backend::DATA_BASE as usize + data_len + STACK_SIZE;
    let mut mem = vec![0u8; mem_len];
    for g in globals {
        let base = crate::backend::DATA_BASE as usize + g.offset as usize;
        for (i, w) in g.words.iter().enumerate() {
            mem[base + i * 4..base + i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
    }
    mem
}
