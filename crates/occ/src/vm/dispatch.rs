//! The fast EM32 engine: a tight threaded-style dispatch loop over a
//! [`DecodedProgram`] (see the [module docs](super) for the loop shape
//! and the contract it shares with the oracle).

use tlang::{Env, Value};

use super::decode::{DecodedProgram, Op, BINOP_FROM_NIBBLE};
use super::{CoverageSink, Engine, NoCoverage, VmError, DEFAULT_FUEL, SP};

/// The fast EM32 machine instance. Executes pre-decoded micro-ops; like
/// the oracle, memory persists across [`run`](FastVm::run) calls.
pub struct FastVm<'a, E> {
    prog: &'a DecodedProgram,
    mem: Vec<u8>,
    regs: [i32; 16],
    env: E,
    fuel: u64,
    executed: u64,
    /// Return-pc stack, kept on the machine so repeated short calls
    /// (event dispatch) don't pay a fresh allocation each time.
    stack: Vec<u32>,
    /// Memo of the last entry lookup: event storms call the same one or
    /// two exported functions millions of times.
    last_entry: Option<(String, u32)>,
}

impl<'a, E: Env> FastVm<'a, E> {
    /// Creates a machine with the program's data image loaded.
    pub fn new(prog: &'a DecodedProgram, env: E) -> FastVm<'a, E> {
        FastVm {
            prog,
            mem: prog.mem.clone(),
            regs: [0; 16],
            env,
            fuel: DEFAULT_FUEL,
            executed: 0,
            stack: Vec::new(),
            last_entry: None,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The host environment (e.g. a recorded trace).
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Consumes the machine, returning the host environment.
    pub fn into_env(self) -> E {
        self.env
    }

    /// Instructions executed so far (see [`Engine::executed`]).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Calls an exported function with up to four arguments; returns `r1`.
    ///
    /// # Errors
    ///
    /// See [`VmError`] (everything but `BadLabel`, which the decoder has
    /// already ruled out).
    pub fn run(&mut self, name: &str, args: &[i32]) -> Result<i32, VmError> {
        // `NoCoverage::record` inlines to nothing, so this
        // monomorphization *is* the uninstrumented hot loop.
        self.run_with_coverage(name, args, &mut NoCoverage)
    }

    /// [`run`](FastVm::run), reporting every fetched decoded-op index to
    /// `cov` (fused pairs report the pair's first slot; see the
    /// [module docs](super) on coverage).
    ///
    /// # Errors
    ///
    /// See [`VmError`].
    pub fn run_with_coverage<C: CoverageSink>(
        &mut self,
        name: &str,
        args: &[i32],
        cov: &mut C,
    ) -> Result<i32, VmError> {
        let prog = self.prog;
        let entry = match &self.last_entry {
            // Event storms call the same exported function millions of
            // times; one short string compare replaces the table walk.
            Some((cached, e)) if cached == name => *e,
            _ => {
                let e = prog
                    .entry_of(name)
                    .ok_or_else(|| VmError::UnknownFunction(name.to_string()))?;
                self.last_entry = Some((name.to_string(), e));
                e
            }
        };
        for (i, a) in args.iter().enumerate().take(4) {
            self.regs[1 + i] = *a;
        }
        self.regs[SP] = self.mem.len() as i32;
        // The destructure splits `self` into disjoint borrows, so the
        // dispatch loop indexes straight into the fields (no per-call
        // copy of the register file) while the fuel counter — the one
        // per-step scalar — lives in a local. Everything is written back
        // on every exit path — including faults, whose executed counts
        // the oracle must match.
        let FastVm {
            regs,
            mem,
            env,
            stack,
            ..
        } = self;
        stack.clear();
        let ops: &[Op] = &prog.ops;
        let fuel_start = self.fuel;
        let mut fuel = self.fuel;
        let mut pc = entry as usize;
        // The whole interpreter: check fuel, fetch a Copy op, advance,
        // one match. Taken branches overwrite `pc` with a pre-resolved
        // absolute index; nothing is looked up by name or label.
        let result = loop {
            if fuel == 0 {
                break Err(VmError::OutOfFuel);
            }
            fuel -= 1;
            cov.record(pc as u32);
            let op = ops[pc];
            pc += 1;
            match op {
                Op::Nop => {}
                // The decoder rewrote every `r0`-destination write to
                // `Nop`, so these stores are unconditional — `regs[0]`
                // can never be clobbered.
                Op::Li { rd, imm } => regs[(rd & 15) as usize] = imm,
                Op::Mv { rd, rs } => regs[(rd & 15) as usize] = regs[(rs & 15) as usize],
                Op::Alu { op, rd, rs1, rs2 } => {
                    regs[(rd & 15) as usize] =
                        op.eval(regs[(rs1 & 15) as usize], regs[(rs2 & 15) as usize]);
                }
                Op::Lw { rd, base, off } => {
                    match checked_load(mem, i64::from(regs[(base & 15) as usize]) + i64::from(off))
                    {
                        Ok(v) => {
                            if rd != 0 {
                                regs[(rd & 15) as usize] = v;
                            }
                        }
                        Err(e) => break Err(e),
                    }
                }
                Op::Sw { src, base, off } => {
                    let v = regs[(src & 15) as usize];
                    if let Err(e) = checked_store(
                        mem,
                        i64::from(regs[(base & 15) as usize]) + i64::from(off),
                        v,
                    ) {
                        break Err(e);
                    }
                }
                Op::Beq { rs1, rs2, target } => {
                    if regs[(rs1 & 15) as usize] == regs[(rs2 & 15) as usize] {
                        pc = target as usize;
                    }
                }
                Op::Bne { rs1, rs2, target } => {
                    if regs[(rs1 & 15) as usize] != regs[(rs2 & 15) as usize] {
                        pc = target as usize;
                    }
                }
                Op::Jmp { target } => pc = target as usize,
                Op::Call { entry } => {
                    stack.push(pc as u32);
                    pc = entry as usize;
                }
                Op::CallInd { rs } => {
                    let addr = regs[(rs & 15) as usize];
                    let off = i64::from(addr) - i64::from(crate::backend::TEXT_BASE);
                    let target = if off >= 0 && off % 2 == 0 {
                        prog.code_map
                            .get((off / 2) as usize)
                            .copied()
                            .unwrap_or(u32::MAX)
                    } else {
                        u32::MAX
                    };
                    if target == u32::MAX {
                        break Err(VmError::BadCodeAddress(addr));
                    }
                    stack.push(pc as u32);
                    pc = target as usize;
                }
                Op::Ecall {
                    ext,
                    nargs,
                    returns,
                } => {
                    let name = &prog.externs[ext as usize];
                    // Up to four register arguments by the EM32 calling
                    // convention: an exact-size stack buffer per arity,
                    // no per-call heap and no unused `Value` drops.
                    let buf: [Value; 4];
                    let args: &[Value] = match nargs {
                        0 => &[],
                        1 => {
                            buf = [
                                Value::Int(regs[1]),
                                Value::Int(0),
                                Value::Int(0),
                                Value::Int(0),
                            ];
                            &buf[..1]
                        }
                        2 => {
                            buf = [
                                Value::Int(regs[1]),
                                Value::Int(regs[2]),
                                Value::Int(0),
                                Value::Int(0),
                            ];
                            &buf[..2]
                        }
                        3 => {
                            buf = [
                                Value::Int(regs[1]),
                                Value::Int(regs[2]),
                                Value::Int(regs[3]),
                                Value::Int(0),
                            ];
                            &buf[..3]
                        }
                        _ => {
                            buf = [
                                Value::Int(regs[1]),
                                Value::Int(regs[2]),
                                Value::Int(regs[3]),
                                Value::Int(regs[4]),
                            ];
                            &buf[..4]
                        }
                    };
                    match env.call_extern(name, args) {
                        Ok(result) => {
                            if returns {
                                regs[1] = match result {
                                    Value::Int(v) => v,
                                    Value::Bool(b) => i32::from(b),
                                    _ => 0,
                                };
                            }
                        }
                        Err(msg) => break Err(VmError::Host(msg)),
                    }
                }
                Op::Ret => match stack.pop() {
                    Some(rpc) => pc = rpc as usize,
                    None => break Ok(regs[1]),
                },
                // Fused pairs: two instructions per fetch. Each arm
                // re-checks fuel between its halves so `OutOfFuel` lands
                // on exactly the same step as in the oracle; `pc` ends up
                // past the pair's (still-populated) second slot.
                Op::LiAlu { op, rds, rss, imm } => {
                    regs[(rds >> 4) as usize] = i32::from(imm);
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    regs[(rds & 15) as usize] =
                        op.eval(regs[(rss >> 4) as usize], regs[(rss & 15) as usize]);
                    pc += 1;
                }
                Op::LiAluI { op, rds, rs1, imm } => {
                    let imm = i32::from(imm);
                    regs[(rds >> 4) as usize] = imm;
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    regs[(rds & 15) as usize] = op.eval(regs[(rs1 & 15) as usize], imm);
                    pc += 1;
                }
                Op::LiAluIL { op, rds, rs2, imm } => {
                    let imm = i32::from(imm);
                    regs[(rds >> 4) as usize] = imm;
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    regs[(rds & 15) as usize] = op.eval(imm, regs[(rs2 & 15) as usize]);
                    pc += 1;
                }
                Op::LiLi { rds, imm1, imm2 } => {
                    regs[(rds >> 4) as usize] = i32::from(imm1);
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    regs[(rds & 15) as usize] = i32::from(imm2);
                    pc += 1;
                }
                Op::AluAlu { ops: o, a, b, c } => {
                    regs[(a >> 4) as usize] = BINOP_FROM_NIBBLE[(o >> 4) as usize]
                        .eval(regs[(a & 15) as usize], regs[(b >> 4) as usize]);
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    regs[(b & 15) as usize] = BINOP_FROM_NIBBLE[(o & 15) as usize]
                        .eval(regs[(c >> 4) as usize], regs[(c & 15) as usize]);
                    pc += 1;
                }
                Op::AluBr {
                    ops: o,
                    a,
                    b,
                    c,
                    target,
                } => {
                    regs[(a >> 4) as usize] = BINOP_FROM_NIBBLE[(o >> 4) as usize]
                        .eval(regs[(a & 15) as usize], regs[(b >> 4) as usize]);
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    let taken =
                        (regs[(b & 15) as usize] == regs[(c >> 4) as usize]) == (o & 1 == 1);
                    if taken {
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                // `try_fuse` refuses `Lw` pairs with an `r0` destination
                // (a plain `Lw` to `r0` keeps its fault check but must
                // not write), so both stores are unconditional here.
                Op::LwLw {
                    rds,
                    bases,
                    off1,
                    off2,
                } => {
                    match checked_load(
                        mem,
                        i64::from(regs[(bases >> 4) as usize]) + i64::from(off1),
                    ) {
                        Ok(v) => regs[(rds >> 4) as usize] = v,
                        Err(e) => break Err(e),
                    }
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    match checked_load(
                        mem,
                        i64::from(regs[(bases & 15) as usize]) + i64::from(off2),
                    ) {
                        Ok(v) => regs[(rds & 15) as usize] = v,
                        Err(e) => break Err(e),
                    }
                    pc += 1;
                }
                Op::SwSw {
                    srcs,
                    bases,
                    off1,
                    off2,
                } => {
                    let v = regs[(srcs >> 4) as usize];
                    if let Err(e) = checked_store(
                        mem,
                        i64::from(regs[(bases >> 4) as usize]) + i64::from(off1),
                        v,
                    ) {
                        break Err(e);
                    }
                    if fuel == 0 {
                        break Err(VmError::OutOfFuel);
                    }
                    fuel -= 1;
                    let v = regs[(srcs & 15) as usize];
                    if let Err(e) = checked_store(
                        mem,
                        i64::from(regs[(bases & 15) as usize]) + i64::from(off2),
                        v,
                    ) {
                        break Err(e);
                    }
                    pc += 1;
                }
                Op::Table { meta } => {
                    let t = prog.table_meta[meta as usize];
                    let v = i64::from(regs[(t.rs & 15) as usize]) - i64::from(t.lo);
                    pc = if v >= 0 && v < i64::from(t.len) {
                        prog.tables[(t.start + v as u32) as usize] as usize
                    } else {
                        t.default as usize
                    };
                }
            }
        };
        self.fuel = fuel;
        // One fuel unit per executed instruction, so the count falls out
        // of the budget delta.
        self.executed += fuel_start - fuel;
        result
    }
}

fn checked_load(mem: &[u8], addr: i64) -> Result<i32, VmError> {
    let a = usize::try_from(addr).map_err(|_| VmError::MemoryFault { addr })?;
    match mem.get(a..a + 4) {
        Some(bytes) => Ok(i32::from_le_bytes(bytes.try_into().expect("4 bytes"))),
        None => Err(VmError::MemoryFault { addr }),
    }
}

fn checked_store(mem: &mut [u8], addr: i64, value: i32) -> Result<(), VmError> {
    let a = usize::try_from(addr).map_err(|_| VmError::MemoryFault { addr })?;
    match mem.get_mut(a..a + 4) {
        Some(bytes) => {
            bytes.copy_from_slice(&value.to_le_bytes());
            Ok(())
        }
        None => Err(VmError::MemoryFault { addr }),
    }
}

impl<E: Env> Engine for FastVm<'_, E> {
    fn call(&mut self, name: &str, args: &[i32]) -> Result<i32, VmError> {
        self.run(name, args)
    }

    fn executed(&self) -> u64 {
        self.executed
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }
}

#[cfg(test)]
mod tests {
    use super::super::Vm;
    use super::*;
    use crate::backend::{AsmFunction, AsmInst, Assembly, RegAllocStats};
    use crate::{compile, OptLevel};
    use tlang::{Expr, ExternDecl, Function, Module, Place, RecordingEnv, Stmt, Type};

    /// Runs both engines on the same compiled module and asserts the full
    /// contract: result, extern trace and executed count all agree.
    fn assert_parity(m: &Module, entry: &str, args: &[i32]) {
        m.check().expect("typed");
        for level in OptLevel::all() {
            let artifact = compile(m, level).expect("compiles");
            let mut fast = FastVm::new(artifact.decoded(), RecordingEnv::new());
            let mut oracle = Vm::new(artifact.assembly(), RecordingEnv::new());
            let rf = fast.run(entry, args);
            let ro = oracle.run(entry, args);
            assert_eq!(rf, ro, "{level}: results diverge");
            assert_eq!(
                fast.executed(),
                oracle.executed(),
                "{level}: executed counts diverge"
            );
            assert_eq!(
                fast.into_env().calls,
                oracle.into_env().calls,
                "{level}: extern traces diverge"
            );
        }
    }

    #[test]
    fn loop_with_externs_full_parity() {
        let mut m = Module::new("m");
        m.push_extern(ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32],
            ret: Type::Void,
        });
        m.push_function(Function {
            name: "main".into(),
            params: vec![("n".into(), Type::I32)],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "i".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::While {
                    cond: Expr::var("i").bin(tlang::BinOp::Lt, Expr::var("n")),
                    body: vec![
                        Stmt::Expr(Expr::Call("env_emit".into(), vec![Expr::var("i")])),
                        Stmt::Assign {
                            place: Place::var("i"),
                            value: Expr::var("i").add(Expr::Int(1)),
                        },
                    ],
                },
                Stmt::Return(Some(Expr::var("i"))),
            ],
            exported: true,
        });
        assert_parity(&m, "main", &[5]);
    }

    #[test]
    fn switch_dispatch_parity() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "sel".into(),
            params: vec![("k".into(), Type::I32)],
            ret: Type::I32,
            body: vec![Stmt::Switch {
                scrutinee: Expr::var("k"),
                cases: (0..8)
                    .map(|i| (i, vec![Stmt::Return(Some(Expr::Int(100 + i)))]))
                    .collect(),
                default: vec![Stmt::Return(Some(Expr::Int(-1)))],
            }],
            exported: true,
        });
        m.check().expect("typed");
        for k in -1..9 {
            assert_parity(&m, "sel", &[k]);
        }
    }

    fn raw(insts: Vec<AsmInst>) -> Assembly {
        Assembly {
            functions: vec![AsmFunction {
                name: "f".into(),
                exported: true,
                insts,
                stats: RegAllocStats::default(),
            }],
            globals: vec![],
            externs: vec![],
            fn_addrs: vec![0x100_0000],
        }
    }

    /// Both engines on a hand-built assembly: same fault kind and payload,
    /// same executed count up to the fault.
    fn assert_fault_parity(asm: &Assembly, expected: VmError) {
        let prog = DecodedProgram::decode(asm).expect("decodes");
        let mut fast = FastVm::new(&prog, RecordingEnv::new());
        let mut oracle = Vm::new(asm, RecordingEnv::new());
        assert_eq!(fast.run("f", &[]), Err(expected.clone()));
        assert_eq!(oracle.run("f", &[]), Err(expected));
        assert_eq!(fast.executed(), oracle.executed());
    }

    #[test]
    fn memory_fault_parity() {
        // Negative address...
        assert_fault_parity(
            &raw(vec![
                AsmInst::Li { rd: 5, imm: -8 },
                AsmInst::Lw {
                    rd: 1,
                    base: 5,
                    off: 0,
                },
            ]),
            VmError::MemoryFault { addr: -8 },
        );
        // ...and past the end of the address space, on the store path.
        assert_fault_parity(
            &raw(vec![
                AsmInst::Li {
                    rd: 5,
                    imm: i32::MAX,
                },
                AsmInst::Sw {
                    src: 0,
                    base: 5,
                    off: 0,
                },
            ]),
            VmError::MemoryFault {
                addr: i64::from(i32::MAX),
            },
        );
    }

    #[test]
    fn bad_code_address_parity() {
        // An indirect call through a register holding a non-entry address
        // is the one target resolution that stays run-time in both
        // engines.
        assert_fault_parity(
            &raw(vec![
                AsmInst::Li { rd: 5, imm: 1234 },
                AsmInst::Jalr { rs: 5 },
            ]),
            VmError::BadCodeAddress(1234),
        );
    }

    #[test]
    fn unknown_function_parity() {
        let asm = raw(vec![AsmInst::Ret]);
        let prog = DecodedProgram::decode(&asm).expect("decodes");
        let mut fast = FastVm::new(&prog, RecordingEnv::new());
        let mut oracle = Vm::new(&asm, RecordingEnv::new());
        assert_eq!(
            fast.run("nope", &[]),
            Err(VmError::UnknownFunction("nope".into()))
        );
        assert_eq!(
            oracle.run("nope", &[]),
            Err(VmError::UnknownFunction("nope".into()))
        );
    }

    #[test]
    fn fuel_exhaustion_parity_at_every_budget() {
        // For every fuel budget below the full cost, both engines must
        // fail identically; at the full cost, both must succeed. This
        // pins the per-instruction fuel accounting op by op.
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "i".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::While {
                    cond: Expr::var("i").bin(tlang::BinOp::Lt, Expr::Int(3)),
                    body: vec![Stmt::Assign {
                        place: Place::var("i"),
                        value: Expr::var("i").add(Expr::Int(1)),
                    }],
                },
                Stmt::Return(Some(Expr::var("i"))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        let artifact = compile(&m, OptLevel::O0).expect("compiles");
        let mut full = FastVm::new(artifact.decoded(), RecordingEnv::new());
        full.run("main", &[]).expect("runs");
        let cost = full.executed();
        assert!(cost > 4);
        for fuel in [0, 1, cost / 2, cost - 1] {
            let mut fast = FastVm::new(artifact.decoded(), RecordingEnv::new()).with_fuel(fuel);
            let mut oracle = Vm::new(artifact.assembly(), RecordingEnv::new()).with_fuel(fuel);
            assert_eq!(
                fast.run("main", &[]),
                Err(VmError::OutOfFuel),
                "fuel={fuel}"
            );
            assert_eq!(
                oracle.run("main", &[]),
                Err(VmError::OutOfFuel),
                "fuel={fuel}"
            );
            assert_eq!(fast.executed(), oracle.executed(), "fuel={fuel}");
            assert_eq!(
                fast.executed(),
                fuel,
                "fast engine burns exactly the budget"
            );
        }
        let mut fast = FastVm::new(artifact.decoded(), RecordingEnv::new()).with_fuel(cost);
        let mut oracle = Vm::new(artifact.assembly(), RecordingEnv::new()).with_fuel(cost);
        assert_eq!(fast.run("main", &[]).expect("exact budget"), 3);
        assert_eq!(oracle.run("main", &[]).expect("exact budget"), 3);
    }

    #[test]
    fn adjacent_loads_to_r0_keep_hardwired_zero() {
        // Two adjacent `Lw`s into `r0` must not fuse into `LwLw` (whose
        // arm writes both destinations unconditionally): after executing
        // them over a nonzero word, `r0` must still read as zero on both
        // engines.
        let asm = raw(vec![
            AsmInst::Li { rd: 5, imm: 0 },
            AsmInst::Li { rd: 6, imm: 99 },
            AsmInst::Sw {
                src: 6,
                base: 5,
                off: 0,
            },
            AsmInst::Lw {
                rd: 0,
                base: 5,
                off: 0,
            },
            AsmInst::Lw {
                rd: 0,
                base: 5,
                off: 0,
            },
            AsmInst::Mv { rd: 1, rs: 0 },
            AsmInst::Ret,
        ]);
        let prog = DecodedProgram::decode(&asm).expect("decodes");
        let mut fast = FastVm::new(&prog, RecordingEnv::new());
        let mut oracle = Vm::new(&asm, RecordingEnv::new());
        assert_eq!(fast.run("f", &[]), Ok(0), "r0 clobbered on fast engine");
        assert_eq!(oracle.run("f", &[]), Ok(0));
        assert_eq!(fast.executed(), oracle.executed());
    }

    /// A module whose dispatch takes visibly different paths per input:
    /// coverage over `sel(k)` must grow with new `k` and nothing else.
    fn coverage_module() -> Module {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "sel".into(),
            params: vec![("k".into(), Type::I32)],
            ret: Type::I32,
            body: vec![Stmt::Switch {
                scrutinee: Expr::var("k"),
                cases: (0..6)
                    .map(|i| {
                        (
                            i,
                            vec![Stmt::Return(Some(
                                Expr::Int(10 * i).add(Expr::var("k").add(Expr::Int(i))),
                            ))],
                        )
                    })
                    .collect(),
                default: vec![Stmt::Return(Some(Expr::Int(-1)))],
            }],
            exported: true,
        });
        m.check().expect("typed");
        m
    }

    fn coverage_of(prog: &DecodedProgram, inputs: &[i32]) -> super::super::OpCoverage {
        let mut cov = super::super::OpCoverage::for_program(prog);
        let mut vm = FastVm::new(prog, RecordingEnv::new());
        for k in inputs {
            vm.run_with_coverage("sel", &[*k], &mut cov).expect("runs");
        }
        cov
    }

    #[test]
    fn op_coverage_is_deterministic_across_runs() {
        let m = coverage_module();
        for level in OptLevel::all() {
            let artifact = compile(&m, level).expect("compiles");
            let prog = artifact.decoded();
            let a = coverage_of(prog, &[0, 3, 9]);
            let b = coverage_of(prog, &[0, 3, 9]);
            // Bit-identical sets for the same program + input sequence —
            // the property corpus selection depends on.
            assert_eq!(a, b, "{level}: coverage not deterministic");
            assert!(a.count() > 0, "{level}: nothing recorded");
            assert!(a.count() <= prog.op_count());
        }
    }

    #[test]
    fn op_coverage_grows_with_new_paths_only() {
        let m = coverage_module();
        let artifact = compile(&m, OptLevel::O2).expect("compiles");
        let prog = artifact.decoded();
        let mut total = coverage_of(prog, &[1]);
        // A genuinely new dispatch path lights new ops...
        let fresh = total.merge(&coverage_of(prog, &[4]));
        assert!(fresh > 0, "new case arm should light new ops");
        // ...while replaying an already-covered input lights none.
        assert_eq!(total.merge(&coverage_of(prog, &[1])), 0);
        assert_eq!(total.merge(&coverage_of(prog, &[4])), 0);
    }

    #[test]
    fn run_and_run_with_coverage_agree_on_the_contract() {
        // The instrumented entry point must not perturb semantics:
        // result, trace and executed count match the plain loop.
        let m = coverage_module();
        let artifact = compile(&m, OptLevel::Os).expect("compiles");
        let prog = artifact.decoded();
        let mut plain = FastVm::new(prog, RecordingEnv::new());
        let mut inst = FastVm::new(prog, RecordingEnv::new());
        let mut cov = super::super::OpCoverage::for_program(prog);
        for k in [-1, 0, 2, 5, 7] {
            assert_eq!(
                plain.run("sel", &[k]),
                inst.run_with_coverage("sel", &[k], &mut cov)
            );
        }
        assert_eq!(plain.executed(), inst.executed());
        assert_eq!(plain.into_env().calls, inst.into_env().calls);
    }

    #[test]
    fn memory_persists_across_calls_like_oracle() {
        use tlang::{GlobalDef, Init};
        let mut m = Module::new("m");
        m.push_global(GlobalDef {
            name: "counter".into(),
            ty: Type::I32,
            init: Init::Int(0),
            mutable: true,
        });
        m.push_function(Function {
            name: "bump".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Assign {
                    place: Place::var("counter"),
                    value: Expr::var("counter").add(Expr::Int(1)),
                },
                Stmt::Return(Some(Expr::var("counter"))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        let artifact = compile(&m, OptLevel::Os).expect("compiles");
        let mut vm = FastVm::new(artifact.decoded(), RecordingEnv::new());
        assert_eq!(vm.run("bump", &[]).expect("runs"), 1);
        assert_eq!(vm.run("bump", &[]).expect("runs"), 2);
        assert_eq!(vm.run("bump", &[]).expect("runs"), 3);
    }
}
