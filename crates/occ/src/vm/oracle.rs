//! The reference EM32 interpreter: the oracle half of the two-engine
//! contract (see the [module docs](super)).
//!
//! Walks the [`AsmInst`] stream directly with per-function label maps —
//! no pre-decoding, no per-step cloning (instructions are borrowed from
//! the assembly, never copied), so every step is a plain transcription of
//! the EM32 semantics the backend assumes (hardwired `r0`, word-addressed
//! little-endian memory, division by zero yielding zero, link handling
//! via an internal return stack).

use tlang::{Env, Value};

use crate::backend::{AsmInst, Assembly, DATA_BASE};

use super::{Engine, VmError, DEFAULT_FUEL, SP};

/// The reference EM32 machine instance. Memory (and therefore the state
/// machine's context) persists across [`run`](Vm::run) calls, matching
/// how the compiled program would behave on a device.
pub struct Vm<'a, E> {
    asm: &'a Assembly,
    mem: Vec<u8>,
    regs: [i32; 16],
    env: E,
    fuel: u64,
    executed: u64,
    /// Per-function label -> instruction index maps.
    labels: Vec<std::collections::BTreeMap<usize, usize>>,
}

impl<'a, E: Env> Vm<'a, E> {
    /// Creates a machine with the program's data image loaded.
    pub fn new(asm: &'a Assembly, env: E) -> Vm<'a, E> {
        let labels = asm
            .functions
            .iter()
            .map(|f| {
                f.insts
                    .iter()
                    .enumerate()
                    .filter_map(|(i, inst)| match inst {
                        AsmInst::Label(l) => Some((*l, i)),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        Vm {
            asm,
            mem: super::initial_memory(&asm.globals),
            regs: [0; 16],
            env,
            fuel: DEFAULT_FUEL,
            executed: 0,
            labels,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The host environment (e.g. a recorded trace).
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Consumes the machine, returning the host environment.
    pub fn into_env(self) -> E {
        self.env
    }

    /// Instructions executed so far (see [`Engine::executed`]).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Calls an exported function with up to four arguments; returns `r1`.
    ///
    /// # Errors
    ///
    /// See [`VmError`].
    pub fn run(&mut self, name: &str, args: &[i32]) -> Result<i32, VmError> {
        // Copy out the `&'a Assembly` so instruction borrows don't hold
        // a borrow of `self` across the mutating match arms below — this
        // is what lets the hot loop index/borrow instead of cloning.
        let asm = self.asm;
        let func = asm
            .functions
            .iter()
            .position(|f| f.name == name && f.exported)
            .ok_or_else(|| VmError::UnknownFunction(name.to_string()))?;
        for (i, a) in args.iter().enumerate().take(4) {
            self.regs[1 + i] = *a;
        }
        self.regs[SP] = self.mem.len() as i32;
        let mut stack: Vec<(usize, usize)> = Vec::new();
        let mut fi = func;
        let mut pc = 0usize;
        loop {
            let insts = &asm.functions[fi].insts;
            if pc < insts.len() {
                if let AsmInst::Label(_) = insts[pc] {
                    // Zero-size marker: free, like the decoder erasing it.
                    pc += 1;
                    continue;
                }
            }
            if self.fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            self.fuel -= 1;
            self.executed += 1;
            if pc >= insts.len() {
                // Fell off the end: a void tail's implicit return, charged
                // like the explicit `Ret` the decoder materializes.
                match stack.pop() {
                    Some((rf, rpc)) => {
                        fi = rf;
                        pc = rpc;
                        continue;
                    }
                    None => return Ok(self.regs[1]),
                }
            }
            match &insts[pc] {
                AsmInst::Label(_) => unreachable!("labels are skipped above"),
                AsmInst::Li { rd, imm } => {
                    self.write(*rd, *imm);
                    pc += 1;
                }
                AsmInst::Mv { rd, rs } => {
                    let v = self.regs[*rs as usize];
                    self.write(*rd, v);
                    pc += 1;
                }
                AsmInst::Alu { op, rd, rs1, rs2 } => {
                    let v = op.eval(self.regs[*rs1 as usize], self.regs[*rs2 as usize]);
                    self.write(*rd, v);
                    pc += 1;
                }
                AsmInst::Lw { rd, base, off } => {
                    let v = self.load(i64::from(self.regs[*base as usize]) + i64::from(*off))?;
                    self.write(*rd, v);
                    pc += 1;
                }
                AsmInst::Sw { src, base, off } => {
                    let v = self.regs[*src as usize];
                    self.store(i64::from(self.regs[*base as usize]) + i64::from(*off), v)?;
                    pc += 1;
                }
                AsmInst::Beq { rs1, rs2, label } => {
                    if self.regs[*rs1 as usize] == self.regs[*rs2 as usize] {
                        pc = self.label(fi, *label)?;
                    } else {
                        pc += 1;
                    }
                }
                AsmInst::Bne { rs1, rs2, label } => {
                    if self.regs[*rs1 as usize] != self.regs[*rs2 as usize] {
                        pc = self.label(fi, *label)?;
                    } else {
                        pc += 1;
                    }
                }
                AsmInst::J { label } => pc = self.label(fi, *label)?,
                AsmInst::Jal { func } => {
                    stack.push((fi, pc + 1));
                    fi = *func;
                    pc = 0;
                }
                AsmInst::Jalr { rs } => {
                    let addr = self.regs[*rs as usize];
                    let target = asm
                        .fn_addrs
                        .iter()
                        .position(|a| *a as i32 == addr)
                        .ok_or(VmError::BadCodeAddress(addr))?;
                    stack.push((fi, pc + 1));
                    fi = target;
                    pc = 0;
                }
                AsmInst::Ecall {
                    ext,
                    nargs,
                    returns,
                } => {
                    let name = &asm.externs[*ext];
                    let args: Vec<Value> =
                        (0..*nargs).map(|i| Value::Int(self.regs[1 + i])).collect();
                    let result = self.env.call_extern(name, &args).map_err(VmError::Host)?;
                    if *returns {
                        let v = match result {
                            Value::Int(v) => v,
                            Value::Bool(b) => i32::from(b),
                            _ => 0,
                        };
                        self.write(1, v);
                    }
                    pc += 1;
                }
                AsmInst::Ret => match stack.pop() {
                    Some((rf, rpc)) => {
                        fi = rf;
                        pc = rpc;
                    }
                    None => return Ok(self.regs[1]),
                },
                AsmInst::La { rd, global, off } => {
                    let g = &asm.globals[*global];
                    let addr = DATA_BASE as i32 + g.offset as i32 + off;
                    self.write(*rd, addr);
                    pc += 1;
                }
                AsmInst::LaFn { rd, func } => {
                    let addr = asm.fn_addrs[*func] as i32;
                    self.write(*rd, addr);
                    pc += 1;
                }
                AsmInst::JumpTable {
                    rs,
                    lo,
                    labels,
                    default,
                } => {
                    let v = i64::from(self.regs[*rs as usize]) - i64::from(*lo);
                    let target = if v >= 0 && (v as usize) < labels.len() {
                        labels[v as usize]
                    } else {
                        *default
                    };
                    pc = self.label(fi, target)?;
                }
            }
        }
    }

    fn write(&mut self, rd: u8, value: i32) {
        if rd != 0 {
            self.regs[rd as usize] = value;
        }
    }

    fn label(&self, fi: usize, label: usize) -> Result<usize, VmError> {
        self.labels[fi]
            .get(&label)
            .copied()
            .ok_or(VmError::BadLabel(label))
    }

    fn load(&self, addr: i64) -> Result<i32, VmError> {
        let a = usize::try_from(addr).map_err(|_| VmError::MemoryFault { addr })?;
        if a + 4 > self.mem.len() {
            return Err(VmError::MemoryFault { addr });
        }
        let bytes: [u8; 4] = self.mem[a..a + 4].try_into().expect("4 bytes");
        Ok(i32::from_le_bytes(bytes))
    }

    fn store(&mut self, addr: i64, value: i32) -> Result<(), VmError> {
        let a = usize::try_from(addr).map_err(|_| VmError::MemoryFault { addr })?;
        if a + 4 > self.mem.len() {
            return Err(VmError::MemoryFault { addr });
        }
        self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

impl<E: Env> Engine for Vm<'_, E> {
    fn call(&mut self, name: &str, args: &[i32]) -> Result<i32, VmError> {
        self.run(name, args)
    }

    fn executed(&self) -> u64 {
        self.executed
    }

    fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, OptLevel};
    use tlang::{
        Expr, ExternDecl, Function, GlobalDef, Init, Module, Place, RecordingEnv, Stmt, StructDef,
        Type,
    };

    fn run_main(module: &Module, level: OptLevel) -> (i32, RecordingEnv) {
        let artifact = compile(module, level).expect("compiles");
        let mut vm = Vm::new(artifact.assembly(), RecordingEnv::new());
        let r = vm.run("main", &[]).expect("runs");
        (r, vm.into_env())
    }

    /// The master correctness check: VM result == tlang interpreter result
    /// at every optimization level.
    fn assert_all_levels(module: &Module, expected: i32) {
        module.check().expect("typed");
        let mut interp = tlang::Interpreter::new(module, RecordingEnv::new());
        let oracle = interp.call("main", &[]).expect("interprets");
        if let Some(tlang::Value::Int(v)) = oracle {
            assert_eq!(v, expected, "oracle disagrees with test expectation");
        }
        let oracle_calls = interp.into_env().calls;
        for level in OptLevel::all() {
            let (r, env) = run_main(module, level);
            assert_eq!(r, expected, "{level}: wrong result");
            assert_eq!(env.calls, oracle_calls, "{level}: extern trace differs");
        }
    }

    #[test]
    fn arithmetic_pipeline() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "x".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(6)),
                },
                Stmt::Let {
                    name: "y".into(),
                    ty: Type::I32,
                    init: Some(Expr::var("x").bin(tlang::BinOp::Mul, Expr::Int(7))),
                },
                Stmt::Return(Some(Expr::var("y").bin(tlang::BinOp::Sub, Expr::Int(2)))),
            ],
            exported: true,
        });
        assert_all_levels(&m, 40);
    }

    #[test]
    fn loops_and_branches() {
        // sum of 0..10 with an early break at 7 -> 0+..+6 = 21.
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "i".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::Let {
                    name: "acc".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::While {
                    cond: Expr::var("i").bin(tlang::BinOp::Lt, Expr::Int(10)),
                    body: vec![
                        Stmt::If {
                            cond: Expr::var("i").eq(Expr::Int(7)),
                            then_body: vec![Stmt::Break],
                            else_body: vec![],
                        },
                        Stmt::Assign {
                            place: Place::var("acc"),
                            value: Expr::var("acc").add(Expr::var("i")),
                        },
                        Stmt::Assign {
                            place: Place::var("i"),
                            value: Expr::var("i").add(Expr::Int(1)),
                        },
                    ],
                },
                Stmt::Return(Some(Expr::var("acc"))),
            ],
            exported: true,
        });
        assert_all_levels(&m, 21);
    }

    #[test]
    fn globals_structs_and_extern_trace() {
        let mut m = Module::new("m");
        m.push_struct(StructDef {
            name: "Ctx".into(),
            fields: vec![("state".into(), Type::I32), ("n".into(), Type::I32)],
        });
        m.push_extern(ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32, Type::I32],
            ret: Type::Void,
        });
        m.push_global(GlobalDef {
            name: "ctx".into(),
            ty: Type::Struct("Ctx".into()),
            init: Init::Struct(vec![Init::Int(3), Init::Int(10)]),
            mutable: true,
        });
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Assign {
                    place: Place::var("ctx").field("n"),
                    value: Expr::Place(Place::var("ctx").field("n")).add(Expr::Int(5)),
                },
                Stmt::Expr(Expr::Call(
                    "env_emit".into(),
                    vec![
                        Expr::Place(Place::var("ctx").field("state")),
                        Expr::Place(Place::var("ctx").field("n")),
                    ],
                )),
                Stmt::Return(Some(Expr::Place(Place::var("ctx").field("n")))),
            ],
            exported: true,
        });
        assert_all_levels(&m, 15);
    }

    #[test]
    fn switch_dispatch_all_levels() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "sel".into(),
            params: vec![("k".into(), Type::I32)],
            ret: Type::I32,
            body: vec![Stmt::Switch {
                scrutinee: Expr::var("k"),
                cases: (0..8)
                    .map(|i| (i, vec![Stmt::Return(Some(Expr::Int(100 + i)))]))
                    .collect(),
                default: vec![Stmt::Return(Some(Expr::Int(-1)))],
            }],
            exported: true,
        });
        m.check().expect("typed");
        for level in OptLevel::all() {
            let artifact = compile(&m, level).expect("compiles");
            let mut vm = Vm::new(artifact.assembly(), RecordingEnv::new());
            for k in -1..9 {
                let want = if (0..8).contains(&k) { 100 + k } else { -1 };
                assert_eq!(vm.run("sel", &[k]).expect("runs"), want, "{level} k={k}");
            }
        }
    }

    #[test]
    fn indirect_calls_through_data_tables() {
        let mut m = Module::new("m");
        m.push_extern(ExternDecl {
            name: "env_emit".into(),
            params: vec![Type::I32],
            ret: Type::Void,
        });
        for (name, v) in [("h0", 7), ("h1", 8)] {
            m.push_function(Function {
                name: name.into(),
                params: vec![],
                ret: Type::Void,
                body: vec![Stmt::Expr(Expr::Call(
                    "env_emit".into(),
                    vec![Expr::Int(v)],
                ))],
                exported: false,
            });
        }
        m.push_global(GlobalDef {
            name: "tbl".into(),
            ty: Type::Array(Box::new(Type::fn_ptr(vec![], Type::Void)), 2),
            init: Init::Array(vec![Init::FnAddr("h0".into()), Init::FnAddr("h1".into())]),
            mutable: false,
        });
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![
                Stmt::Expr(Expr::CallPtr(
                    Box::new(Expr::Place(Place::var("tbl").index(Expr::Int(1)))),
                    vec![],
                )),
                Stmt::Expr(Expr::CallPtr(
                    Box::new(Expr::Place(Place::var("tbl").index(Expr::Int(0)))),
                    vec![],
                )),
            ],
            exported: true,
        });
        m.check().expect("typed");
        for level in OptLevel::all() {
            let artifact = compile(&m, level).expect("compiles");
            let mut vm = Vm::new(artifact.assembly(), RecordingEnv::new());
            vm.run("main", &[]).expect("runs");
            assert_eq!(
                vm.into_env().calls,
                vec![
                    ("env_emit".to_string(), vec![8]),
                    ("env_emit".to_string(), vec![7])
                ],
                "{level}"
            );
        }
    }

    #[test]
    fn memory_persists_across_calls() {
        let mut m = Module::new("m");
        m.push_global(GlobalDef {
            name: "counter".into(),
            ty: Type::I32,
            init: Init::Int(0),
            mutable: true,
        });
        m.push_function(Function {
            name: "bump".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Assign {
                    place: Place::var("counter"),
                    value: Expr::var("counter").add(Expr::Int(1)),
                },
                Stmt::Return(Some(Expr::var("counter"))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        let artifact = compile(&m, OptLevel::Os).expect("compiles");
        let mut vm = Vm::new(artifact.assembly(), RecordingEnv::new());
        assert_eq!(vm.run("bump", &[]).expect("runs"), 1);
        assert_eq!(vm.run("bump", &[]).expect("runs"), 2);
        assert_eq!(vm.run("bump", &[]).expect("runs"), 3);
    }

    #[test]
    fn out_of_fuel_reported() {
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::Void,
            body: vec![Stmt::While {
                cond: Expr::Bool(true),
                body: vec![],
            }],
            exported: true,
        });
        let artifact = compile(&m, OptLevel::O0).expect("compiles");
        let mut vm = Vm::new(artifact.assembly(), RecordingEnv::new()).with_fuel(10_000);
        assert_eq!(vm.run("main", &[]), Err(VmError::OutOfFuel));
    }

    #[test]
    fn labels_cost_no_fuel() {
        // A branchy function executes label markers on every path; the
        // executed count must reflect instructions only. Exact parity
        // with the fast engine (which erases labels at decode time) is
        // asserted in the dispatch tests and the differential net; here
        // we pin that the count is below the raw stream length times the
        // iteration count on a label-dense -O0 body.
        let mut m = Module::new("m");
        m.push_function(Function {
            name: "main".into(),
            params: vec![],
            ret: Type::I32,
            body: vec![
                Stmt::Let {
                    name: "i".into(),
                    ty: Type::I32,
                    init: Some(Expr::Int(0)),
                },
                Stmt::While {
                    cond: Expr::var("i").bin(tlang::BinOp::Lt, Expr::Int(4)),
                    body: vec![Stmt::Assign {
                        place: Place::var("i"),
                        value: Expr::var("i").add(Expr::Int(1)),
                    }],
                },
                Stmt::Return(Some(Expr::var("i"))),
            ],
            exported: true,
        });
        m.check().expect("typed");
        let artifact = compile(&m, OptLevel::O0).expect("compiles");
        let labels = artifact.assembly().functions[0]
            .insts
            .iter()
            .filter(|i| matches!(i, AsmInst::Label(_)))
            .count();
        assert!(labels > 0, "-O0 loop body should carry labels");
        let mut vm = Vm::new(artifact.assembly(), RecordingEnv::new());
        assert_eq!(vm.run("main", &[]).expect("runs"), 4);
        assert!(vm.executed() > 0);
        // Re-running accumulates.
        let first = vm.executed();
        vm.run("main", &[]).expect("runs");
        assert_eq!(vm.executed(), first * 2, "deterministic accumulation");
    }
}
