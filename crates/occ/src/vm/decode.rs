//! One-time pre-decode of an [`Assembly`] into the dense internal form
//! the fast engine dispatches over (see the [module docs](super) for the
//! decode invariants this establishes).

use std::fmt;

use crate::backend::{AsmInst, Assembly, DATA_BASE, TEXT_BASE};
use crate::mir::BinOp;

/// A decode-time rejection: malformed assembly is reported here, once,
/// instead of surfacing as a dispatch-time fault on some execution path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A branch or jump-table entry names a label the function does not
    /// define.
    UndefinedLabel {
        /// Function the reference appears in.
        func: String,
        /// The unresolvable label id.
        label: usize,
    },
    /// An `Ecall` names an extern index outside the extern table.
    UnknownExtern {
        /// Function the call appears in.
        func: String,
        /// The out-of-range extern index.
        ext: usize,
    },
    /// A direct call targets a function index outside the program.
    BadCallee {
        /// Function the call appears in.
        func: String,
        /// The out-of-range callee index.
        callee: usize,
    },
    /// An address formation names a global outside the data image.
    BadGlobal {
        /// Function the reference appears in.
        func: String,
        /// The out-of-range global index.
        global: usize,
    },
    /// An `Ecall` passes more arguments than the four argument registers
    /// of the EM32 calling convention.
    BadEcallArity {
        /// Function the call appears in.
        func: String,
        /// The oversized argument count.
        nargs: usize,
    },
    /// A function's code address is below `TEXT_BASE` or not 2-aligned,
    /// so it cannot index the dense indirect-call map.
    BadFnAddr {
        /// The function laid out at the bad address.
        func: String,
        /// The offending code address.
        addr: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UndefinedLabel { func, label } => {
                write!(f, "`{func}`: branch to undefined label {label}")
            }
            DecodeError::UnknownExtern { func, ext } => {
                write!(f, "`{func}`: ecall of unknown extern index {ext}")
            }
            DecodeError::BadCallee { func, callee } => {
                write!(f, "`{func}`: call of out-of-range function index {callee}")
            }
            DecodeError::BadGlobal { func, global } => {
                write!(f, "`{func}`: address of out-of-range global index {global}")
            }
            DecodeError::BadEcallArity { func, nargs } => {
                write!(f, "`{func}`: ecall passing {nargs} arguments (max 4)")
            }
            DecodeError::BadFnAddr { func, addr } => {
                write!(f, "`{func}`: unmappable code address {addr:#x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// One pre-decoded micro-op. `Copy` by construction — variable-length
/// payloads (jump tables) live in the side pool of [`DecodedProgram`] —
/// so the dispatch loop fetches by value from one dense array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Fuel-charging no-op: the decoded form of any write whose
    /// destination is the hardwired-zero `r0`. Rewriting those here lets
    /// the dispatch loop write registers unconditionally — no op it
    /// executes ever names `r0` as a destination, so `regs[0] == 0` is an
    /// invariant, not a per-write check.
    Nop,
    /// `rd = imm` (`rd != 0`). Also the pre-split form of `La`/`LaFn`:
    /// the absolute address is computed at decode time.
    Li { rd: u8, imm: i32 },
    /// `rd = rs`.
    Mv { rd: u8, rs: u8 },
    /// `rd = rs1 op rs2`.
    Alu { op: BinOp, rd: u8, rs1: u8, rs2: u8 },
    /// `rd = mem[base + off]`.
    Lw { rd: u8, base: u8, off: i32 },
    /// `mem[base + off] = src`.
    Sw { src: u8, base: u8, off: i32 },
    /// Branch to the absolute op index `target` if `rs1 == rs2`.
    Beq { rs1: u8, rs2: u8, target: u32 },
    /// Branch to the absolute op index `target` if `rs1 != rs2`.
    Bne { rs1: u8, rs2: u8, target: u32 },
    /// Unconditional jump to the absolute op index `target`.
    Jmp { target: u32 },
    /// Direct call: push the return op index, continue at `entry`.
    Call { entry: u32 },
    /// Indirect call through the code address in `rs` (resolved through
    /// the dense [`DecodedProgram::code_map`] at dispatch time — the one
    /// target resolution that is genuinely run-time).
    CallInd { rs: u8 },
    /// Host-environment call.
    Ecall { ext: u16, nargs: u8, returns: bool },
    /// Return to the popped op index, or finish the run.
    Ret,
    /// Bounds-checked jump table; the payload lives in the
    /// [`TableMeta`] side pool so this (rare) op doesn't widen the whole
    /// enum past its 8-byte fetch.
    Table { meta: u32 },

    // ---- fused pairs (superinstructions) -------------------------------
    //
    // A decode-time peephole replaces the hottest adjacent fall-through
    // pairs with one op covering both, so the dispatch loop pays one
    // fetch + indirect branch for two instructions. The second slot of a
    // fused pair KEEPS its plain op (the fused op skips it with an extra
    // `pc += 1`), so branches into the middle of a pair stay valid and
    // every slot index is unchanged. Each fused arm re-checks and
    // re-decrements fuel between its two halves, so `OutOfFuel` fires at
    // exactly the same step as in the oracle. Register numbers are packed
    // two per byte (`hi << 4 | lo`) — a nibble is already `< 16`, which
    // also lets the register file be indexed without a bounds check.
    /// `Li` then `Alu` (the ubiquitous load-immediate-operand form):
    /// `rd(rds hi) = imm; rd(rds lo) = op(rs(rss hi), rs(rss lo))`.
    /// Fused only when the immediate fits `i16`.
    LiAlu {
        op: BinOp,
        rds: u8,
        rss: u8,
        imm: i16,
    },
    /// `Li` then `Alu` whose *right* operand is the value just loaded
    /// (`rs2 == rd_li`): the dispatch arm feeds `imm` straight into the
    /// ALU instead of reloading it through the register file (cuts a
    /// store-to-load dependency). `rds` = `rd_li|rd`, `rs1` plain.
    LiAluI {
        op: BinOp,
        rds: u8,
        rs1: u8,
        imm: i16,
    },
    /// Mirror of [`Op::LiAluI`] for `rs1 == rd_li` (immediate is the
    /// left operand).
    LiAluIL {
        op: BinOp,
        rds: u8,
        rs2: u8,
        imm: i16,
    },
    /// `Li` then `Li`: `rd(rds hi) = imm1; rd(rds lo) = imm2` (both
    /// immediates fit `i16`).
    LiLi { rds: u8, imm1: i16, imm2: i16 },
    /// `Alu` then `Alu`, all four operand registers and both opcodes
    /// nibble-packed: `ops` holds the two [`BinOp`] nibbles, `a` =
    /// `rd1|rs11`, `b` = `rs12|rd2`, `c` = `rs21|rs22`.
    AluAlu { ops: u8, a: u8, b: u8, c: u8 },
    /// `Alu` then `Beq`/`Bne` (compare-and-branch): `ops` = [`BinOp`]
    /// nibble `<< 4 | is_eq`, `a` = `rd|rs1`, `b` = `rs2|brs1`, `c` =
    /// `brs2 << 4`. Fused only when the branch target fits `u16`.
    AluBr {
        ops: u8,
        a: u8,
        b: u8,
        c: u8,
        target: u16,
    },
    /// `Lw` then `Lw` (struct/context copies): `rds` = `rd1|rd2`,
    /// `bases` = `base1|base2`, offsets fit `i16`.
    LwLw {
        rds: u8,
        bases: u8,
        off1: i16,
        off2: i16,
    },
    /// `Sw` then `Sw`: `srcs` = `src1|src2`, `bases` = `base1|base2`,
    /// offsets fit `i16`.
    SwSw {
        srcs: u8,
        bases: u8,
        off1: i16,
        off2: i16,
    },
}

/// Reverse of `BinOp as u8` for the nibble-packed fused ops, padded to 16
/// entries so a masked nibble indexes it without a bounds check.
pub(crate) const BINOP_FROM_NIBBLE: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Add,
    BinOp::Add,
];

/// Packs two register numbers (each `< 16`) into one byte.
fn pack(hi: u8, lo: u8) -> u8 {
    debug_assert!(hi < 16 && lo < 16);
    (hi << 4) | lo
}

/// The decode-time peephole: greedily fuses adjacent fall-through pairs
/// within one function's slot range (left to right, first match wins).
/// The first slot gets the fused op; the second keeps its plain op as a
/// branch-target landing pad.
fn fuse_pairs(ops: &mut [Op]) {
    let mut i = 0;
    while i + 1 < ops.len() {
        if let Some(fused) = try_fuse(ops[i], ops[i + 1]) {
            ops[i] = fused;
            i += 2;
        } else {
            i += 1;
        }
    }
}

fn try_fuse(first: Op, second: Op) -> Option<Op> {
    match (first, second) {
        (Op::Li { rd: rd1, imm }, Op::Alu { op, rd, rs1, rs2 }) => {
            let imm = i16::try_from(imm).ok()?;
            if rs2 == rd1 {
                Some(Op::LiAluI {
                    op,
                    rds: pack(rd1, rd),
                    rs1,
                    imm,
                })
            } else if rs1 == rd1 {
                Some(Op::LiAluIL {
                    op,
                    rds: pack(rd1, rd),
                    rs2,
                    imm,
                })
            } else {
                Some(Op::LiAlu {
                    op,
                    rds: pack(rd1, rd),
                    rss: pack(rs1, rs2),
                    imm,
                })
            }
        }
        (Op::Li { rd: rd1, imm: i1 }, Op::Li { rd: rd2, imm: i2 }) => {
            let imm1 = i16::try_from(i1).ok()?;
            let imm2 = i16::try_from(i2).ok()?;
            Some(Op::LiLi {
                rds: pack(rd1, rd2),
                imm1,
                imm2,
            })
        }
        (
            Op::Alu {
                op: op1,
                rd: rd1,
                rs1: rs11,
                rs2: rs12,
            },
            Op::Alu {
                op: op2,
                rd: rd2,
                rs1: rs21,
                rs2: rs22,
            },
        ) => Some(Op::AluAlu {
            ops: pack(op1 as u8, op2 as u8),
            a: pack(rd1, rs11),
            b: pack(rs12, rd2),
            c: pack(rs21, rs22),
        }),
        (
            Op::Alu { op, rd, rs1, rs2 },
            Op::Beq {
                rs1: b1,
                rs2: b2,
                target,
            },
        )
        | (
            Op::Alu { op, rd, rs1, rs2 },
            Op::Bne {
                rs1: b1,
                rs2: b2,
                target,
            },
        ) => {
            let target = u16::try_from(target).ok()?;
            let is_eq = matches!(second, Op::Beq { .. });
            Some(Op::AluBr {
                ops: pack(op as u8, u8::from(is_eq)),
                a: pack(rd, rs1),
                b: pack(rs2, b1),
                c: pack(b2, 0),
                target,
            })
        }
        (
            Op::Lw {
                rd: rd1,
                base: base1,
                off: o1,
            },
            Op::Lw {
                rd: rd2,
                base: base2,
                off: o2,
            },
        ) => {
            // Unlike `Li`/`Mv`/`Alu`, an `Lw` to `r0` survives decode
            // un-rewritten (it keeps its fault check), so an `r0`
            // destination can reach this point — and the fused arm
            // writes both destinations unconditionally. Don't fuse.
            if rd1 == 0 || rd2 == 0 {
                return None;
            }
            let off1 = i16::try_from(o1).ok()?;
            let off2 = i16::try_from(o2).ok()?;
            Some(Op::LwLw {
                rds: pack(rd1, rd2),
                bases: pack(base1, base2),
                off1,
                off2,
            })
        }
        (
            Op::Sw {
                src: s1,
                base: base1,
                off: o1,
            },
            Op::Sw {
                src: s2,
                base: base2,
                off: o2,
            },
        ) => {
            let off1 = i16::try_from(o1).ok()?;
            let off2 = i16::try_from(o2).ok()?;
            Some(Op::SwSw {
                srcs: pack(s1, s2),
                bases: pack(base1, base2),
                off1,
                off2,
            })
        }
        _ => None,
    }
}

/// Payload of one [`Op::Table`]: the bounds check and the slice of the
/// flat target pool it dispatches over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TableMeta {
    pub rs: u8,
    pub lo: i32,
    /// First target in [`DecodedProgram::tables`].
    pub start: u32,
    pub len: u32,
    /// Absolute op index for out-of-range scrutinees.
    pub default: u32,
}

/// One function's decoded metadata.
#[derive(Debug, Clone)]
pub(crate) struct FnInfo {
    /// Symbol name (entry lookup only — never consulted mid-dispatch).
    pub name: String,
    /// Callable from the host.
    pub exported: bool,
    /// Absolute index of the function's first op.
    pub entry: u32,
}

/// The dense, pre-decoded form of an [`Assembly`]: one flat op array for
/// all functions, pre-resolved branch/call targets, a flat jump-table
/// pool, the extern name table and the initial memory image. Produced
/// once per program by [`DecodedProgram::decode`] (and carried on every
/// [`Artifact`](crate::Artifact)); executed by
/// [`FastVm`](super::FastVm).
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) ops: Vec<Op>,
    /// Flat pool of jump-table targets (absolute op indices).
    pub(crate) tables: Vec<u32>,
    /// One entry per `Op::Table`, indexed by its `meta` field.
    pub(crate) table_meta: Vec<TableMeta>,
    pub(crate) funcs: Vec<FnInfo>,
    pub(crate) externs: Vec<String>,
    /// Initial memory image: data segment + zeroed stack (see
    /// [`initial_memory`](super::initial_memory)).
    pub(crate) mem: Vec<u8>,
    /// Dense indirect-call resolution: `code_map[(addr - TEXT_BASE) / 2]`
    /// is the entry op index of the function laid out at code address
    /// `addr`, or `u32::MAX` between entries (EM32 code addresses are
    /// 2-aligned — compressed instructions are 2 bytes). One load per
    /// `Jalr` instead of a binary search.
    pub(crate) code_map: Vec<u32>,
}

impl DecodedProgram {
    /// Pre-decodes an assembly, validating every statically resolvable
    /// target (see the [module docs](super) for the invariant list).
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`]; compiler-produced assemblies
    /// never fail (the backend only emits in-range references), so a
    /// failure here indicates a malformed hand-built program or a
    /// backend bug.
    pub fn decode(asm: &Assembly) -> Result<DecodedProgram, DecodeError> {
        // Pass A: per-function entries and label -> local-op-index maps.
        // Every non-label instruction emits exactly one op; every
        // function gets one appended `Ret`, so a label at the very end
        // of the stream resolves to that implicit return.
        let mut entries: Vec<u32> = Vec::with_capacity(asm.functions.len());
        let mut label_maps: Vec<std::collections::BTreeMap<usize, u32>> =
            Vec::with_capacity(asm.functions.len());
        let mut cursor: u32 = 0;
        for f in &asm.functions {
            entries.push(cursor);
            let mut map = std::collections::BTreeMap::new();
            let mut local: u32 = 0;
            for inst in &f.insts {
                match inst {
                    AsmInst::Label(l) => {
                        map.insert(*l, local);
                    }
                    _ => local += 1,
                }
            }
            label_maps.push(map);
            cursor += local + 1; // + the appended Ret
        }

        // Pass B: emit ops with every target resolved to an absolute
        // op index.
        let mut ops: Vec<Op> = Vec::with_capacity(cursor as usize);
        let mut tables: Vec<u32> = Vec::new();
        let mut table_meta: Vec<TableMeta> = Vec::new();
        for (fi, f) in asm.functions.iter().enumerate() {
            let entry = entries[fi];
            let resolve = |label: usize| -> Result<u32, DecodeError> {
                label_maps[fi]
                    .get(&label)
                    .map(|local| entry + local)
                    .ok_or_else(|| DecodeError::UndefinedLabel {
                        func: f.name.clone(),
                        label,
                    })
            };
            for inst in &f.insts {
                let op = match inst {
                    AsmInst::Label(_) => continue,
                    // Pure ops writing `r0` decay to fuel-charging no-ops
                    // (reads have no side effects); `Lw` keeps its fault
                    // check, so it is not rewritten.
                    AsmInst::Li { rd: 0, .. } | AsmInst::Mv { rd: 0, .. } => Op::Nop,
                    AsmInst::Alu { rd: 0, .. } => Op::Nop,
                    AsmInst::Li { rd, imm } => Op::Li { rd: *rd, imm: *imm },
                    AsmInst::Mv { rd, rs } => Op::Mv { rd: *rd, rs: *rs },
                    AsmInst::Alu { op, rd, rs1, rs2 } => Op::Alu {
                        op: *op,
                        rd: *rd,
                        rs1: *rs1,
                        rs2: *rs2,
                    },
                    AsmInst::Lw { rd, base, off } => Op::Lw {
                        rd: *rd,
                        base: *base,
                        off: *off,
                    },
                    AsmInst::Sw { src, base, off } => Op::Sw {
                        src: *src,
                        base: *base,
                        off: *off,
                    },
                    AsmInst::Beq { rs1, rs2, label } => Op::Beq {
                        rs1: *rs1,
                        rs2: *rs2,
                        target: resolve(*label)?,
                    },
                    AsmInst::Bne { rs1, rs2, label } => Op::Bne {
                        rs1: *rs1,
                        rs2: *rs2,
                        target: resolve(*label)?,
                    },
                    AsmInst::J { label } => Op::Jmp {
                        target: resolve(*label)?,
                    },
                    AsmInst::Jal { func } => {
                        if *func >= asm.functions.len() {
                            return Err(DecodeError::BadCallee {
                                func: f.name.clone(),
                                callee: *func,
                            });
                        }
                        Op::Call {
                            entry: entries[*func],
                        }
                    }
                    AsmInst::Jalr { rs } => Op::CallInd { rs: *rs },
                    AsmInst::Ecall {
                        ext,
                        nargs,
                        returns,
                    } => {
                        if *ext >= asm.externs.len() {
                            return Err(DecodeError::UnknownExtern {
                                func: f.name.clone(),
                                ext: *ext,
                            });
                        }
                        // The calling convention has four argument
                        // registers; the compiler enforces this at the
                        // frontend (`TooManyArgs`), so an oversized
                        // arity is a malformed hand-built program.
                        if *nargs > 4 {
                            return Err(DecodeError::BadEcallArity {
                                func: f.name.clone(),
                                nargs: *nargs,
                            });
                        }
                        Op::Ecall {
                            ext: *ext as u16,
                            nargs: *nargs as u8,
                            returns: *returns,
                        }
                    }
                    AsmInst::Ret => Op::Ret,
                    AsmInst::La { rd, global, off } => {
                        let g = asm
                            .globals
                            .get(*global)
                            .ok_or_else(|| DecodeError::BadGlobal {
                                func: f.name.clone(),
                                global: *global,
                            })?;
                        if *rd == 0 {
                            Op::Nop
                        } else {
                            Op::Li {
                                rd: *rd,
                                imm: DATA_BASE as i32 + g.offset as i32 + off,
                            }
                        }
                    }
                    AsmInst::LaFn { rd, func } => {
                        let addr =
                            asm.fn_addrs
                                .get(*func)
                                .ok_or_else(|| DecodeError::BadCallee {
                                    func: f.name.clone(),
                                    callee: *func,
                                })?;
                        if *rd == 0 {
                            Op::Nop
                        } else {
                            Op::Li {
                                rd: *rd,
                                imm: *addr as i32,
                            }
                        }
                    }
                    AsmInst::JumpTable {
                        rs,
                        lo,
                        labels,
                        default,
                    } => {
                        let start = tables.len() as u32;
                        for l in labels {
                            let t = resolve(*l)?;
                            tables.push(t);
                        }
                        table_meta.push(TableMeta {
                            rs: *rs,
                            lo: *lo,
                            start,
                            len: labels.len() as u32,
                            default: resolve(*default)?,
                        });
                        Op::Table {
                            meta: table_meta.len() as u32 - 1,
                        }
                    }
                };
                ops.push(op);
            }
            // The implicit return of a void tail becomes an explicit op,
            // so "falling off the end" is ordinary dispatch.
            ops.push(Op::Ret);
            debug_assert_eq!(
                ops.len() as u32,
                entries.get(fi + 1).copied().unwrap_or(cursor)
            );
            // Superinstruction peephole over the finished function (slot
            // indices are final — the label maps above already resolved
            // against them, and fusing never moves a slot).
            fuse_pairs(&mut ops[entry as usize..]);
        }

        // Dense code map: text layout is a few KB at most, so a
        // half-word-granular table (u32 per 2 code bytes) costs little
        // and makes every `Jalr` a single load.
        let mut code_map: Vec<u32> = Vec::new();
        for (fi, (a, e)) in asm.fn_addrs.iter().zip(&entries).enumerate() {
            // An address below `TEXT_BASE` would underflow the index and
            // an odd one would truncate into the wrong slot — both are
            // malformed hand-built layouts, caught here once.
            if *a < TEXT_BASE || *a % 2 != 0 {
                return Err(DecodeError::BadFnAddr {
                    func: asm.functions[fi].name.clone(),
                    addr: *a,
                });
            }
            let idx = ((*a - TEXT_BASE) / 2) as usize;
            if code_map.len() <= idx {
                code_map.resize(idx + 1, u32::MAX);
            }
            code_map[idx] = *e;
        }

        Ok(DecodedProgram {
            ops,
            tables,
            table_meta,
            funcs: asm
                .functions
                .iter()
                .zip(&entries)
                .map(|(f, e)| FnInfo {
                    name: f.name.clone(),
                    exported: f.exported,
                    entry: *e,
                })
                .collect(),
            externs: asm.externs.clone(),
            mem: super::initial_memory(&asm.globals),
            code_map,
        })
    }

    /// The absolute entry op index of an exported function.
    pub(crate) fn entry_of(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .find(|f| f.exported && f.name == name)
            .map(|f| f.entry)
    }

    /// Number of decoded micro-ops (labels erased, implicit returns
    /// materialized) — the dense program's size.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AsmFunction, AsmGlobal, RegAllocStats};

    fn func(name: &str, insts: Vec<AsmInst>) -> AsmFunction {
        AsmFunction {
            name: name.into(),
            exported: true,
            insts,
            stats: RegAllocStats::default(),
        }
    }

    fn asm(functions: Vec<AsmFunction>) -> Assembly {
        let fn_addrs = (0..functions.len())
            .map(|i| 0x100_0000 + 16 * i as u32)
            .collect();
        Assembly {
            functions,
            globals: vec![],
            externs: vec!["emit".into()],
            fn_addrs,
        }
    }

    #[test]
    fn labels_erased_and_implicit_ret_appended() {
        let a = asm(vec![func(
            "f",
            vec![
                AsmInst::Label(0),
                AsmInst::Li { rd: 1, imm: 7 },
                AsmInst::Label(1),
                AsmInst::Label(2),
            ],
        )]);
        let d = DecodedProgram::decode(&a).expect("decodes");
        // One real instruction + the appended Ret; three labels erased.
        assert_eq!(d.op_count(), 2);
        assert_eq!(d.ops[0], Op::Li { rd: 1, imm: 7 });
        assert_eq!(d.ops[1], Op::Ret);
    }

    #[test]
    fn end_label_resolves_to_implicit_ret() {
        // A branch to a label sitting after the last real instruction
        // must land on the materialized Ret, mirroring the oracle's
        // fall-off-the-end behaviour.
        let a = asm(vec![func(
            "f",
            vec![
                AsmInst::Beq {
                    rs1: 0,
                    rs2: 0,
                    label: 9,
                },
                AsmInst::Li { rd: 1, imm: 1 },
                AsmInst::Label(9),
            ],
        )]);
        let d = DecodedProgram::decode(&a).expect("decodes");
        assert_eq!(
            d.ops[0],
            Op::Beq {
                rs1: 0,
                rs2: 0,
                target: 2
            }
        );
        assert_eq!(d.ops[2], Op::Ret);
    }

    #[test]
    fn undefined_branch_target_caught_at_decode_time() {
        let a = asm(vec![func("f", vec![AsmInst::J { label: 42 }])]);
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::UndefinedLabel {
                func: "f".into(),
                label: 42
            }
        );
    }

    #[test]
    fn undefined_jump_table_entry_caught_at_decode_time() {
        let a = asm(vec![func(
            "f",
            vec![
                AsmInst::Label(0),
                AsmInst::JumpTable {
                    rs: 1,
                    lo: 0,
                    labels: vec![0, 7],
                    default: 0,
                },
            ],
        )]);
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::UndefinedLabel {
                func: "f".into(),
                label: 7
            }
        );
    }

    #[test]
    fn unknown_extern_caught_at_decode_time() {
        let a = asm(vec![func(
            "f",
            vec![AsmInst::Ecall {
                ext: 3,
                nargs: 0,
                returns: false,
            }],
        )]);
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::UnknownExtern {
                func: "f".into(),
                ext: 3
            }
        );
    }

    #[test]
    fn out_of_range_callee_caught_at_decode_time() {
        let a = asm(vec![func("f", vec![AsmInst::Jal { func: 5 }])]);
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::BadCallee {
                func: "f".into(),
                callee: 5
            }
        );
        let a = asm(vec![func("g", vec![AsmInst::LaFn { rd: 1, func: 9 }])]);
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::BadCallee {
                func: "g".into(),
                callee: 9
            }
        );
    }

    #[test]
    fn out_of_range_global_caught_at_decode_time() {
        let a = asm(vec![func(
            "f",
            vec![AsmInst::La {
                rd: 1,
                global: 2,
                off: 0,
            }],
        )]);
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::BadGlobal {
                func: "f".into(),
                global: 2
            }
        );
    }

    #[test]
    fn address_formation_pre_split_to_immediates() {
        let a = Assembly {
            functions: vec![func(
                "f",
                vec![
                    AsmInst::La {
                        rd: 2,
                        global: 0,
                        off: 4,
                    },
                    AsmInst::LaFn { rd: 3, func: 0 },
                ],
            )],
            globals: vec![AsmGlobal {
                name: "g".into(),
                words: vec![1, 2],
                mutable: true,
                offset: 8,
            }],
            externs: vec![],
            fn_addrs: vec![0x100_0000],
        };
        let d = DecodedProgram::decode(&a).expect("decodes");
        assert_eq!(
            d.ops[0],
            Op::Li {
                rd: 2,
                imm: DATA_BASE as i32 + 8 + 4
            }
        );
        assert_eq!(
            d.ops[1],
            Op::Li {
                rd: 3,
                imm: 0x100_0000
            }
        );
    }

    #[test]
    fn cross_function_targets_and_table_pool() {
        let a = asm(vec![
            func(
                "main",
                vec![
                    AsmInst::Jal { func: 1 },
                    AsmInst::Label(0),
                    AsmInst::JumpTable {
                        rs: 1,
                        lo: 0,
                        labels: vec![0],
                        default: 0,
                    },
                ],
            ),
            func("leaf", vec![AsmInst::Ret]),
        ]);
        let d = DecodedProgram::decode(&a).expect("decodes");
        // main: [Call, Table, Ret]; leaf entry = 3.
        assert_eq!(d.ops[0], Op::Call { entry: 3 });
        assert_eq!(d.ops[1], Op::Table { meta: 0 });
        assert_eq!(d.tables, vec![1]);
        assert_eq!(
            d.table_meta,
            vec![TableMeta {
                rs: 1,
                lo: 0,
                start: 0,
                len: 1,
                default: 1
            }]
        );
        assert_eq!(d.funcs[1].entry, 3);
        // fn 0 at TEXT_BASE (map index 0, entry 0), fn 1 16 bytes later
        // (map index 8, entry 3); the gap is poisoned.
        assert_eq!(d.code_map.len(), 9);
        assert_eq!(d.code_map[0], 0);
        assert_eq!(d.code_map[8], 3);
        assert!(d.code_map[1..8].iter().all(|&e| e == u32::MAX));
    }

    #[test]
    fn ops_stay_one_word_wide() {
        // The dispatch loop fetches ops by value; keeping every variant
        // within 8 bytes (jump-table payloads live in the side pool) is
        // load-bearing for its speed.
        assert!(
            std::mem::size_of::<Op>() <= 8,
            "{}",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn binop_nibbles_round_trip() {
        use crate::mir::BinOp;
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ] {
            assert_eq!(BINOP_FROM_NIBBLE[op as u8 as usize], op);
        }
    }

    #[test]
    fn r0_writes_decay_to_nops() {
        let a = asm(vec![func(
            "f",
            vec![
                AsmInst::Li { rd: 0, imm: 7 },
                AsmInst::Mv { rd: 0, rs: 3 },
                AsmInst::Alu {
                    op: BinOp::Add,
                    rd: 0,
                    rs1: 1,
                    rs2: 2,
                },
                AsmInst::Ret,
            ],
        )]);
        let d = DecodedProgram::decode(&a).expect("decodes");
        // Nop/Nop fuses into nothing (no rule), so all three survive as
        // plain Nops followed by the Rets.
        assert_eq!(d.ops[..3], [Op::Nop, Op::Nop, Op::Nop]);
    }

    #[test]
    fn hot_pairs_fuse_and_keep_the_second_slot() {
        let a = asm(vec![func(
            "f",
            vec![
                // Li feeds the Alu's right operand -> LiAluI.
                AsmInst::Li { rd: 3, imm: 40 },
                AsmInst::Alu {
                    op: BinOp::Add,
                    rd: 1,
                    rs1: 1,
                    rs2: 3,
                },
                // Store pair.
                AsmInst::Sw {
                    src: 1,
                    base: 14,
                    off: 0,
                },
                AsmInst::Sw {
                    src: 3,
                    base: 14,
                    off: 4,
                },
                AsmInst::Ret,
            ],
        )]);
        let d = DecodedProgram::decode(&a).expect("decodes");
        assert_eq!(
            d.ops[0],
            Op::LiAluI {
                op: BinOp::Add,
                rds: 0x31,
                rs1: 1,
                imm: 40,
            }
        );
        // The pair's second slot keeps its plain op as a branch-target
        // landing pad.
        assert_eq!(
            d.ops[1],
            Op::Alu {
                op: BinOp::Add,
                rd: 1,
                rs1: 1,
                rs2: 3,
            }
        );
        assert_eq!(
            d.ops[2],
            Op::SwSw {
                srcs: 0x13,
                bases: 0xee,
                off1: 0,
                off2: 4,
            }
        );
        assert_eq!(
            d.ops[3],
            Op::Sw {
                src: 3,
                base: 14,
                off: 4,
            }
        );
    }

    #[test]
    fn lw_to_r0_never_fuses() {
        // `Lw` with `rd == 0` keeps its fault check (it is not rewritten
        // to `Nop`), but the fused `LwLw` arm writes both destinations
        // unconditionally — fusing such a pair would clobber the
        // hardwired zero. Both orders must stay plain.
        for (rd1, rd2) in [(0, 1), (1, 0), (0, 0)] {
            let a = asm(vec![func(
                "f",
                vec![
                    AsmInst::Lw {
                        rd: rd1,
                        base: 14,
                        off: 0,
                    },
                    AsmInst::Lw {
                        rd: rd2,
                        base: 14,
                        off: 4,
                    },
                ],
            )]);
            let d = DecodedProgram::decode(&a).expect("decodes");
            assert_eq!(
                d.ops[0],
                Op::Lw {
                    rd: rd1,
                    base: 14,
                    off: 0,
                },
                "rd pair ({rd1},{rd2}) must not fuse"
            );
        }
    }

    #[test]
    fn oversized_ecall_arity_caught_at_decode_time() {
        // FastVm passes at most the four argument registers; the oracle
        // would index past them. Neither gets the chance: decode rejects.
        let a = asm(vec![func(
            "f",
            vec![AsmInst::Ecall {
                ext: 0,
                nargs: 5,
                returns: false,
            }],
        )]);
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::BadEcallArity {
                func: "f".into(),
                nargs: 5
            }
        );
    }

    #[test]
    fn bad_fn_addr_caught_at_decode_time() {
        // Below TEXT_BASE (would underflow the code-map index)...
        let mut a = asm(vec![func("f", vec![AsmInst::Ret])]);
        a.fn_addrs = vec![TEXT_BASE - 2];
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::BadFnAddr {
                func: "f".into(),
                addr: TEXT_BASE - 2
            }
        );
        // ...and odd (would truncate into the wrong slot).
        a.fn_addrs = vec![TEXT_BASE + 1];
        assert_eq!(
            DecodedProgram::decode(&a).unwrap_err(),
            DecodeError::BadFnAddr {
                func: "f".into(),
                addr: TEXT_BASE + 1
            }
        );
    }

    #[test]
    fn oversized_immediates_are_not_fused() {
        let a = asm(vec![func(
            "f",
            vec![
                AsmInst::Li {
                    rd: 3,
                    imm: 0x10_000,
                },
                AsmInst::Li { rd: 4, imm: 1 },
                AsmInst::Ret,
            ],
        )]);
        let d = DecodedProgram::decode(&a).expect("decodes");
        assert_eq!(
            d.ops[0],
            Op::Li {
                rd: 3,
                imm: 0x10_000,
            }
        );
    }
}
