//! The mid-end: a fixed-point pass manager over SSA passes, plus the
//! program-level passes (inlining, dead-function elimination) that frame
//! it. This module doc is the canonical description of the pass
//! pipeline; ROADMAP.md's Building section only points here.
//!
//! # Architecture
//!
//! [`run_pipeline`] is the entry point. For `-O1` and above it builds a
//! [`PassManager`] with the SSA passes registered for the level and runs
//! every function through it. The pass manager drives each function
//! through bounded **outer rounds** of
//!
//! ```text
//! simplify_cfg → ssa::construct → [SSA passes to a fixed point] → ssa::destruct → [post passes]
//! ```
//!
//! and iterates the registered SSA passes inside each round until a full
//! sweep changes nothing (or [`PassManager::MAX_SSA_ROUNDS`] is hit). The
//! outer rounds matter because φ-free CFG simplification exposes work the
//! SSA passes could not see — threading two empty arms of a `Br` onto the
//! same join block, for example, creates the equal-target branch that
//! [`fold_terminators`] collapses in the next round. The φ-free **post
//! passes** run after each `ssa::destruct`, where the φ-lowering copy
//! residue is first visible; they are cleanup and never drive another
//! outer round on their own.
//!
//! Every pass records a [`PassStats`] entry — `runs`, `changes` (runs
//! that rewrote something) and `insts_removed` — collected into the
//! [`PipelineStats`] that [`crate::compile`] exposes on the artifact.
//! This is the analogue of GCC's per-pass dump files the paper inspected
//! ("in the dead code elimination file, we have found that code related
//! to the unreachable state still exists"), made machine-readable so the
//! bench harness can report per-pass effect counts next to the size
//! tables, and the CI regression gate can diff whole matrices of them.
//!
//! # The roster per level
//!
//! `-O0` runs nothing. The SSA fixed point then runs, in registration
//! order:
//!
//! | pass                    | `-O1` (2 rounds) | `-O2`/`-Os` (3 rounds) |
//! |-------------------------|------------------|------------------------|
//! | [`sccp`]                |                  | ✓                      |
//! | [`constant_fold`]       | ✓                | ✓                      |
//! | [`copy_propagate`]      |                  | ✓                      |
//! | [`gvn_cse`]             |                  | ✓                      |
//! | [`store_load_forward`]  | ✓                | ✓                      |
//! | [`cross_block_forward`] | ✓                | ✓                      |
//! | [`load_pre`]            | ✓                | ✓                      |
//! | [`dead_store_elim`]     | ✓                | ✓                      |
//! | [`licm`]                |                  | ✓                      |
//! | [`fold_terminators`]    | ✓                | ✓                      |
//! | [`dead_code_elim`]      | ✓                | ✓                      |
//!
//! with [`coalesce_copies`] and [`merge_return_blocks`] as the φ-free
//! post passes at every level above `-O0`, and the program passes
//! [`inline_small_functions`] → [`dead_function_elimination`] framing
//! the per-function loop at `-O2`/`-Os` (with a size-tuned inlining
//! threshold at `-Os`). The memory passes run after [`gvn_cse`] —
//! addresses are canonical by then — and before [`licm`], so forwarding
//! eats load redundancy first and LICM hoists only the loads that
//! survive.
//!
//! # Per-pass contracts
//!
//! Every SSA pass has the signature [`SsaPass`] and receives the
//! [`mem::MemoryModel`] of the program it runs inside — the memory
//! passes consult it for rodata facts; the others ignore it.
//!
//! * [`sccp`] — sparse conditional constant propagation over the
//!   ⊤/const/⊥ lattice with the Wegman–Zadeck two-worklist scheme:
//!   tracks executable CFG edges, meets φs over executable incoming
//!   edges only, folds proven-constant instructions and terminators, and
//!   removes never-executable blocks. Folds through branches the dense
//!   fold must leave.
//! * [`constant_fold`] — dense constant propagation/folding with branch
//!   folding; residue cleanup behind SCCP at `-O2`+, the only constant
//!   pass at `-O1`.
//! * [`copy_propagate`] — transitive copy propagation into uses.
//! * [`gvn_cse`] — dominator-scoped global value numbering / common
//!   subexpression elimination with commutative canonicalization; loads
//!   are deliberately not value-numbered (the memory passes own them).
//! * [`store_load_forward`] — block-local store-to-load forwarding and
//!   redundant-load elimination over the tracked memory state of
//!   [`crate::mem`]; rewrites loads to copies.
//! * [`cross_block_forward`] — **cross-block** store-to-load forwarding
//!   / redundant-load elimination over the [`avail_loads`] must-
//!   availability dataflow: loads of cells available on every incoming
//!   path are deleted outright, their uses rewritten through new φs at
//!   joins where predecessor values differ.
//! * [`load_pre`] — load partial-redundancy elimination for diamond
//!   joins: a load available on exactly one of two incoming edges gets a
//!   speculative compensating load in the other predecessor (licensed by
//!   the rooted-loads-never-fault rule of [`crate::mem`]) and a φ-merge.
//! * [`dead_store_elim`] — block-local backward sweep dropping stores
//!   overwritten before any possible read.
//! * [`licm`] — loop-invariant code motion out of natural loops with
//!   φ-safe preheader insertion, seeded from computations worth a
//!   register; hoists loads whose address is invariant and whose cell
//!   the loop body provably leaves alone ([`mem::LoopClobbers`]).
//! * [`fold_terminators`] — terminator folding (equal-target `Br`,
//!   `Switch` arm pruning) and φ-safe SSA jump threading through empty
//!   forwarding blocks.
//! * [`dead_code_elim`] — mark-and-sweep removal of pure instructions
//!   unreachable from the impure/terminator roots; dead loop-carried
//!   φ-cycles retire wholesale.
//!
//! φ-free post passes:
//!
//! * [`coalesce_copies`] — cheap copy coalescing of the φ-lowering
//!   residue (block-local propagation + liveness-based dead-copy sweep);
//!   this is what lets `-O1` afford a second outer round.
//! * [`merge_return_blocks`] — crossjumping restricted to
//!   `Ret`-terminated blocks, canonical-key comparison up to block-local
//!   renaming.
//!
//! Program passes (`-O2`+, run once before the per-function loop):
//!
//! * [`inline_small_functions`] — bottom-up inlining of single-block
//!   callees,
//! * [`dead_function_elimination`] — call-graph reachability rooted at
//!   exported and **address-taken** functions. This is the pass the
//!   paper's §III.C probes: an unreachable state's handlers stay
//!   address-reachable (dispatch tables, switch cases over a runtime
//!   value), so the model-level fact "no incoming transition" does not
//!   survive code generation and the compiler must keep the code.
//!
//! # Verification
//!
//! Every invariant the rosters above rely on is cataloged — and, in
//! debug builds, *checked between passes* — by the [`crate::verify`]
//! static verifier: pipeline boundaries are always re-checked, and the
//! `OCC_VERIFY=each` knob (or [`PassManager::with_verify`]) escalates to
//! per-pass verification that attributes a broken invariant to the pass
//! and round that introduced it.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::cfg;
use crate::mem;
use crate::mir::{BinOp, Block, BlockId, Inst, MirFunction, Program, Term, UnOp, VReg, Word};
use crate::ssa;
use crate::verify;
use crate::OptLevel;

// ---------------------------------------------------------------------
// Pass statistics
// ---------------------------------------------------------------------

/// Effect counters for one named pass, aggregated over every function and
/// round it ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStats {
    /// Canonical pass name (see the [`pass`] constants).
    pub name: &'static str,
    /// How many times the pass executed.
    pub runs: usize,
    /// Rewrites reported: for the SSA fixed-point passes, the number of
    /// executions that changed something (`changes <= runs`); the
    /// program-level passes report item counts instead — call sites
    /// inlined, functions removed — which can exceed `runs`.
    pub changes: usize,
    /// Net instructions removed across all executions (terminators count
    /// one instruction each; growth in a single run saturates to zero).
    pub insts_removed: usize,
}

/// Canonical pass names as they appear in [`PassStats::name`].
pub mod pass {
    /// Constant propagation/folding with branch folding.
    pub const CONST_FOLD: &str = "const-fold";
    /// Transitive copy propagation.
    pub const COPY_PROP: &str = "copy-prop";
    /// Sparse conditional constant propagation.
    pub const SCCP: &str = "sccp";
    /// Loop-invariant code motion.
    pub const LICM: &str = "licm";
    /// φ-free copy coalescing (post-destruct cleanup).
    pub const COPY_COALESCE: &str = "copy-coalesce";
    /// Return-block tail merging (crossjumping).
    pub const TAIL_MERGE: &str = "tail-merge";
    /// Global value numbering / common-subexpression elimination.
    pub const GVN_CSE: &str = "gvn-cse";
    /// Store-to-load forwarding and redundant-load elimination.
    pub const STORE_LOAD_FWD: &str = "store-load-fwd";
    /// Cross-block store-to-load forwarding / redundant-load elimination.
    pub const CROSS_LOAD_FWD: &str = "cross-load-fwd";
    /// Load partial-redundancy elimination for diamond joins.
    pub const LOAD_PRE: &str = "load-pre";
    /// Dead-store elimination.
    pub const DSE: &str = "dse";
    /// Terminator folding and SSA jump threading.
    pub const TERM_FOLD: &str = "term-fold";
    /// Dead-code elimination.
    pub const DCE: &str = "dce";
    /// φ-free CFG simplification.
    pub const SIMPLIFY_CFG: &str = "simplify-cfg";
    /// Bottom-up inlining of small functions.
    pub const INLINE: &str = "inline";
    /// Call-graph dead-function elimination.
    pub const DEAD_FN_ELIM: &str = "dead-fn-elim";

    /// Resolves a pass name carried in serialized form (a cached
    /// artifact, a snapshot cell) back to its canonical `&'static str`.
    /// Returns `None` for a name this toolchain does not know — a cache
    /// entry written by a different pass roster must be treated as
    /// stale, not adopted.
    pub fn canonical(name: &str) -> Option<&'static str> {
        [
            CONST_FOLD,
            COPY_PROP,
            SCCP,
            LICM,
            COPY_COALESCE,
            TAIL_MERGE,
            GVN_CSE,
            STORE_LOAD_FWD,
            CROSS_LOAD_FWD,
            LOAD_PRE,
            DSE,
            TERM_FOLD,
            DCE,
            SIMPLIFY_CFG,
            INLINE,
            DEAD_FN_ELIM,
        ]
        .into_iter()
        .find(|c| *c == name)
    }
}

/// Per-pass statistics for one whole [`run_pipeline`] invocation, in
/// first-execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    passes: Vec<PassStats>,
}

impl PipelineStats {
    /// All recorded passes in first-execution order.
    pub fn passes(&self) -> &[PassStats] {
        &self.passes
    }

    /// Rebuilds stats from deserialized parts (the driver's on-disk
    /// artifact cache round-trips them; names are already canonical).
    pub(crate) fn from_passes(passes: Vec<PassStats>) -> PipelineStats {
        PipelineStats { passes }
    }

    /// Looks up one pass by canonical name.
    pub fn get(&self, name: &str) -> Option<&PassStats> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// Total instructions removed by all passes.
    pub fn total_insts_removed(&self) -> usize {
        self.passes.iter().map(|p| p.insts_removed).sum()
    }

    /// Renders one human-readable, column-aligned line per executed pass.
    pub fn render(&self) -> Vec<String> {
        self.passes
            .iter()
            .filter(|p| p.runs > 0)
            .map(|p| {
                format!(
                    "{:<14} runs {:>3}  changes {:>3}  insts removed {:>4}",
                    p.name, p.runs, p.changes, p.insts_removed
                )
            })
            .collect()
    }

    fn entry(&mut self, name: &'static str) -> &mut PassStats {
        if let Some(i) = self.passes.iter().position(|p| p.name == name) {
            return &mut self.passes[i];
        }
        self.passes.push(PassStats {
            name,
            ..PassStats::default()
        });
        self.passes.last_mut().expect("just pushed")
    }

    fn record(&mut self, name: &'static str, changed: bool, insts_removed: usize) {
        let st = self.entry(name);
        st.runs += 1;
        if changed {
            st.changes += 1;
        }
        st.insts_removed += insts_removed;
    }
}

// ---------------------------------------------------------------------
// The pass manager
// ---------------------------------------------------------------------

/// A function-local SSA pass: rewrites the function, returns `true` if
/// anything changed. The [`mem::MemoryModel`] carries the program-wide
/// facts (global mutability) the memory passes consult; passes that do
/// not reason about memory ignore it.
pub type SsaPass = fn(&mut MirFunction, &mem::MemoryModel) -> bool;

/// How much of the [`crate::verify`] static checker the manager runs in
/// debug builds (release builds compile all verification out, like the
/// backend's `VCode` verifier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Verify only at pipeline boundaries: after lowering, after
    /// [`ssa::construct`]/[`ssa::destruct`] (those hooks live in their
    /// producers) and once per function after the final cleanup.
    #[default]
    Boundaries,
    /// Verify-each: additionally re-check the appropriate tier after
    /// *every* pass, attributing any violation to the pass and round
    /// that introduced it. Selected by default when the `OCC_VERIFY`
    /// environment variable is `each`.
    Each,
}

impl VerifyMode {
    /// The mode the `OCC_VERIFY` environment knob selects (`each` turns
    /// on per-pass verification; anything else keeps boundaries only).
    pub fn from_env() -> VerifyMode {
        match std::env::var("OCC_VERIFY") {
            Ok(v) if v == "each" => VerifyMode::Each,
            _ => VerifyMode::Boundaries,
        }
    }
}

/// Runs registered SSA passes over functions to a bounded fixed point and
/// records per-pass [`PassStats`].
#[derive(Debug, Default)]
pub struct PassManager {
    ssa_passes: Vec<(&'static str, SsaPass)>,
    /// φ-free passes run after [`ssa::destruct`] in every outer round
    /// (copy coalescing lives here: destruct's parallel-copy residue is
    /// only visible once the φs are lowered).
    post_passes: Vec<(&'static str, SsaPass)>,
    outer_rounds: usize,
    verify: Option<VerifyMode>,
    stats: PipelineStats,
}

impl PassManager {
    /// Bound on SSA-pass sweeps inside one outer round; a sweep that
    /// changes nothing ends the fixed-point loop early, so this only
    /// caps pathological ping-ponging between passes.
    pub const MAX_SSA_ROUNDS: usize = 8;

    /// An empty manager running a single outer round, with the
    /// verification mode taken from [`VerifyMode::from_env`].
    pub fn new() -> PassManager {
        PassManager {
            ssa_passes: Vec::new(),
            post_passes: Vec::new(),
            outer_rounds: 1,
            verify: None,
            stats: PipelineStats::default(),
        }
    }

    /// The standard pass roster for `level`.
    pub fn for_level(level: OptLevel) -> PassManager {
        let mut pm = PassManager::new();
        match level {
            OptLevel::O0 => {}
            OptLevel::O1 => {
                // Copy coalescing cleans the construct/destruct φ-copy
                // round trip without the O2 roster, so O1 can afford a
                // second outer round. The block-local memory passes are
                // cheap enough for O1 and directly shrink the
                // context-variable traffic every generated handler emits.
                pm.outer_rounds = 2;
                pm.register(pass::CONST_FOLD, constant_fold);
                pm.register(pass::STORE_LOAD_FWD, store_load_forward);
                pm.register(pass::CROSS_LOAD_FWD, cross_block_forward);
                pm.register(pass::LOAD_PRE, load_pre);
                pm.register(pass::DSE, dead_store_elim);
                pm.register(pass::TERM_FOLD, fold_terminators);
                pm.register(pass::DCE, dead_code_elim);
                pm.register_post(pass::COPY_COALESCE, coalesce_copies);
                pm.register_post(pass::TAIL_MERGE, merge_return_blocks);
            }
            OptLevel::O2 | OptLevel::Os => {
                // Extra outer rounds let φ-free CFG cleanup and the SSA
                // passes feed each other; copy propagation erases the
                // copies each construct/destruct round introduces. SCCP
                // leads: it subsumes the dense fold and folds through
                // branches it must leave, so the dense pass after it is
                // cheap residue cleanup. The memory passes run after
                // GVN/CSE (addresses are canonical by then) and before
                // LICM, so forwarding eats block-local load redundancy
                // first and LICM hoists only the loads that survive.
                pm.outer_rounds = 3;
                pm.register(pass::SCCP, sccp);
                pm.register(pass::CONST_FOLD, constant_fold);
                pm.register(pass::COPY_PROP, copy_propagate);
                pm.register(pass::GVN_CSE, gvn_cse);
                pm.register(pass::STORE_LOAD_FWD, store_load_forward);
                pm.register(pass::CROSS_LOAD_FWD, cross_block_forward);
                pm.register(pass::LOAD_PRE, load_pre);
                pm.register(pass::DSE, dead_store_elim);
                pm.register(pass::LICM, licm);
                pm.register(pass::TERM_FOLD, fold_terminators);
                pm.register(pass::DCE, dead_code_elim);
                pm.register_post(pass::COPY_COALESCE, coalesce_copies);
                pm.register_post(pass::TAIL_MERGE, merge_return_blocks);
            }
        }
        pm
    }

    /// Registers an SSA pass under its reporting name.
    pub fn register(&mut self, name: &'static str, p: SsaPass) -> &mut PassManager {
        self.ssa_passes.push((name, p));
        self
    }

    /// Registers a φ-free pass run after SSA destruction in every outer
    /// round, under its reporting name.
    pub fn register_post(&mut self, name: &'static str, p: SsaPass) -> &mut PassManager {
        self.post_passes.push((name, p));
        self
    }

    /// Overrides the number of outer rounds (φ-free simplify + SSA
    /// fixed point) per function.
    pub fn with_outer_rounds(mut self, rounds: usize) -> PassManager {
        self.outer_rounds = rounds.max(1);
        self
    }

    /// Overrides the debug-build verification mode (by default the
    /// `OCC_VERIFY` environment knob decides, see
    /// [`VerifyMode::from_env`]). Release builds never verify,
    /// whichever mode is set.
    pub fn with_verify(mut self, mode: VerifyMode) -> PassManager {
        self.verify = Some(mode);
        self
    }

    fn verify_each(&self) -> bool {
        cfg!(debug_assertions)
            && self.verify.unwrap_or_else(VerifyMode::from_env) == VerifyMode::Each
    }

    /// Debug-build verification hook: checks `f` at `tier` plus the
    /// memory tier and panics with `ctx` (the pass/round blame) on the
    /// first broken invariant.
    fn verify_after(
        &self,
        f: &MirFunction,
        model: &mem::MemoryModel,
        tier: verify::Tier,
        ctx: &str,
    ) {
        if !cfg!(debug_assertions) {
            return;
        }
        let mut vs = verify::verify_function(f, tier);
        vs.extend(verify::verify_memory(f, model));
        assert!(vs.is_empty(), "MIR verifier: {ctx}:{}", verify::report(&vs));
    }

    /// Runs every function of `program` through
    /// [`PassManager::run_function`], under the program's
    /// [`mem::MemoryModel`].
    pub fn run_program(&mut self, program: &mut Program) {
        let model = mem::MemoryModel::of(program);
        for f in &mut program.functions {
            self.run_function(f, &model);
        }
    }

    /// Optimizes one function: bounded outer rounds of φ-free CFG
    /// simplification around an SSA fixed point, then a final cleanup.
    /// `model` carries the program-wide memory facts the memory passes
    /// consult (pass [`mem::MemoryModel::default`] for a bare function).
    /// Returns `true` if anything changed.
    pub fn run_function(&mut self, f: &mut MirFunction, model: &mem::MemoryModel) -> bool {
        let verify_each = self.verify_each();
        let mut any = false;
        for round in 1..=self.outer_rounds {
            any |= self.simplify(f);
            if verify_each {
                let ctx = format!("after {} in round {round}", pass::SIMPLIFY_CFG);
                self.verify_after(f, model, verify::Tier::PhiFree, &ctx);
            }
            if self.ssa_passes.is_empty() && self.post_passes.is_empty() {
                break;
            }
            let mut ssa_changed = false;
            if !self.ssa_passes.is_empty() {
                ssa::construct(f);
                ssa_changed = self.ssa_fixpoint(f, model, round, verify_each);
                ssa::destruct(f);
            }
            // φ-free post passes see destruct's copy residue; they are
            // cleanup, so they do not drive another outer round on
            // their own.
            for i in 0..self.post_passes.len() {
                let (name, p) = self.post_passes[i];
                let before = f.inst_count();
                let changed = p(f, model);
                let removed = before.saturating_sub(f.inst_count());
                self.stats.record(name, changed, removed);
                any |= changed;
                if verify_each {
                    let ctx = format!("after {name} in round {round}");
                    self.verify_after(f, model, verify::Tier::PhiFree, &ctx);
                }
            }
            any |= ssa_changed;
            if !ssa_changed {
                break;
            }
        }
        any |= self.simplify(f);
        // Post-pipeline boundary: whatever the mode, the function handed
        // to the backend must be φ-free, structurally sound, and inside
        // the memory contract.
        self.verify_after(
            f,
            model,
            verify::Tier::PhiFree,
            "after the mid-end pipeline",
        );
        any
    }

    /// A deterministic textual signature of this manager's registration
    /// data: outer rounds plus the SSA and φ-free pass rosters in
    /// registration order. [`crate::driver`] hashes the signatures of
    /// every level into its toolchain fingerprint, so any roster change
    /// (a pass added, removed or reordered) invalidates every cached
    /// artifact.
    pub fn roster_signature(&self) -> String {
        let names = |ps: &[(&'static str, SsaPass)]| {
            ps.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(",")
        };
        format!(
            "rounds={};ssa={};post={}",
            self.outer_rounds,
            names(&self.ssa_passes),
            names(&self.post_passes)
        )
    }

    /// The collected statistics so far.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Consumes the manager, returning its statistics.
    pub fn into_stats(self) -> PipelineStats {
        self.stats
    }

    fn simplify(&mut self, f: &mut MirFunction) -> bool {
        let before = f.inst_count();
        let changed = simplify_cfg(f);
        let removed = before.saturating_sub(f.inst_count());
        self.stats.record(pass::SIMPLIFY_CFG, changed, removed);
        changed
    }

    fn ssa_fixpoint(
        &mut self,
        f: &mut MirFunction,
        model: &mem::MemoryModel,
        outer_round: usize,
        verify_each: bool,
    ) -> bool {
        let mut any = false;
        for sweep in 1..=Self::MAX_SSA_ROUNDS {
            let mut round_changed = false;
            for i in 0..self.ssa_passes.len() {
                let (name, p) = self.ssa_passes[i];
                let before = f.inst_count();
                let changed = p(f, model);
                let removed = before.saturating_sub(f.inst_count());
                self.stats.record(name, changed, removed);
                round_changed |= changed;
                if verify_each {
                    let ctx = format!("after {name} in round {outer_round}.{sweep}");
                    self.verify_after(f, model, verify::Tier::Ssa, &ctx);
                }
            }
            if !round_changed {
                break;
            }
            any = true;
        }
        any
    }
}

/// Runs the pipeline for `level`, returning per-pass statistics.
pub fn run_pipeline(program: &mut Program, level: OptLevel) -> PipelineStats {
    run_pipeline_impl(program, level, None)
}

/// [`run_pipeline`] with an explicit [`VerifyMode`], bypassing the
/// `OCC_VERIFY` environment knob. Test harnesses use this to force
/// verify-each regardless of the environment (the differential net runs
/// it so a violation is attributed to a pass *and* to the generated
/// program that provoked it). Release builds still verify nothing.
pub fn run_pipeline_with_verify(
    program: &mut Program,
    level: OptLevel,
    mode: VerifyMode,
) -> PipelineStats {
    run_pipeline_impl(program, level, Some(mode))
}

fn run_pipeline_impl(
    program: &mut Program,
    level: OptLevel,
    verify_mode: Option<VerifyMode>,
) -> PipelineStats {
    let mut pm = PassManager::for_level(level);
    if let Some(mode) = verify_mode {
        pm = pm.with_verify(mode);
    }
    if level >= OptLevel::O2 {
        let threshold = if level == OptLevel::Os { 10 } else { 24 };
        let inlined = inline_small_functions(program, threshold);
        let st = pm.stats.entry(pass::INLINE);
        st.runs += 1;
        st.changes += inlined;
        let before: usize = program.functions.iter().map(MirFunction::inst_count).sum();
        let removed_fns = dead_function_elimination(program);
        let after: usize = program.functions.iter().map(MirFunction::inst_count).sum();
        pm.stats.record(
            pass::DEAD_FN_ELIM,
            !removed_fns.is_empty(),
            before.saturating_sub(after),
        );
        let st = pm.stats.entry(pass::DEAD_FN_ELIM);
        st.changes = st.changes.max(removed_fns.len());
        // Program-pass boundary: inlining remaps registers and call
        // indices across functions; re-check before the per-function
        // loop (debug builds only).
        if cfg!(debug_assertions) {
            let vs = verify::verify_program(program, verify::Tier::PhiFree);
            assert!(
                vs.is_empty(),
                "MIR verifier: after the program passes:{}",
                verify::report(&vs)
            );
        }
    }
    if level > OptLevel::O0 {
        pm.run_program(program);
    }
    pm.into_stats()
}

// ---------------------------------------------------------------------
// Constant propagation + folding + branch folding (on SSA)
// ---------------------------------------------------------------------

/// Propagates and folds constants; folds constant branches. Returns `true`
/// if anything changed.
pub fn constant_fold(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    let mut known: BTreeMap<VReg, i32> = BTreeMap::new();
    let mut changed = false;
    // SSA: each def has one value; iterate to a fixpoint to flow through
    // φs and copies in any block order.
    loop {
        let mut grew = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            for inst in &f.block(b).insts {
                let Some(dst) = inst.def() else { continue };
                if known.contains_key(&dst) {
                    continue;
                }
                let value = match inst {
                    Inst::Const { value, .. } => Some(*value),
                    Inst::Copy { src, .. } => known.get(src).copied(),
                    Inst::Un { op, src, .. } => known.get(src).map(|v| op.eval(*v)),
                    Inst::Bin { op, lhs, rhs, .. } => match (known.get(lhs), known.get(rhs)) {
                        (Some(a), Some(b)) => Some(op.eval(*a, *b)),
                        _ => None,
                    },
                    Inst::Phi { args, .. } => {
                        let vals: Option<BTreeSet<i32>> =
                            args.iter().map(|(_, v)| known.get(v).copied()).collect();
                        vals.and_then(|s| {
                            if s.len() == 1 {
                                s.into_iter().next()
                            } else {
                                None
                            }
                        })
                    }
                    _ => None,
                };
                if let Some(v) = value {
                    known.insert(dst, v);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Rewrite: folded instructions become Consts; constant branches become
    // gotos.
    let mut folded_branch = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        for inst in &mut blk.insts {
            let Some(dst) = inst.def() else { continue };
            if let Some(v) = known.get(&dst) {
                let replace = !matches!(inst, Inst::Const { .. })
                    && inst.is_pure()
                    && !matches!(inst, Inst::Load { .. });
                if replace {
                    *inst = Inst::Const { dst, value: *v };
                    changed = true;
                }
            }
        }
        match &blk.term {
            Term::Br {
                cond,
                then_block,
                else_block,
            } => {
                if let Some(v) = known.get(cond) {
                    blk.term = Term::Goto(if *v != 0 { *then_block } else { *else_block });
                    changed = true;
                    folded_branch = true;
                }
            }
            Term::Switch {
                val,
                cases,
                default,
            } => {
                if let Some(v) = known.get(val) {
                    let target = cases
                        .iter()
                        .find(|(c, _)| c == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    blk.term = Term::Goto(target);
                    changed = true;
                    folded_branch = true;
                }
            }
            _ => {}
        }
    }
    // Folding a branch removes CFG edges, which strands φ-arguments in the
    // old arms' targets; prune them (and fold now-trivial φs) so the SSA
    // invariants hold after this pass just like after `sccp`.
    if folded_branch {
        ssa::remove_unreachable_blocks(f);
        prune_phi_args(f);
    }
    changed
}

// ---------------------------------------------------------------------
// Sparse conditional constant propagation (on SSA)
// ---------------------------------------------------------------------

/// The SCCP value lattice: unknown (⊤) → a single constant → overdefined
/// (⊥). Values only ever move downward, which bounds the worklist run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lattice {
    /// No evidence yet (optimistic initial state).
    Top,
    /// Proven to always hold this constant on every executable path.
    Const(i32),
    /// Proven to vary (or to come from memory, calls or parameters).
    Bottom,
}

impl Lattice {
    fn meet(a: Lattice, b: Lattice) -> Lattice {
        match (a, b) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
            (Lattice::Const(x), Lattice::Const(y)) if x == y => Lattice::Const(x),
            _ => Lattice::Bottom,
        }
    }
}

/// Analysis state of one [`sccp`] run (the classic two-worklist scheme of
/// Wegman & Zadeck: a *flow* worklist of CFG edges becoming executable
/// and an *SSA* worklist of uses whose operand lattice dropped).
struct SccpState<'a> {
    f: &'a MirFunction,
    values: BTreeMap<VReg, Lattice>,
    exec_edge: BTreeSet<(BlockId, BlockId)>,
    exec_block: BTreeSet<BlockId>,
    /// CFG edges newly marked executable, to propagate from.
    flow: Vec<(BlockId, BlockId)>,
    /// `(block, Some(inst index))` for an instruction re-evaluation,
    /// `(block, None)` for a terminator re-evaluation.
    ssa_work: Vec<(BlockId, Option<usize>)>,
    inst_users: BTreeMap<VReg, Vec<(BlockId, usize)>>,
    term_users: BTreeMap<VReg, Vec<BlockId>>,
}

impl SccpState<'_> {
    fn val(&self, v: VReg) -> Lattice {
        self.values.get(&v).copied().unwrap_or(Lattice::Top)
    }

    /// Lowers `dst` to `meet(old, new)`; queues its users if it moved.
    fn lower(&mut self, dst: VReg, new: Lattice) {
        let old = self.val(dst);
        let merged = Lattice::meet(old, new);
        if merged == old {
            return;
        }
        self.values.insert(dst, merged);
        if let Some(users) = self.inst_users.get(&dst) {
            for &(b, i) in users {
                self.ssa_work.push((b, Some(i)));
            }
        }
        if let Some(users) = self.term_users.get(&dst) {
            for &b in users {
                self.ssa_work.push((b, None));
            }
        }
    }

    fn visit_inst(&mut self, b: BlockId, i: usize) {
        let inst = &self.f.block(b).insts[i];
        let Some(dst) = inst.def() else { return };
        let new = match inst {
            Inst::Const { value, .. } => Lattice::Const(*value),
            Inst::Copy { src, .. } => self.val(*src),
            Inst::Un { op, src, .. } => match self.val(*src) {
                Lattice::Top => Lattice::Top,
                Lattice::Const(c) => Lattice::Const(op.eval(c)),
                Lattice::Bottom => Lattice::Bottom,
            },
            Inst::Bin { op, lhs, rhs, .. } => match (self.val(*lhs), self.val(*rhs)) {
                (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                (Lattice::Const(a), Lattice::Const(b)) => Lattice::Const(op.eval(a, b)),
                _ => Lattice::Top,
            },
            Inst::Phi { args, .. } => args
                .iter()
                .filter(|(p, _)| self.exec_edge.contains(&(*p, b)))
                .fold(Lattice::Top, |acc, (_, v)| Lattice::meet(acc, self.val(*v))),
            // Memory, addresses and call results are never constant here.
            Inst::Load { .. }
            | Inst::Addr { .. }
            | Inst::FnAddr { .. }
            | Inst::Call { .. }
            | Inst::CallExtern { .. }
            | Inst::CallInd { .. }
            | Inst::Store { .. } => Lattice::Bottom,
        };
        self.lower(dst, new);
    }

    fn visit_term(&mut self, b: BlockId) {
        match &self.f.block(b).term {
            Term::Goto(t) => self.flow.push((b, *t)),
            Term::Br {
                cond,
                then_block,
                else_block,
            } => match self.val(*cond) {
                Lattice::Top => {}
                Lattice::Const(c) => {
                    let t = if c != 0 { *then_block } else { *else_block };
                    self.flow.push((b, t));
                }
                Lattice::Bottom => {
                    self.flow.push((b, *then_block));
                    self.flow.push((b, *else_block));
                }
            },
            Term::Switch {
                val,
                cases,
                default,
            } => match self.val(*val) {
                Lattice::Top => {}
                Lattice::Const(c) => {
                    let t = cases
                        .iter()
                        .find(|(k, _)| *k == c)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    self.flow.push((b, t));
                }
                Lattice::Bottom => {
                    for (_, t) in cases {
                        self.flow.push((b, *t));
                    }
                    self.flow.push((b, *default));
                }
            },
            Term::Ret(_) => {}
        }
    }

    fn visit_block(&mut self, b: BlockId) {
        for i in 0..self.f.block(b).insts.len() {
            self.visit_inst(b, i);
        }
        self.visit_term(b);
    }

    fn run(&mut self) {
        self.exec_block.insert(BlockId(0));
        self.visit_block(BlockId(0));
        loop {
            if let Some((p, s)) = self.flow.pop() {
                if self.exec_edge.insert((p, s)) {
                    if self.exec_block.insert(s) {
                        self.visit_block(s);
                    } else {
                        // Already-executable target: only its φs see the
                        // new incoming edge.
                        for i in 0..self.f.block(s).insts.len() {
                            if matches!(self.f.block(s).insts[i], Inst::Phi { .. }) {
                                self.visit_inst(s, i);
                            }
                        }
                    }
                }
                continue;
            }
            if let Some((b, oi)) = self.ssa_work.pop() {
                if self.exec_block.contains(&b) {
                    match oi {
                        Some(i) => self.visit_inst(b, i),
                        None => self.visit_term(b),
                    }
                }
                continue;
            }
            break;
        }
    }
}

/// Sparse conditional constant propagation (Wegman–Zadeck), on SSA.
///
/// Unlike the dense [`constant_fold`] fixpoint, SCCP tracks which CFG
/// edges can execute and meets φ-arguments over *executable* incoming
/// edges only, so a constant flowing through a branch it itself decides
/// is still folded: reachability and constancy reinforce each other.
/// Instructions proven constant become `Const`s, terminators with a
/// proven scrutinee become `Goto`s (subsuming most of what
/// [`fold_terminators`] would clean up afterwards), never-executable
/// blocks are removed, and φ-arguments of dropped edges are pruned.
/// Returns `true` if anything changed.
pub fn sccp(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    // Use lists, so lattice drops re-queue exactly the affected users.
    let mut inst_users: BTreeMap<VReg, Vec<(BlockId, usize)>> = BTreeMap::new();
    let mut term_users: BTreeMap<VReg, Vec<BlockId>> = BTreeMap::new();
    for b in f.block_ids() {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            for u in inst.uses() {
                inst_users.entry(u).or_default().push((b, i));
            }
        }
        for u in f.block(b).term.uses() {
            term_users.entry(u).or_default().push(b);
        }
    }
    let mut values: BTreeMap<VReg, Lattice> = BTreeMap::new();
    for p in 0..f.params {
        values.insert(VReg(p as u32), Lattice::Bottom);
    }
    let mut state = SccpState {
        f,
        values,
        exec_edge: BTreeSet::new(),
        exec_block: BTreeSet::new(),
        flow: Vec::new(),
        ssa_work: Vec::new(),
        inst_users,
        term_users,
    };
    state.run();
    let SccpState {
        values, exec_block, ..
    } = state;

    // Rewrite phase: executable blocks only; the rest are removed below.
    let mut changed = false;
    for &b in &exec_block {
        let blk = f.block_mut(b);
        for inst in &mut blk.insts {
            let Some(dst) = inst.def() else { continue };
            let Some(Lattice::Const(c)) = values.get(&dst).copied() else {
                continue;
            };
            if !matches!(inst, Inst::Const { .. }) && inst.is_pure() {
                *inst = Inst::Const { dst, value: c };
                changed = true;
            }
        }
        match &blk.term {
            Term::Br {
                cond,
                then_block,
                else_block,
            } => {
                if let Some(Lattice::Const(c)) = values.get(cond) {
                    blk.term = Term::Goto(if *c != 0 { *then_block } else { *else_block });
                    changed = true;
                }
            }
            Term::Switch {
                val,
                cases,
                default,
            } => {
                if let Some(Lattice::Const(c)) = values.get(val) {
                    let target = cases
                        .iter()
                        .find(|(k, _)| k == c)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    blk.term = Term::Goto(target);
                    changed = true;
                }
            }
            _ => {}
        }
    }
    if changed {
        ssa::remove_unreachable_blocks(f);
        prune_phi_args(f);
    }
    changed
}

/// Drops φ-arguments whose predecessor edge no longer exists (after a
/// branch was folded to a `Goto` the old arm's argument is stale), and
/// deduplicates arguments per remaining predecessor. Keeps SSA form
/// consistent for [`ssa::destruct`], which inserts one parallel copy per
/// `(pred, block)` edge. Blocks left with a single predecessor have
/// their φs folded to copies ([`ssa::fold_trivial_phis`]), preserving
/// the verifier's φ-join discipline.
fn prune_phi_args(f: &mut MirFunction) {
    let preds = cfg::predecessors(f);
    for b in f.block_ids().collect::<Vec<_>>() {
        let ps: BTreeSet<BlockId> = preds[b.0 as usize].iter().copied().collect();
        for inst in &mut f.block_mut(b).insts {
            if let Inst::Phi { args, .. } = inst {
                let mut seen: BTreeSet<BlockId> = BTreeSet::new();
                args.retain(|(p, _)| ps.contains(p) && seen.insert(*p));
            }
        }
    }
    ssa::fold_trivial_phis(f);
}

// ---------------------------------------------------------------------
// Copy propagation (on SSA)
// ---------------------------------------------------------------------

/// Replaces uses of copies with their (transitively resolved) sources.
pub fn copy_propagate(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    let mut alias: BTreeMap<VReg, VReg> = BTreeMap::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        for inst in &f.block(b).insts {
            if let Inst::Copy { dst, src } = inst {
                alias.insert(*dst, *src);
            }
        }
    }
    if alias.is_empty() {
        return false;
    }
    let resolve = |mut v: VReg| {
        let mut hops = 0;
        while let Some(&next) = alias.get(&v) {
            v = next;
            hops += 1;
            if hops > alias.len() {
                break; // defensive: cycles cannot occur in SSA
            }
        }
        v
    };
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        for inst in &mut blk.insts {
            inst.map_uses(&mut |v| {
                let r = resolve(v);
                if r != v {
                    changed = true;
                }
                r
            });
        }
        blk.term.map_uses(&mut |v| {
            let r = resolve(v);
            if r != v {
                changed = true;
            }
            r
        });
    }
    changed
}

// ---------------------------------------------------------------------
// Global value numbering / common-subexpression elimination (on SSA)
// ---------------------------------------------------------------------

/// A value-number key for a pure, memory-free computation. `Const` is
/// deliberately absent: re-materializing an immediate is as cheap as a
/// copy, and CSE-ing constants would ping-pong with [`constant_fold`]
/// (which rewrites known-value copies back into constants).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum GvnKey {
    Un(UnOp, VReg),
    Bin(BinOp, VReg, VReg),
    Addr(usize, i32),
    FnAddr(usize),
}

/// Dominator-scoped global value numbering / common-subexpression
/// elimination. A pure, memory-free instruction recomputing a value
/// already available from a dominating definition is replaced by a
/// `Copy` from that definition; copy propagation and DCE then erase the
/// leftovers. Operands are canonicalized through already-discovered
/// value leaders (and by operand order for commutative operators), so
/// second-order redundancies fall in one sweep. Loads are deliberately
/// not value-numbered — block-local load redundancy is
/// [`store_load_forward`]'s job, which tracks clobbers. Returns `true`
/// if anything changed.
pub fn gvn_cse(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    let idom = cfg::dominators(f);
    let children = cfg::dominator_tree_children(&idom);
    let mut table: BTreeMap<GvnKey, VReg> = BTreeMap::new();
    let mut leader: BTreeMap<VReg, VReg> = BTreeMap::new();
    let mut changed = false;
    gvn_walk(
        f,
        BlockId(0),
        &children,
        &mut table,
        &mut leader,
        &mut changed,
    );
    changed
}

fn gvn_leader(leader: &BTreeMap<VReg, VReg>, v: VReg) -> VReg {
    leader.get(&v).copied().unwrap_or(v)
}

fn gvn_walk(
    f: &mut MirFunction,
    b: BlockId,
    children: &BTreeMap<BlockId, Vec<BlockId>>,
    table: &mut BTreeMap<GvnKey, VReg>,
    leader: &mut BTreeMap<VReg, VReg>,
    changed: &mut bool,
) {
    // Keys this block introduced; they go out of scope (become
    // non-dominating) when the walk leaves the block's subtree.
    let mut added: Vec<GvnKey> = Vec::new();
    for i in 0..f.block(b).insts.len() {
        let inst = f.block(b).insts[i].clone();
        let key = match &inst {
            Inst::Copy { dst, src } => {
                let l = gvn_leader(leader, *src);
                leader.insert(*dst, l);
                continue;
            }
            Inst::Un { op, src, .. } => Some(GvnKey::Un(*op, gvn_leader(leader, *src))),
            Inst::Bin { op, lhs, rhs, .. } => {
                let (mut a, mut c) = (gvn_leader(leader, *lhs), gvn_leader(leader, *rhs));
                if op.commutative() && c < a {
                    std::mem::swap(&mut a, &mut c);
                }
                Some(GvnKey::Bin(*op, a, c))
            }
            Inst::Addr { global, offset, .. } => Some(GvnKey::Addr(*global, *offset)),
            Inst::FnAddr { func, .. } => Some(GvnKey::FnAddr(*func)),
            _ => None,
        };
        let (Some(key), Some(dst)) = (key, inst.def()) else {
            continue;
        };
        if let Some(&rep) = table.get(&key) {
            f.block_mut(b).insts[i] = Inst::Copy { dst, src: rep };
            leader.insert(dst, gvn_leader(leader, rep));
            *changed = true;
        } else {
            table.insert(key.clone(), dst);
            added.push(key);
        }
    }
    if let Some(kids) = children.get(&b) {
        for &k in kids {
            gvn_walk(f, k, children, table, leader, changed);
        }
    }
    for k in added {
        table.remove(&k);
    }
}

// ---------------------------------------------------------------------
// Store-to-load forwarding / redundant-load elimination (block-local)
// ---------------------------------------------------------------------

/// Block-local store-to-load forwarding and redundant-load elimination
/// over a tracked memory state. Walking each block forward, the pass
/// remembers which register holds the current content of every exactly
/// addressed cell ([`mem::AddrInfo::Exact`]) — from a store's source or
/// a previous load's destination — and rewrites a later load of the same
/// cell into a `Copy` (copy propagation and DCE then erase it). The
/// aliasing discipline is [`mem::alias`]: an exact store invalidates
/// its own cell and any tracked cell within a word of it (accesses are
/// words at byte granularity, so near offsets partially overlap), a
/// rooted run-time store invalidates its global, an untraceable store
/// invalidates everything. `Call`/`CallInd` invalidate
/// every mutable global's cells (rodata survives: no callee can store to
/// a `const` global); `CallExtern` invalidates nothing (the EM32 `Ecall`
/// passes registers only). This is the pass that shrinks the
/// load-global → test → store-global context traffic every generated
/// handler emits. Returns `true` if anything changed.
///
/// Sound on any form: multiply-defined registers resolve to
/// [`mem::AddrInfo::Unknown`], and a redefinition of a tracked value
/// register drops its cells, so non-SSA input merely loses precision.
pub fn store_load_forward(f: &mut MirFunction, model: &mem::MemoryModel) -> bool {
    let addrs = mem::FnAddrs::analyze(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        // (global, offset) -> register holding that cell's content here.
        let mut cells: BTreeMap<(usize, i32), VReg> = BTreeMap::new();
        for inst in &mut f.block_mut(b).insts {
            // Forward first: the rewrite must see the state *before* this
            // instruction's own definition invalidates anything.
            if let Inst::Load { dst, addr } = *inst {
                if let mem::AddrInfo::Exact { global, offset } = addrs.info(addr) {
                    if let Some(&v) = cells.get(&(global, offset)) {
                        *inst = Inst::Copy { dst, src: v };
                        changed = true;
                    }
                }
            }
            // A redefinition of a tracked value register makes the
            // remembered content stale (only possible off SSA form).
            if let Some(d) = inst.def() {
                cells.retain(|_, v| *v != d);
            }
            match inst {
                Inst::Load { dst, addr } => {
                    if let mem::AddrInfo::Exact { global, offset } = addrs.info(*addr) {
                        cells.insert((global, offset), *dst);
                    }
                }
                Inst::Store { addr, src } => match addrs.info(*addr) {
                    mem::AddrInfo::Exact { global, offset } => {
                        // Accesses are words at byte granularity: the
                        // store also corrupts any tracked cell within a
                        // word of its offset.
                        cells.retain(|&(g, o), _| g != global || !mem::overlaps(o, offset));
                        cells.insert((global, offset), *src);
                    }
                    mem::AddrInfo::Base { global } => {
                        cells.retain(|(g, _), _| *g != global);
                    }
                    mem::AddrInfo::Unknown => cells.clear(),
                },
                i if i.may_write_mem() => {
                    cells.retain(|(g, _), _| model.is_rodata(*g));
                }
                _ => {}
            }
        }
    }
    changed
}

// ---------------------------------------------------------------------
// Dead-store elimination (block-local)
// ---------------------------------------------------------------------

/// Block-local dead-store elimination: a store to an exactly addressed
/// cell that is overwritten by a later store to the same cell — with no
/// possible read of the cell in between — is dropped. Walking each block
/// backward, the pass carries the set of cells certain to be overwritten
/// before any read: a store inserts its cell (or dies against it), a
/// read removes what it may alias (a call may read everything; an extern
/// cannot read memory at all), and the set starts empty at the block end
/// because memory is live across blocks and calls. Returns `true` if
/// anything changed.
pub fn dead_store_elim(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    let addrs = mem::FnAddrs::analyze(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        let mut overwritten: BTreeSet<(usize, i32)> = BTreeSet::new();
        let mut kept_rev: Vec<Inst> = Vec::with_capacity(blk.insts.len());
        for inst in std::mem::take(&mut blk.insts).into_iter().rev() {
            match &inst {
                Inst::Store { addr, .. } => {
                    // Stores read no memory, so even an untraceable store
                    // leaves the overwritten set intact.
                    if let mem::AddrInfo::Exact { global, offset } = addrs.info(*addr) {
                        if !overwritten.insert((global, offset)) {
                            changed = true;
                            continue; // dead: surely overwritten unread
                        }
                    }
                }
                Inst::Load { addr, .. } => match addrs.info(*addr) {
                    mem::AddrInfo::Exact { global, offset } => {
                        // The word read touches every cell within a word
                        // of its offset (byte-granular addressing).
                        overwritten.retain(|&(g, o)| g != global || !mem::overlaps(o, offset));
                    }
                    mem::AddrInfo::Base { global } => {
                        overwritten.retain(|(g, _)| *g != global);
                    }
                    mem::AddrInfo::Unknown => overwritten.clear(),
                },
                i if i.may_read_mem() => overwritten.clear(),
                _ => {}
            }
            kept_rev.push(inst);
        }
        kept_rev.reverse();
        blk.insts = kept_rev;
    }
    changed
}

// ---------------------------------------------------------------------
// Cross-block load redundancy elimination (avail_loads + two passes)
// ---------------------------------------------------------------------

/// Result of [`avail_loads`]: per block, the set of exactly addressed
/// memory cells ([`mem::Cell`]) whose values are *must-available* — on
/// every path from the entry, the cell was last written or read with no
/// intervening clobber — on block entry and exit, plus the per-block
/// [`mem::BlockCells`] transfer summaries the sets were computed from.
#[derive(Debug, Clone, Default)]
pub struct AvailLoads {
    universe: BTreeSet<mem::Cell>,
    effects: Vec<mem::BlockCells>,
    avail_in: Vec<BTreeSet<mem::Cell>>,
    avail_out: Vec<BTreeSet<mem::Cell>>,
}

impl AvailLoads {
    /// The cell universe the analysis ranged over.
    pub fn universe(&self) -> &BTreeSet<mem::Cell> {
        &self.universe
    }

    /// Cells available on entry to `b`.
    pub fn on_entry(&self, b: BlockId) -> &BTreeSet<mem::Cell> {
        &self.avail_in[b.0 as usize]
    }

    /// Cells available at the exit of `b`.
    pub fn at_exit(&self, b: BlockId) -> &BTreeSet<mem::Cell> {
        &self.avail_out[b.0 as usize]
    }

    /// `true` if `cell` is available on the CFG edge `p → _` (edges
    /// neither kill nor gen, so edge availability is the source block's
    /// exit availability) — the per-edge query load-PRE partitions a
    /// join's predecessors with.
    pub fn on_edge(&self, p: BlockId, cell: mem::Cell) -> bool {
        self.avail_out[p.0 as usize].contains(&cell)
    }

    /// The transfer summary of block `b`.
    pub fn effects(&self, b: BlockId) -> &mem::BlockCells {
        &self.effects[b.0 as usize]
    }
}

/// Forward must-availability dataflow over the CFG: a cell is available
/// at a point if on *every* path there it was last stored or loaded with
/// no intervening clobber ([`mem::CellState`]'s aliasing discipline:
/// may-aliasing stores, and calls to non-transparent effects — rodata
/// cells survive calls, externs are memory-transparent).
///
/// The meet is set intersection over the block's reachable predecessors,
/// seeded optimistically (everything available everywhere except the
/// entry, whose in-set is empty) and iterated in reverse postorder to
/// the greatest fixed point, so loop-transparent cells stay available
/// around back edges. At natural-loop headers the in-set is additionally
/// filtered through the loop's [`mem::LoopClobbers`] summary — the
/// explicit "the body writes this, kill it" rule, which makes the common
/// reducible case converge in a single sweep (the fixed point covers
/// irreducible shapes the loop forest cannot describe).
pub fn avail_loads(f: &MirFunction, model: &mem::MemoryModel, addrs: &mem::FnAddrs) -> AvailLoads {
    let n = f.blocks.len();
    let universe = mem::cell_universe(f, addrs);
    let effects: Vec<mem::BlockCells> = f
        .block_ids()
        .map(|b| mem::BlockCells::summarize(f, b, &universe, addrs, model))
        .collect();
    let mut avail = AvailLoads {
        universe,
        effects,
        avail_in: vec![BTreeSet::new(); n],
        avail_out: vec![BTreeSet::new(); n],
    };
    if avail.universe.is_empty() {
        return avail;
    }
    let rpo = cfg::reverse_postorder(f);
    let reachable: BTreeSet<BlockId> = rpo.iter().copied().collect();
    let preds = cfg::predecessors(f);
    let header_clobbers: BTreeMap<BlockId, mem::LoopClobbers> = cfg::natural_loops(f)
        .iter()
        .map(|lp| (lp.header, mem::LoopClobbers::summarize(f, &lp.body, addrs)))
        .collect();
    for &b in &rpo {
        if b != BlockId(0) {
            avail.avail_out[b.0 as usize] = avail.universe.clone();
        }
    }
    loop {
        let mut changed = false;
        for &b in &rpo {
            let mut in_set = BTreeSet::new();
            if b != BlockId(0) {
                let ps: BTreeSet<BlockId> = preds[b.0 as usize]
                    .iter()
                    .copied()
                    .filter(|p| reachable.contains(p))
                    .collect();
                let mut first = true;
                for p in ps {
                    let out = &avail.avail_out[p.0 as usize];
                    if first {
                        in_set = out.clone();
                        first = false;
                    } else {
                        in_set.retain(|c| out.contains(c));
                    }
                }
                if let Some(cl) = header_clobbers.get(&b) {
                    in_set.retain(|&c| !cl.clobbers(mem::cell_info(c), model));
                }
            }
            let out_set = avail.effects[b.0 as usize].flow(&in_set);
            let i = b.0 as usize;
            if in_set != avail.avail_in[i] || out_set != avail.avail_out[i] {
                avail.avail_in[i] = in_set;
                avail.avail_out[i] = out_set;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    avail
}

/// A φ the load rewriter decided to insert, not yet materialized (its
/// arguments may still collapse through the replacement map).
struct PendingPhi {
    block: BlockId,
    dst: VReg,
    args: Vec<(BlockId, VReg)>,
}

/// Shared state of the lazy cell-value resolution both cross-block
/// passes use: memoized per-(block, cell) entry values and the φs
/// allocated to merge differing predecessor values.
struct LoadResolver<'a> {
    avail: &'a AvailLoads,
    preds: &'a [Vec<BlockId>],
    reachable: &'a BTreeSet<BlockId>,
    entry_memo: BTreeMap<(BlockId, mem::Cell), VReg>,
    phis: Vec<PendingPhi>,
}

impl LoadResolver<'_> {
    /// The register holding `cell`'s value on entry to `b`. Only valid
    /// when the dataflow proved the cell available there; φs are
    /// allocated at joins whose predecessors disagree, memoized *before*
    /// the recursive argument resolution so loop back edges close on the
    /// φ itself (Braun et al.'s on-demand construction).
    fn entry_value(&mut self, f: &mut MirFunction, b: BlockId, cell: mem::Cell) -> VReg {
        if let Some(&v) = self.entry_memo.get(&(b, cell)) {
            return v;
        }
        debug_assert!(
            self.avail.on_entry(b).contains(&cell),
            "entry_value on unavailable cell {cell:?} at {b}"
        );
        let ps: Vec<BlockId> = self.preds[b.0 as usize]
            .iter()
            .copied()
            .filter(|p| self.reachable.contains(p))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        debug_assert!(!ps.is_empty(), "available cell with no predecessor at {b}");
        if ps.len() == 1 {
            let v = self.exit_value(f, ps[0], cell);
            self.entry_memo.insert((b, cell), v);
            v
        } else {
            let dst = f.fresh();
            self.entry_memo.insert((b, cell), dst);
            let args: Vec<(BlockId, VReg)> = ps
                .into_iter()
                .map(|p| {
                    let v = self.exit_value(f, p, cell);
                    (p, v)
                })
                .collect();
            self.phis.push(PendingPhi {
                block: b,
                dst,
                args,
            });
            dst
        }
    }

    /// The register holding `cell`'s value at the exit of `p`: the
    /// block's own provider if it has one, else the entry value carried
    /// through a transparent block.
    fn exit_value(&mut self, f: &mut MirFunction, p: BlockId, cell: mem::Cell) -> VReg {
        if let Some(&v) = self.avail.effects(p).provides.get(&cell) {
            return v;
        }
        self.entry_value(f, p, cell)
    }
}

/// The shared analysis prologue of the two cross-block passes: address
/// resolution, the availability dataflow, dominators and the
/// dominance-ordered reachable-block walk. One constructor keeps both
/// passes' view of the CFG identical by construction.
struct CrossBlockCtx {
    addrs: mem::FnAddrs,
    avail: AvailLoads,
    idom: BTreeMap<BlockId, BlockId>,
    order: Vec<BlockId>,
    preds: Vec<Vec<BlockId>>,
    reachable: BTreeSet<BlockId>,
}

impl CrossBlockCtx {
    /// `None` when the function touches no exactly addressed cell —
    /// neither pass has anything to do then.
    fn analyze(f: &MirFunction, model: &mem::MemoryModel) -> Option<CrossBlockCtx> {
        let addrs = mem::FnAddrs::analyze(f);
        let avail = avail_loads(f, model, &addrs);
        if avail.universe().is_empty() {
            return None;
        }
        let idom = cfg::dominators(f);
        let order = cfg::dominator_preorder(&idom);
        let preds = cfg::predecessors(f);
        let reachable = order.iter().copied().collect();
        Some(CrossBlockCtx {
            addrs,
            avail,
            idom,
            order,
            preds,
            reachable,
        })
    }

    fn resolver(&self) -> LoadResolver<'_> {
        LoadResolver {
            avail: &self.avail,
            preds: &self.preds,
            reachable: &self.reachable,
            entry_memo: BTreeMap::new(),
            phis: Vec::new(),
        }
    }
}

/// The edits a cross-block pass accumulates before touching the
/// function: loads to delete (with every use of their destination
/// rewritten to the forwarded value), φs to materialize, instructions to
/// append to predecessor blocks (load-PRE's compensating loads).
#[derive(Default)]
struct LoadEdits {
    /// Replacements for deleted definitions (and collapsed φs); applied
    /// transitively to every use in the function.
    repl: BTreeMap<VReg, VReg>,
    /// `(block, instruction index)` of loads to delete.
    delete: BTreeSet<(BlockId, usize)>,
    /// Instructions appended to the end of a block (before its
    /// terminator).
    append: BTreeMap<BlockId, Vec<Inst>>,
}

impl LoadEdits {
    fn resolve(&self, mut v: VReg) -> VReg {
        let mut hops = 0;
        while let Some(&n) = self.repl.get(&v) {
            v = n;
            hops += 1;
            if hops > self.repl.len() {
                break; // defensive: replacement chains cannot cycle
            }
        }
        v
    }

    /// Applies everything: collapses trivial φs (all arguments resolve
    /// to one value besides the φ itself — such a φ *is* that value, the
    /// self-argument being the unchanged loop-carried copy), prepends the
    /// surviving φs, deletes the forwarded loads, rewrites every use
    /// through the replacement map and appends the compensating
    /// instructions. Returns `true` if the function changed.
    fn apply(mut self, f: &mut MirFunction, mut phis: Vec<PendingPhi>) -> bool {
        if self.delete.is_empty() && phis.is_empty() && self.append.is_empty() {
            return false;
        }
        // Trivial-φ collapse to a fixed point: collapsing one φ can make
        // another's arguments agree.
        loop {
            let mut collapsed = false;
            phis.retain(|phi| {
                let distinct: BTreeSet<VReg> = phi
                    .args
                    .iter()
                    .map(|(_, v)| self.resolve(*v))
                    .filter(|v| *v != phi.dst)
                    .collect();
                if distinct.len() == 1 {
                    let only = *distinct.iter().next().expect("one element");
                    self.repl.insert(phi.dst, only);
                    collapsed = true;
                    false
                } else {
                    true
                }
            });
            if !collapsed {
                break;
            }
        }
        let mut phi_by_block: BTreeMap<BlockId, Vec<Inst>> = BTreeMap::new();
        for phi in phis {
            let args = phi
                .args
                .iter()
                .map(|&(p, v)| (p, self.resolve(v)))
                .collect();
            phi_by_block
                .entry(phi.block)
                .or_default()
                .push(Inst::Phi { dst: phi.dst, args });
        }
        for b in f.block_ids().collect::<Vec<_>>() {
            let tail = self.append.remove(&b).unwrap_or_default();
            let blk = f.block_mut(b);
            let old = std::mem::take(&mut blk.insts);
            let mut insts = phi_by_block.remove(&b).unwrap_or_default();
            insts.reserve(old.len() + tail.len());
            for (i, inst) in old.into_iter().enumerate() {
                if !self.delete.contains(&(b, i)) {
                    insts.push(inst);
                }
            }
            insts.extend(tail);
            blk.insts = insts;
            let blk = f.block_mut(b);
            for inst in &mut blk.insts {
                inst.map_uses(&mut |v| self.resolve(v));
            }
            blk.term.map_uses(&mut |v| self.resolve(v));
        }
        true
    }
}

/// Cross-block store-to-load forwarding / redundant-load elimination, on
/// SSA — the mid-end's first *global* memory optimization. Backed by
/// [`avail_loads`]: a load of a cell that is must-available on block
/// entry (dominated by a same-cell store or load with no intervening
/// clobber on any path) is **deleted** and every use of its destination
/// rewritten to the available value, threaded through the SSA graph with
/// new φs at joins where the incoming values differ (and closing over
/// back edges with loop φs — a loop-transparent cell's value enters the
/// φ from outside and recycles through the latch). Trivial φs (every
/// argument one value) collapse away before materialization, so
/// straight-line chains — the State Pattern's call-free handler paths
/// re-reading the context cell the caller just tested — forward with no
/// φ at all.
///
/// This is the pass the recorded `gain_order_matches_table1` deviation
/// pointed at: block-local forwarding helps the State Pattern least
/// because its handlers re-load the same context cells *across* block
/// boundaries. Deleting the loads here (rather than leaving copies)
/// makes the pass's `insts_removed` stat the direct count of loads
/// eliminated. Returns `true` if anything changed.
pub fn cross_block_forward(f: &mut MirFunction, model: &mem::MemoryModel) -> bool {
    let Some(ctx) = CrossBlockCtx::analyze(f, model) else {
        return false;
    };
    let mut resolver = ctx.resolver();
    let mut edits = LoadEdits::default();
    for &b in &ctx.order {
        let mut st = mem::CellState::new(ctx.avail.universe());
        for i in 0..f.block(b).insts.len() {
            let load = match &f.block(b).insts[i] {
                Inst::Load { dst, addr } => Some((*dst, *addr)),
                _ => None,
            };
            if let Some((dst, addr)) = load {
                if let mem::AddrInfo::Exact { global, offset } = ctx.addrs.info(addr) {
                    let cell = (global, offset);
                    let forwarded = match st.value(cell) {
                        mem::CellVal::Reg(v) => Some(v),
                        mem::CellVal::FromEntry if ctx.avail.on_entry(b).contains(&cell) => {
                            Some(resolver.entry_value(f, b, cell))
                        }
                        _ => None,
                    };
                    if let Some(v) = forwarded {
                        edits.delete.insert((b, i));
                        edits.repl.insert(dst, v);
                        st.set(cell, mem::CellVal::Reg(v));
                        continue;
                    }
                }
            }
            st.apply(&f.block(b).insts[i], &ctx.addrs, model);
        }
    }
    if edits.delete.is_empty() {
        return false;
    }
    edits.apply(f, resolver.phis)
}

/// Load partial-redundancy elimination for diamond joins, on SSA. Where
/// [`cross_block_forward`] needs a cell available on *every* incoming
/// path, this pass handles the half-available case: at a two-predecessor
/// join that is not a loop header, a load of a cell available on exactly
/// one incoming edge ([`AvailLoads::on_edge`]) is made fully redundant
/// by inserting the compensating load in the *other* predecessor — a
/// fresh `Addr` + `Load` of the cell before its terminator — and
/// φ-merging the two values. The original load is deleted and its uses
/// rewritten to the φ.
///
/// The insertion is speculative when the lacking predecessor has other
/// successors: the compensating load then also executes on paths that
/// never reach the join. That is licensed by the rooted-loads-never-fault
/// rule of [`crate::mem`] — the cell is exactly addressed, so the
/// address stays inside the VM's data image and the extra load can only
/// cost time, never behaviour. Returns `true` if anything changed.
pub fn load_pre(f: &mut MirFunction, model: &mem::MemoryModel) -> bool {
    let Some(ctx) = CrossBlockCtx::analyze(f, model) else {
        return false;
    };
    let mut resolver = ctx.resolver();
    let mut edits = LoadEdits::default();
    for &b in &ctx.order {
        let ps: Vec<BlockId> = ctx.preds[b.0 as usize]
            .iter()
            .copied()
            .filter(|p| ctx.reachable.contains(p))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        // Diamond joins only: exactly two distinct forward predecessors.
        // A join one of whose edges is a back edge is a loop header —
        // compensating in the latch would reload every iteration.
        if ps.len() != 2 || ps.iter().any(|&p| cfg::dominates(&ctx.idom, b, p)) {
            continue;
        }
        let mut st = mem::CellState::new(ctx.avail.universe());
        for i in 0..f.block(b).insts.len() {
            let load = match &f.block(b).insts[i] {
                Inst::Load { dst, addr } => Some((*dst, *addr)),
                _ => None,
            };
            if let Some((dst, addr)) = load {
                if let mem::AddrInfo::Exact { global, offset } = ctx.addrs.info(addr) {
                    let cell = (global, offset);
                    // Only entry-state loads of half-available cells: the
                    // fully available case is cross_block_forward's, a
                    // locally provided value is store_load_forward's, and
                    // a locally clobbered cell cannot be compensated.
                    if st.value(cell) == mem::CellVal::FromEntry
                        && !ctx.avail.on_entry(b).contains(&cell)
                    {
                        let have: Vec<BlockId> = ps
                            .iter()
                            .copied()
                            .filter(|&p| ctx.avail.on_edge(p, cell))
                            .collect();
                        if have.len() == 1 {
                            let miss = ps[usize::from(ps[0] == have[0])];
                            let available = resolver.exit_value(f, have[0], cell);
                            let addr_reg = f.fresh();
                            let load_reg = f.fresh();
                            edits.append.entry(miss).or_default().extend([
                                Inst::Addr {
                                    dst: addr_reg,
                                    global,
                                    offset,
                                },
                                Inst::Load {
                                    dst: load_reg,
                                    addr: addr_reg,
                                },
                            ]);
                            let phi_dst = f.fresh();
                            resolver.phis.push(PendingPhi {
                                block: b,
                                dst: phi_dst,
                                args: vec![(have[0], available), (miss, load_reg)],
                            });
                            edits.delete.insert((b, i));
                            edits.repl.insert(dst, phi_dst);
                            st.set(cell, mem::CellVal::Reg(phi_dst));
                            continue;
                        }
                    }
                }
            }
            st.apply(&f.block(b).insts[i], &ctx.addrs, model);
        }
    }
    if edits.delete.is_empty() {
        return false;
    }
    edits.apply(f, resolver.phis)
}

// ---------------------------------------------------------------------
// Loop-invariant code motion (on SSA)
// ---------------------------------------------------------------------

/// Loop-invariant code motion on SSA. Natural loops come from
/// [`cfg::natural_loops`] (irreducible cycles are never reported, so they
/// are never touched); each loop with hoistable work gets a preheader —
/// reusing an existing unique outside predecessor that already ends in a
/// `Goto` to the header, otherwise inserting a fresh block and φ-safely
/// collapsing the header φs' outside arguments through it — and every
/// pure instruction whose operands are defined outside the loop (or
/// themselves hoisted) moves there. EM32 arithmetic never traps
/// (division by zero yields zero), so speculatively executing a hoisted
/// instruction once in the preheader is always safe; a `Load` is
/// additionally hoisted only when its address resolves to a rooted cell
/// ([`mem::AddrInfo`], rooted loads never fault) that no store or call
/// in the loop body can clobber ([`mem::LoopClobbers`]) — the
/// memory-aware extension that lifts the state/context reads out of the
/// STT dispatch loops, whose rodata rule tables survive even the guard
/// and effect calls in the body. The state-machine dispatch loops of the
/// STT pattern — invariant table-address arithmetic recomputed every
/// iteration — are the designed beneficiary. Returns `true` if anything
/// changed.
pub fn licm(f: &mut MirFunction, model: &mem::MemoryModel) -> bool {
    let mut changed = false;
    // One loop is transformed per step and loops are re-discovered, so
    // body sets stay exact after each preheader insertion. Terminates
    // because every step moves ≥1 instruction strictly outward; the
    // bound is defensive.
    for _ in 0..1000 {
        if !licm_step(f, model) {
            break;
        }
        changed = true;
    }
    changed
}

/// Hoists out of the first (innermost) loop with invariant work.
fn licm_step(f: &mut MirFunction, model: &mem::MemoryModel) -> bool {
    let loops = cfg::natural_loops(f);
    if loops.is_empty() {
        return false; // loop-free: skip the address analysis entirely
    }
    let addrs = mem::FnAddrs::analyze(f);
    for lp in &loops {
        if lp.header == BlockId(0) {
            // A back edge onto the entry block has no spot for a
            // preheader (entry must stay block 0); lowering never emits
            // this shape, random MIR can.
            continue;
        }
        let hoist = invariant_defs(f, lp, model, &addrs);
        if hoist.is_empty() {
            continue;
        }
        let Some(pre) = ensure_preheader(f, lp) else {
            continue;
        };
        hoist_insts(f, lp, pre, &hoist);
        return true;
    }
    false
}

/// The set of loop-defined registers whose defining instructions should
/// be hoisted: pure, not φs, with every operand defined outside the loop
/// or by another hoistable instruction — *seeded from the instructions
/// worth paying a register for*. Seeds are `Un`/`Bin` computations,
/// `Addr`/`FnAddr` address formation (EM32's 8-byte worst-case
/// instruction, re-formed every iteration in the STT dispatch loops) and
/// clobber-free `Load`s. A `Const` or `Copy` is as cheap to
/// rematerialize as to read back, so hoisting one on its own only
/// stretches a live range across the loop and invites spills (EM32 has
/// seven allocatable registers); those move only as operands of a
/// hoisted seed.
///
/// A `Load` qualifies only if its address resolves to a rooted cell the
/// loop body provably leaves alone: no may-aliasing store, and no
/// `Call`/`CallInd` when the root is mutable (rodata roots survive calls
/// — `tlang` rejects stores to `const` globals, so no callee can write
/// them; externs are memory-transparent). Rooted addresses stay inside
/// the data image, so the speculative preheader execution cannot fault.
fn invariant_defs(
    f: &MirFunction,
    lp: &cfg::NaturalLoop,
    model: &mem::MemoryModel,
    addrs: &mem::FnAddrs,
) -> BTreeSet<VReg> {
    let mut loop_def: BTreeMap<VReg, &Inst> = BTreeMap::new();
    for &b in &lp.body {
        for inst in &f.block(b).insts {
            if let Some(d) = inst.def() {
                loop_def.insert(d, inst);
            }
        }
    }
    let clobbers = mem::LoopClobbers::summarize(f, &lp.body, addrs);
    let load_movable = |inst: &Inst| match inst {
        Inst::Load { addr, .. } => {
            let info = addrs.info(*addr);
            info != mem::AddrInfo::Unknown && !clobbers.clobbers(info, model)
        }
        _ => true,
    };
    // Fixpoint: everything that *could* move.
    let mut hoistable: BTreeSet<VReg> = BTreeSet::new();
    loop {
        let mut grew = false;
        for inst in loop_def.values() {
            if matches!(inst, Inst::Phi { .. }) || !inst.is_pure() || !load_movable(inst) {
                continue;
            }
            let Some(d) = inst.def() else { continue };
            if hoistable.contains(&d) {
                continue;
            }
            if inst
                .uses()
                .iter()
                .all(|u| !loop_def.contains_key(u) || hoistable.contains(u))
            {
                hoistable.insert(d);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    // Keep computations plus the operand chains feeding them.
    let mut wanted: BTreeSet<VReg> = BTreeSet::new();
    let mut stack: Vec<VReg> = hoistable
        .iter()
        .copied()
        .filter(|d| {
            matches!(
                loop_def.get(d),
                Some(
                    Inst::Un { .. }
                        | Inst::Bin { .. }
                        | Inst::Addr { .. }
                        | Inst::FnAddr { .. }
                        | Inst::Load { .. }
                )
            )
        })
        .collect();
    while let Some(v) = stack.pop() {
        if !wanted.insert(v) {
            continue;
        }
        if let Some(inst) = loop_def.get(&v) {
            for u in inst.uses() {
                if hoistable.contains(&u) {
                    stack.push(u);
                }
            }
        }
    }
    wanted
}

/// Returns a block that dominates the loop header and is executed
/// exactly on entry to the loop: the unique outside predecessor if it
/// already forwards straight to the header, otherwise a freshly inserted
/// preheader. Insertion rewires every outside edge and collapses the
/// outside arguments of each header φ into a single argument through the
/// preheader (inserting a merge φ in the preheader when several distinct
/// outside predecessors join) — the φ- and SSA-safety the tentpole
/// requires.
fn ensure_preheader(f: &mut MirFunction, lp: &cfg::NaturalLoop) -> Option<BlockId> {
    let h = lp.header;
    let preds = cfg::predecessors(f);
    let outside: BTreeSet<BlockId> = preds[h.0 as usize]
        .iter()
        .copied()
        .filter(|p| !lp.contains(*p))
        .collect();
    if outside.is_empty() {
        return None; // unreachable loop; nothing sound to do
    }
    if outside.len() == 1 {
        let p = *outside.iter().next().expect("one element");
        if f.block(p).term.succs() == vec![h] {
            return Some(p); // already a dedicated preheader
        }
    }
    let pre = BlockId(f.blocks.len() as u32);
    // Collapse header-φ outside arguments through the new preheader.
    let mut pre_insts: Vec<Inst> = Vec::new();
    for i in 0..f.block(h).insts.len() {
        let Inst::Phi { args, .. } = &f.block(h).insts[i] else {
            continue;
        };
        // One argument per distinct outside predecessor (duplicate edges
        // carry the same renamed value, as in `dedup_phi_args`).
        let mut outside_args: Vec<(BlockId, VReg)> = Vec::new();
        for (p, v) in args {
            if !lp.contains(*p) && !outside_args.iter().any(|(q, _)| q == p) {
                outside_args.push((*p, *v));
            }
        }
        if outside_args.is_empty() {
            continue;
        }
        let via_pre = if outside_args.len() == 1 {
            outside_args[0].1
        } else {
            let merged = f.fresh();
            pre_insts.push(Inst::Phi {
                dst: merged,
                args: outside_args,
            });
            merged
        };
        let Inst::Phi { args, .. } = &mut f.block_mut(h).insts[i] else {
            unreachable!("checked above");
        };
        args.retain(|(p, _)| lp.contains(*p));
        args.push((pre, via_pre));
    }
    f.blocks.push(Block {
        insts: pre_insts,
        term: Term::Goto(h),
    });
    for p in outside {
        f.block_mut(p)
            .term
            .map_succs(&mut |s| if s == h { pre } else { s });
    }
    Some(pre)
}

/// Moves the instructions defining `hoist` from the loop body to the end
/// of `pre`, in reverse postorder so definitions keep preceding uses
/// (an operand's definition dominates its use, and dominators precede
/// dominated blocks in reverse postorder).
fn hoist_insts(f: &mut MirFunction, lp: &cfg::NaturalLoop, pre: BlockId, hoist: &BTreeSet<VReg>) {
    let order: Vec<BlockId> = cfg::reverse_postorder(f)
        .into_iter()
        .filter(|b| lp.contains(*b))
        .collect();
    let mut moved: Vec<Inst> = Vec::new();
    for b in order {
        let blk = f.block_mut(b);
        let mut kept = Vec::with_capacity(blk.insts.len());
        for inst in std::mem::take(&mut blk.insts) {
            let hoisted =
                !matches!(inst, Inst::Phi { .. }) && inst.def().is_some_and(|d| hoist.contains(&d));
            if hoisted {
                moved.push(inst);
            } else {
                kept.push(inst);
            }
        }
        blk.insts = kept;
    }
    f.block_mut(pre).insts.extend(moved);
}

// ---------------------------------------------------------------------
// Terminator folding + SSA jump threading
// ---------------------------------------------------------------------

/// Folds redundant terminators and threads jumps, on SSA form:
///
/// * a `Br` whose arms share a target becomes a `Goto`,
/// * `Switch` cases targeting the default block are dropped; a `Switch`
///   whose every arm agrees becomes a `Goto`,
/// * edges through an empty block ending in `Goto` are retargeted to its
///   destination when every φ in the destination agrees on the merged
///   value (SSA-safe jump threading).
///
/// φ-arguments of blocks that lose duplicate incoming edges are
/// deduplicated, and blocks made unreachable are removed. Returns `true`
/// if anything changed.
pub fn fold_terminators(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    let mut changed = false;

    // 1. Collapse redundant multi-way terminators.
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        let folded = match &mut blk.term {
            Term::Br {
                then_block,
                else_block,
                ..
            } if then_block == else_block => Some(*then_block),
            Term::Switch { cases, default, .. } => {
                let d = *default;
                let before = cases.len();
                cases.retain(|(_, t)| *t != d);
                if cases.len() != before {
                    changed = true;
                }
                if cases.is_empty() {
                    Some(d)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(t) = folded {
            blk.term = Term::Goto(t);
            changed = true;
        }
    }

    // 2. Thread edges through empty forwarding blocks. One retarget per
    // search so predecessor lists stay fresh; chains converge within the
    // loop.
    loop {
        let preds = cfg::predecessors(f);
        let mut acted = false;
        'search: for s in f.block_ids().collect::<Vec<_>>() {
            if s == BlockId(0) || !f.block(s).insts.is_empty() {
                continue;
            }
            let Term::Goto(t) = f.block(s).term else {
                continue;
            };
            if t == s {
                continue;
            }
            let sp = preds[s.0 as usize].clone();
            if sp.is_empty() {
                continue; // already unreachable; removed below
            }
            // φ-safety: the value joining `t` via `s` must agree with any
            // existing entry for a predecessor about to be merged in.
            for inst in &f.block(t).insts {
                let Inst::Phi { args, .. } = inst else {
                    continue;
                };
                let Some(via_s) = args.iter().find(|(p, _)| *p == s).map(|(_, v)| *v) else {
                    continue 'search;
                };
                for p in &sp {
                    if args.iter().any(|(q, w)| q == p && *w != via_s) {
                        continue 'search;
                    }
                }
            }
            // Rewrite φs in `t`: the `s` entry becomes one entry per
            // incoming predecessor (skipping those already present).
            for inst in &mut f.block_mut(t).insts {
                let Inst::Phi { args, .. } = inst else {
                    continue;
                };
                let Some(pos) = args.iter().position(|(p, _)| *p == s) else {
                    continue;
                };
                let (_, via_s) = args.remove(pos);
                for p in &sp {
                    if !args.iter().any(|(q, _)| q == p) {
                        args.push((*p, via_s));
                    }
                }
            }
            acted = true;
            changed = true;
            for p in &sp {
                f.block_mut(*p)
                    .term
                    .map_succs(&mut |x| if x == s { t } else { x });
            }
            break;
        }
        if !acted {
            break;
        }
    }

    if changed {
        dedup_phi_args(f);
        ssa::remove_unreachable_blocks(f);
    }
    changed
}

/// Removes duplicate φ-arguments for the same predecessor. Duplicate
/// entries only arise from collapsed duplicate edges (a folded
/// equal-target `Br`, dropped `Switch` arms), where both slots carry the
/// same renamed value, so keeping the first is sound. Also prunes
/// arguments for edges the fold removed outright and folds φs of blocks
/// down to one predecessor, keeping the verifier's φ/predecessor
/// agreement and join discipline intact.
fn dedup_phi_args(f: &mut MirFunction) {
    let preds = cfg::predecessors(f);
    for b in f.block_ids().collect::<Vec<_>>() {
        let ps: BTreeSet<BlockId> = preds[b.0 as usize].iter().copied().collect();
        for inst in &mut f.block_mut(b).insts {
            if let Inst::Phi { args, .. } = inst {
                let mut seen: BTreeSet<BlockId> = BTreeSet::new();
                args.retain(|(p, _)| ps.contains(p) && seen.insert(*p));
            }
        }
    }
    ssa::fold_trivial_phis(f);
}

// ---------------------------------------------------------------------
// Dead code elimination (on SSA)
// ---------------------------------------------------------------------

/// Removes pure instructions whose results cannot reach an effect:
/// mark-and-sweep from the roots (registers read by impure instructions
/// and terminators), with liveness propagating through the operands of
/// live pure definitions only. Counting uses *anywhere* — the previous
/// formulation — kept self-sustaining dead φ-cycles alive: a loop-carried
/// φ whose only users feed back into it uses itself, so no round of a
/// use-count sweep could retire it; marking from roots sweeps the whole
/// cycle at once. This is the per-function analogue of the paper's "dead
/// code elimination" dump: it cannot remove state-machine handler bodies
/// because they are reached through stores, calls and address-taken
/// tables.
pub fn dead_code_elim(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    // Operand lists of pure definitions; everything read by an impure
    // instruction or a terminator is a root.
    let mut pure_uses: BTreeMap<VReg, Vec<VReg>> = BTreeMap::new();
    let mut work: Vec<VReg> = Vec::new();
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            match (inst.is_pure(), inst.def()) {
                (true, Some(d)) => pure_uses.entry(d).or_default().extend(inst.uses()),
                _ => work.extend(inst.uses()),
            }
        }
        work.extend(f.block(b).term.uses());
    }
    let mut live: BTreeSet<VReg> = BTreeSet::new();
    while let Some(v) = work.pop() {
        if live.insert(v) {
            if let Some(us) = pure_uses.get(&v) {
                work.extend(us.iter().copied());
            }
        }
    }
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        let before = blk.insts.len();
        blk.insts
            .retain(|inst| !inst.is_pure() || inst.def().is_none_or(|d| live.contains(&d)));
        changed |= blk.insts.len() != before;
    }
    changed
}

// ---------------------------------------------------------------------
// Copy coalescing (φ-free form)
// ---------------------------------------------------------------------

/// Cheap copy coalescing on φ-free code: the post-destruct cleanup that
/// lets `-O1` run more than one outer round. [`ssa::destruct`] lowers
/// every φ to a staged parallel copy (`tmp = src; dst = tmp`); at `-O2`
/// the next round's [`copy_propagate`] erases them, but `-O1` does not
/// register it, so the round trip used to grow code every round. This
/// pass is deliberately cheap and sound on non-SSA code:
///
/// 1. per block, forward-propagates available copies into uses
///    (invalidating on redefinition of either side) and drops no-op
///    `dst = dst` copies — correctly handling destruct's swap sequences;
/// 2. removes copies whose destination is dead, using [`cfg::liveness`]
///    across blocks.
///
/// Returns `true` if anything changed.
pub fn coalesce_copies(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut avail: BTreeMap<VReg, VReg> = BTreeMap::new();
        let resolve = |avail: &BTreeMap<VReg, VReg>, mut v: VReg| {
            let mut hops = 0;
            while let Some(&n) = avail.get(&v) {
                v = n;
                hops += 1;
                if hops > avail.len() {
                    break; // defensive; invalidation prevents cycles
                }
            }
            v
        };
        let blk = f.block_mut(b);
        let mut kept: Vec<Inst> = Vec::with_capacity(blk.insts.len());
        for mut inst in std::mem::take(&mut blk.insts) {
            // φs (not expected in φ-free form, but defensive): their
            // arguments are per-edge values, not block-local uses.
            if !matches!(inst, Inst::Phi { .. }) {
                inst.map_uses(&mut |v| {
                    let r = resolve(&avail, v);
                    if r != v {
                        changed = true;
                    }
                    r
                });
            }
            if let Some(d) = inst.def() {
                avail.retain(|k, v| *k != d && *v != d);
            }
            if let Inst::Copy { dst, src } = inst {
                if dst == src {
                    changed = true;
                    continue; // no-op copy
                }
                avail.insert(dst, src);
            }
            kept.push(inst);
        }
        blk.term.map_uses(&mut |v| {
            let r = resolve(&avail, v);
            if r != v {
                changed = true;
            }
            r
        });
        blk.insts = kept;
    }

    // Dead-copy sweep: a copy whose destination is not live afterwards
    // is gone. Restricted to copies (general dead-code removal is DCE's
    // job); the backward in-block walk keeps the check precise on
    // non-SSA code, where a register is redefined many times.
    let live = cfg::liveness(f);
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut live_now = live.live_out[b.0 as usize].clone();
        live_now.extend(f.block(b).term.uses());
        let blk = f.block_mut(b);
        let mut kept_rev: Vec<Inst> = Vec::with_capacity(blk.insts.len());
        for inst in std::mem::take(&mut blk.insts).into_iter().rev() {
            if let Inst::Copy { dst, .. } = inst {
                if !live_now.contains(&dst) {
                    changed = true;
                    continue;
                }
            }
            if let Some(d) = inst.def() {
                live_now.remove(&d);
            }
            live_now.extend(inst.uses());
            kept_rev.push(inst);
        }
        kept_rev.reverse();
        blk.insts = kept_rev;
    }
    changed
}

// ---------------------------------------------------------------------
// Return-block tail merging (φ-free form)
// ---------------------------------------------------------------------

/// Cross-jumping for return blocks (φ-free form): structurally identical
/// `Ret`-terminated blocks are merged into one and every edge into a
/// duplicate is redirected to the representative — GCC's `-Os`
/// crossjumping, restricted to the exit blocks where it needs no
/// successor-φ reasoning. Blocks compare equal up to renaming of their
/// *block-local* definitions (a fresh register materialized and returned
/// is the same code whatever its number); registers live into the block
/// must match exactly. Returns `true` if anything changed.
///
/// This is what pays for [`licm`]'s register pressure in the size
/// ledger: the STT dispatch functions all carry two `return false`
/// blocks (loop exhausted / no transition fired) that merge here.
pub fn merge_return_blocks(f: &mut MirFunction, _model: &mem::MemoryModel) -> bool {
    let mut groups: BTreeMap<String, Vec<BlockId>> = BTreeMap::new();
    for b in f.block_ids() {
        if b == BlockId(0) {
            continue; // the entry block cannot become unreachable
        }
        let blk = f.block(b);
        if !matches!(blk.term, Term::Ret(_))
            || blk.insts.iter().any(|i| matches!(i, Inst::Phi { .. }))
        {
            continue;
        }
        // Canonical key: block-local defs renumbered from the top of the
        // register space; everything else kept verbatim. Every def —
        // including a *re*definition of an already-seen register — takes
        // a fresh id from a monotonic counter (`local.len()` would stall
        // on redefinitions and hand a later register a colliding id).
        let mut local: BTreeMap<VReg, u32> = BTreeMap::new();
        let mut next_id = 0u32;
        let canon = |local: &BTreeMap<VReg, u32>, v: VReg| {
            local.get(&v).map(|i| VReg(u32::MAX - i)).unwrap_or(v)
        };
        let mut parts: Vec<String> = Vec::with_capacity(blk.insts.len() + 1);
        for inst in &blk.insts {
            let mut c = inst.clone();
            c.map_uses(&mut |v| canon(&local, v));
            if let Some(d) = inst.def() {
                let id = next_id;
                next_id += 1;
                local.insert(d, id);
                if let Some(dm) = c.def_mut() {
                    *dm = VReg(u32::MAX - id);
                }
            }
            parts.push(format!("{c:?}"));
        }
        let mut t = blk.term.clone();
        t.map_uses(&mut |v| canon(&local, v));
        parts.push(format!("{t:?}"));
        groups.entry(parts.join(";")).or_default().push(b);
    }
    let mut redirect: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    for blocks in groups.values() {
        for &dup in &blocks[1..] {
            redirect.insert(dup, blocks[0]);
        }
    }
    if redirect.is_empty() {
        return false;
    }
    for b in f.block_ids().collect::<Vec<_>>() {
        f.block_mut(b)
            .term
            .map_succs(&mut |s| redirect.get(&s).copied().unwrap_or(s));
    }
    ssa::remove_unreachable_blocks(f);
    true
}

// ---------------------------------------------------------------------
// CFG simplification (φ-free form only)
// ---------------------------------------------------------------------

/// Removes unreachable blocks, threads empty forwarding blocks and merges
/// every eligible straight-line chain in one sweep. Must run on φ-free
/// functions. Returns `true` if anything changed.
pub fn simplify_cfg(f: &mut MirFunction) -> bool {
    let mut any = false;
    loop {
        let blocks_before = f.blocks.len();
        ssa::remove_unreachable_blocks(f);
        let mut changed = f.blocks.len() != blocks_before;

        // Thread jumps through empty forwarding blocks.
        let mut forward: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        for b in f.block_ids() {
            if b == BlockId(0) {
                continue;
            }
            let blk = f.block(b);
            if blk.insts.is_empty() {
                if let Term::Goto(t) = blk.term {
                    if t != b {
                        forward.insert(b, t);
                    }
                }
            }
        }
        if !forward.is_empty() {
            let resolve = |mut b: BlockId| {
                let mut hops = 0;
                while let Some(&n) = forward.get(&b) {
                    b = n;
                    hops += 1;
                    if hops > forward.len() {
                        break;
                    }
                }
                b
            };
            for b in f.block_ids().collect::<Vec<_>>() {
                let mut term = f.block(b).term.clone();
                term.map_succs(&mut |s| {
                    let r = resolve(s);
                    if r != s {
                        changed = true;
                    }
                    r
                });
                f.block_mut(b).term = term;
            }
        }

        // Merge b <- c when c is b's unique successor and b its unique
        // predecessor — following each chain to its end, every chain in
        // one sweep. Consumed blocks become unreachable and are dropped
        // at the top of the next round; predecessor *counts* stay valid
        // throughout the sweep because merging only moves an edge's
        // origin, never adds or removes edges.
        let preds = cfg::predecessors(f);
        let mut consumed: BTreeSet<BlockId> = BTreeSet::new();
        for b in f.block_ids().collect::<Vec<_>>() {
            if consumed.contains(&b) {
                continue;
            }
            while let Term::Goto(c) = f.block(b).term {
                if c == b
                    || c == BlockId(0)
                    || consumed.contains(&c)
                    || preds[c.0 as usize].len() != 1
                {
                    break;
                }
                let mut tail = std::mem::take(&mut f.block_mut(c).insts);
                let tail_term = f.block(c).term.clone();
                let blk = f.block_mut(b);
                blk.insts.append(&mut tail);
                blk.term = tail_term;
                consumed.insert(c);
                changed = true;
            }
        }

        if !changed {
            ssa::remove_unreachable_blocks(f);
            return any;
        }
        any = true;
    }
}

// ---------------------------------------------------------------------
// Inlining (pre-SSA, straight-line callees)
// ---------------------------------------------------------------------

/// Inlines calls to single-block functions of at most `max_insts`
/// instructions. Returns the number of call sites inlined.
pub fn inline_small_functions(program: &mut Program, max_insts: usize) -> usize {
    // Snapshot eligible callees.
    let mut eligible: BTreeMap<usize, (usize, Vec<Inst>, Option<VReg>, u32)> = BTreeMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        if f.blocks.len() != 1 || f.blocks[0].insts.len() > max_insts {
            continue;
        }
        let Term::Ret(ret) = f.blocks[0].term.clone() else {
            continue;
        };
        // Self-recursive single-block functions are not eligible.
        let self_call = f.blocks[0]
            .insts
            .iter()
            .any(|inst| matches!(inst, Inst::Call { func, .. } if *func == i));
        if self_call {
            continue;
        }
        eligible.insert(i, (f.params, f.blocks[0].insts.clone(), ret, f.next_vreg));
    }
    if eligible.is_empty() {
        return 0;
    }
    let mut inlined = 0;
    for ci in 0..program.functions.len() {
        for bi in 0..program.functions[ci].blocks.len() {
            let mut new_insts: Vec<Inst> = Vec::new();
            let insts = program.functions[ci].blocks[bi].insts.clone();
            for inst in insts {
                let Inst::Call { dst, func, args } = &inst else {
                    new_insts.push(inst);
                    continue;
                };
                // Do not inline into the callee itself.
                let Some((params, body, ret, callee_vregs)) = eligible.get(func) else {
                    new_insts.push(inst);
                    continue;
                };
                if *func == ci {
                    new_insts.push(inst);
                    continue;
                }
                // Map callee registers into the caller's space: parameters
                // become the argument registers, every other callee
                // register gets a compact fresh slot (`next_vreg` grows by
                // exactly the callee's non-parameter register count).
                let base = program.functions[ci].next_vreg;
                let extra = callee_vregs.saturating_sub(*params as u32);
                program.functions[ci].next_vreg += extra;
                let map = |v: VReg| {
                    if (v.0 as usize) < *params {
                        args[v.0 as usize]
                    } else {
                        VReg(base + (v.0 - *params as u32))
                    }
                };
                for callee_inst in body {
                    let mut copy = callee_inst.clone();
                    copy.map_uses(&mut |v| map(v));
                    if let Some(d) = copy.def_mut() {
                        *d = map(*d);
                    }
                    new_insts.push(copy);
                }
                if let (Some(d), Some(r)) = (dst, ret) {
                    new_insts.push(Inst::Copy {
                        dst: *d,
                        src: map(*r),
                    });
                }
                inlined += 1;
            }
            program.functions[ci].blocks[bi].insts = new_insts;
        }
    }
    inlined
}

// ---------------------------------------------------------------------
// Dead function elimination (call-graph reachability)
// ---------------------------------------------------------------------

/// Removes functions unreachable from the roots: exported functions and
/// every address-taken function (via [`Inst::FnAddr`] or function addresses
/// stored in global data). Returns removed names.
pub fn dead_function_elimination(program: &mut Program) -> Vec<String> {
    let n = program.functions.len();
    let mut live = vec![false; n];
    let mut work: Vec<usize> = Vec::new();
    for (i, f) in program.functions.iter().enumerate() {
        if f.exported {
            live[i] = true;
            work.push(i);
        }
    }
    // Address-taken through global data (const dispatch tables!): these are
    // roots because an indirect call may reach them at run time.
    for g in &program.globals {
        for w in &g.words {
            if let Word::FnAddr(i) = w {
                if !live[*i] {
                    live[*i] = true;
                    work.push(*i);
                }
            }
        }
    }
    while let Some(i) = work.pop() {
        for b in &program.functions[i].blocks {
            for inst in &b.insts {
                let callee = match inst {
                    Inst::Call { func, .. } => Some(*func),
                    Inst::FnAddr { func, .. } => Some(*func),
                    _ => None,
                };
                if let Some(c) = callee {
                    if !live[c] {
                        live[c] = true;
                        work.push(c);
                    }
                }
            }
        }
    }
    if live.iter().all(|l| *l) {
        return Vec::new();
    }
    // Remap indices.
    let mut remap = vec![usize::MAX; n];
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (i, f) in program.functions.drain(..).enumerate() {
        if live[i] {
            remap[i] = kept.len();
            kept.push(f);
        } else {
            removed.push(f.name);
        }
    }
    for f in &mut kept {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                match inst {
                    Inst::Call { func, .. } | Inst::FnAddr { func, .. } => {
                        *func = remap[*func];
                    }
                    _ => {}
                }
            }
        }
    }
    for g in &mut program.globals {
        for w in &mut g.words {
            if let Word::FnAddr(i) = w {
                *i = remap[*i];
            }
        }
    }
    program.functions = kept;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{BinOp, Block, GlobalData};

    /// The conservative memory model unit tests drive bare functions
    /// with: no globals known, everything treated as mutable.
    fn md() -> mem::MemoryModel {
        mem::MemoryModel::default()
    }

    fn const_add_fn() -> MirFunction {
        MirFunction {
            name: "f".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VReg(0),
                        value: 40,
                    },
                    Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(2),
                        lhs: VReg(0),
                        rhs: VReg(1),
                    },
                ],
                term: Term::Ret(Some(VReg(2))),
            }],
            next_vreg: 3,
        }
    }

    #[test]
    fn constant_folding_collapses_math() {
        let mut f = const_add_fn();
        ssa::construct(&mut f);
        assert!(constant_fold(&mut f, &md()));
        dead_code_elim(&mut f, &md());
        ssa::destruct(&mut f);
        simplify_cfg(&mut f);
        // One Const remains, feeding the return.
        let consts: Vec<i32> = f.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&42), "{f}");
        assert!(f.blocks[0].insts.len() <= 2, "{f}");
    }

    /// Regression keyed to the verifier's `phi-outside-join` and
    /// `phi-pred-mismatch` rules: folding a constant branch removes a
    /// CFG edge, so `constant_fold` must prune the join φ's stale arm
    /// (and fold the now-trivial φ) instead of leaving it dangling for
    /// the next pass to trip over.
    #[test]
    fn constant_fold_prunes_stale_phi_args_after_branch_folding() {
        let mut f = MirFunction {
            name: "g".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(0),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 10,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(2),
                        value: 20,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Phi {
                        dst: VReg(3),
                        args: vec![(BlockId(1), VReg(1)), (BlockId(2), VReg(2))],
                    }],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        assert!(constant_fold(&mut f, &md()));
        let vs = verify::verify_function(&f, verify::Tier::Ssa);
        assert!(vs.is_empty(), "{}{f}", verify::report(&vs));
        // The single-pred join must not keep a φ at all.
        let phis = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Phi { .. }))
            .count();
        assert_eq!(phis, 0, "{f}");
    }

    #[test]
    fn branch_folding_removes_dead_arm() {
        let mut f = MirFunction {
            name: "g".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(0),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 10,
                    }],
                    term: Term::Ret(Some(VReg(1))),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(2),
                        value: 20,
                    }],
                    term: Term::Ret(Some(VReg(2))),
                },
            ],
            next_vreg: 3,
        };
        ssa::construct(&mut f);
        constant_fold(&mut f, &md());
        ssa::destruct(&mut f);
        simplify_cfg(&mut f);
        assert!(f.blocks.len() <= 2, "constant branch leaves one path: {f}");
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut f = MirFunction {
            name: "h".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VReg(0),
                        value: 5,
                    },
                    Inst::Addr {
                        dst: VReg(1),
                        global: 0,
                        offset: 0,
                    },
                    Inst::Store {
                        addr: VReg(1),
                        src: VReg(0),
                    },
                    Inst::Const {
                        dst: VReg(2),
                        value: 99,
                    }, // dead
                ],
                term: Term::Ret(None),
            }],
            next_vreg: 3,
        };
        assert!(dead_code_elim(&mut f, &md()));
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Store { .. })));
    }

    fn two_fn_program(exported_second: bool) -> Program {
        Program {
            functions: vec![
                MirFunction {
                    name: "root".into(),
                    params: 0,
                    returns_value: false,
                    exported: true,
                    blocks: vec![Block {
                        insts: vec![],
                        term: Term::Ret(None),
                    }],
                    next_vreg: 0,
                },
                MirFunction {
                    name: "orphan".into(),
                    params: 0,
                    returns_value: false,
                    exported: exported_second,
                    blocks: vec![Block {
                        insts: vec![],
                        term: Term::Ret(None),
                    }],
                    next_vreg: 0,
                },
            ],
            globals: vec![],
            externs: vec![],
        }
    }

    #[test]
    fn dead_function_elimination_drops_orphans() {
        let mut p = two_fn_program(false);
        let removed = dead_function_elimination(&mut p);
        assert_eq!(removed, vec!["orphan".to_string()]);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn address_taken_functions_survive() {
        // The paper's crucial case: a function only referenced from a const
        // table must be kept.
        let mut p = two_fn_program(false);
        p.globals.push(GlobalData {
            name: "tbl".into(),
            size: 4,
            words: vec![Word::FnAddr(1)],
            mutable: false,
        });
        let removed = dead_function_elimination(&mut p);
        assert!(removed.is_empty());
        assert_eq!(p.functions.len(), 2);
    }

    fn inline_program() -> Program {
        Program {
            functions: vec![
                MirFunction {
                    name: "caller".into(),
                    params: 0,
                    returns_value: true,
                    exported: true,
                    blocks: vec![Block {
                        insts: vec![
                            Inst::Const {
                                dst: VReg(0),
                                value: 20,
                            },
                            Inst::Call {
                                dst: Some(VReg(1)),
                                func: 1,
                                args: vec![VReg(0)],
                            },
                        ],
                        term: Term::Ret(Some(VReg(1))),
                    }],
                    next_vreg: 2,
                },
                MirFunction {
                    name: "double".into(),
                    params: 1,
                    returns_value: true,
                    exported: false,
                    blocks: vec![Block {
                        insts: vec![Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(1),
                            lhs: VReg(0),
                            rhs: VReg(0),
                        }],
                        term: Term::Ret(Some(VReg(1))),
                    }],
                    next_vreg: 2,
                },
            ],
            globals: vec![],
            externs: vec![],
        }
    }

    #[test]
    fn inline_splices_single_block_callee() {
        let mut p = inline_program();
        assert_eq!(inline_small_functions(&mut p, 8), 1);
        let caller = &p.functions[0];
        assert!(
            !caller.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Call { .. })),
            "{caller}"
        );
        // And the callee is now removable.
        let removed = dead_function_elimination(&mut p);
        assert_eq!(removed, vec!["double".to_string()]);
    }

    #[test]
    fn inline_remaps_vregs_compactly() {
        // Regression: the callee has 1 param and 1 local register, so the
        // caller's register space must grow by exactly 1 per call site —
        // not by the callee's full register count keyed off raw ids.
        let mut p = inline_program();
        let before = p.functions[0].next_vreg;
        assert_eq!(inline_small_functions(&mut p, 8), 1);
        let caller = &p.functions[0];
        assert_eq!(
            caller.next_vreg,
            before + 1,
            "non-param callee registers must be remapped compactly: {caller}"
        );
        // Every register referenced by the caller is inside its space.
        for b in &caller.blocks {
            for inst in &b.insts {
                for u in inst.uses() {
                    assert!(u.0 < caller.next_vreg, "{u} out of range: {caller}");
                }
                if let Some(d) = inst.def() {
                    assert!(d.0 < caller.next_vreg, "{d} out of range: {caller}");
                }
            }
        }
    }

    #[test]
    fn simplify_cfg_threads_and_merges() {
        let mut f = MirFunction {
            name: "s".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(2)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            next_vreg: 0,
        };
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1, "{f}");
    }

    #[test]
    fn simplify_cfg_merges_long_chain_in_one_sweep() {
        // Regression: the merge step used to stop after the first merged
        // pair per round; a long straight-line chain must collapse fully,
        // preserving instruction order.
        let n = 12u32;
        let mut blocks: Vec<Block> = (0..n)
            .map(|i| Block {
                insts: vec![Inst::Const {
                    dst: VReg(i),
                    value: i as i32,
                }],
                term: Term::Goto(BlockId(i + 1)),
            })
            .collect();
        blocks.push(Block {
            insts: vec![],
            term: Term::Ret(None),
        });
        let mut f = MirFunction {
            name: "chain".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks,
            next_vreg: n,
        };
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1, "{f}");
        let values: Vec<i32> = f.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(values, (0..n as i32).collect::<Vec<_>>(), "{f}");
    }

    #[test]
    fn gvn_cse_replaces_redundant_expressions() {
        // v2 = v0 + v1 ; v3 = v1 + v0 (commutative dup) ; v4 = v2 * v3.
        let mut f = MirFunction {
            name: "cse".into(),
            params: 2,
            returns_value: true,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(2),
                        lhs: VReg(0),
                        rhs: VReg(1),
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(3),
                        lhs: VReg(1),
                        rhs: VReg(0),
                    },
                    Inst::Bin {
                        op: BinOp::Mul,
                        dst: VReg(4),
                        lhs: VReg(2),
                        rhs: VReg(3),
                    },
                ],
                term: Term::Ret(Some(VReg(4))),
            }],
            next_vreg: 5,
        };
        ssa::construct(&mut f);
        assert!(gvn_cse(&mut f, &md()));
        let adds = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1, "commutative duplicate must become a copy: {f}");
        // After copy propagation + DCE the copy disappears entirely.
        copy_propagate(&mut f, &md());
        dead_code_elim(&mut f, &md());
        assert_eq!(f.blocks[0].insts.len(), 2, "{f}");
    }

    #[test]
    fn gvn_cse_respects_dominance() {
        // The same expression computed in two sibling branches must NOT be
        // CSE'd (neither def dominates the other).
        let mut f = MirFunction {
            name: "sib".into(),
            params: 2,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Mul,
                        dst: VReg(2),
                        lhs: VReg(1),
                        rhs: VReg(1),
                    }],
                    term: Term::Ret(Some(VReg(2))),
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Mul,
                        dst: VReg(3),
                        lhs: VReg(1),
                        rhs: VReg(1),
                    }],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        ssa::construct(&mut f);
        assert!(
            !gvn_cse(&mut f, &md()),
            "sibling defs must not be merged: {f}"
        );
    }

    #[test]
    fn fold_terminators_collapses_equal_targets() {
        let mut f = MirFunction {
            name: "eq".into(),
            params: 1,
            returns_value: false,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(1),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Switch {
                        val: VReg(0),
                        cases: vec![(1, BlockId(2)), (2, BlockId(2))],
                        default: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            next_vreg: 1,
        };
        assert!(fold_terminators(&mut f, &md()));
        for b in f.block_ids() {
            assert!(
                matches!(f.block(b).term, Term::Goto(_) | Term::Ret(_)),
                "all conditional terminators fold away: {f}"
            );
        }
    }

    #[test]
    fn fold_terminators_threads_empty_blocks_through_phis() {
        // bb0 -Br-> bb1 (empty, Goto bb3) / bb2 (v=2, Goto bb3); bb3 has a
        // φ. Threading bb0->bb1->bb3 must keep the φ consistent.
        let mut f = MirFunction {
            name: "thread".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 2,
        };
        ssa::construct(&mut f);
        assert!(fold_terminators(&mut f, &md()));
        // The empty forwarding block is gone; the φ still has one argument
        // per incoming edge.
        let preds = cfg::predecessors(&f);
        for b in f.block_ids() {
            for inst in &f.block(b).insts {
                if let Inst::Phi { args, .. } = inst {
                    let mut expect: Vec<BlockId> = preds[b.0 as usize].clone();
                    expect.sort();
                    expect.dedup();
                    let mut got: Vec<BlockId> = args.iter().map(|(p, _)| *p).collect();
                    got.sort();
                    assert_eq!(got, expect, "{f}");
                }
            }
        }
    }

    #[test]
    fn pass_manager_reaches_fixed_point_and_records_stats() {
        let mut pm = PassManager::for_level(OptLevel::O2);
        let mut f = const_add_fn();
        assert!(pm.run_function(&mut f, &md()));
        let stats = pm.stats();
        // SCCP leads the -O2 roster, so it (not the dense fold) reports
        // the constant-folding changes; const-fold still runs.
        let sc = stats.get(pass::SCCP).expect("sccp ran");
        assert!(sc.runs > 0 && sc.changes > 0, "{stats:?}");
        let cf = stats.get(pass::CONST_FOLD).expect("const-fold ran");
        assert!(cf.runs > 0, "{stats:?}");
        let dce = stats.get(pass::DCE).expect("dce ran");
        assert!(dce.insts_removed > 0, "{stats:?}");
        // Idempotence: a second run over the optimized function reports no
        // change and keeps the structure (SSA reconstruction renumbers
        // registers, so compare shape, not names).
        let (blocks, insts) = (f.blocks.len(), f.inst_count());
        let mut pm2 = PassManager::for_level(OptLevel::O2);
        assert!(!pm2.run_function(&mut f, &md()));
        assert_eq!(
            (f.blocks.len(), f.inst_count()),
            (blocks, insts),
            "fixed point must be structurally stable: {f}"
        );
    }

    #[test]
    fn sccp_folds_through_branches_the_dense_fold_leaves() {
        // x = 1; if x { y = 2 } else { y = 3 }; z = y + 4; return z.
        // The dense fold gets there too (it folds x, then the branch, but
        // only φ-meets over *all* args); SCCP must prove y = 2 because
        // the else edge is not executable, and fold z to 6 in one run.
        let mut f = MirFunction {
            name: "s".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(0),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 3,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![
                        Inst::Const {
                            dst: VReg(2),
                            value: 4,
                        },
                        Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(3),
                            lhs: VReg(1),
                            rhs: VReg(2),
                        },
                    ],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        ssa::construct(&mut f);
        assert!(sccp(&mut f, &md()));
        // The never-executable else block is gone; the φ collapsed.
        assert!(f.blocks.len() <= 3, "{f}");
        let folded: Vec<i32> = f
            .block_ids()
            .flat_map(|b| f.block(b).insts.clone())
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(value),
                _ => None,
            })
            .collect();
        assert!(folded.contains(&6), "z must fold to 6: {f}");
        // No conditional terminator survives.
        for b in f.block_ids() {
            assert!(
                matches!(f.block(b).term, Term::Goto(_) | Term::Ret(_)),
                "{f}"
            );
        }
        // Idempotent: a second run reports no change.
        assert!(!sccp(&mut f, &md()), "{f}");
    }

    #[test]
    fn sccp_keeps_values_that_merge_differently() {
        // Both arms reachable from an unknown param: the φ must stay ⊥.
        let mut f = MirFunction {
            name: "m".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 3,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 2,
        };
        ssa::construct(&mut f);
        assert!(!sccp(&mut f, &md()), "nothing is provably constant: {f}");
        assert_eq!(f.blocks.len(), 4, "no block may be removed: {f}");
    }

    #[test]
    fn sccp_prunes_phi_args_of_folded_edges() {
        // bb0 -Br(c)-> bb1 / bb2, both goto bb3 (φ); bb2 is also reachable
        // from bb4... simplified: constant branch kills one edge; the φ in
        // the join must lose the stale argument.
        let mut f = MirFunction {
            name: "p".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(1),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(2),
                        value: 10,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(2),
                        lhs: VReg(0),
                        rhs: VReg(0),
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(2))),
                },
            ],
            next_vreg: 3,
        };
        ssa::construct(&mut f);
        assert!(sccp(&mut f, &md()));
        let preds = cfg::predecessors(&f);
        for b in f.block_ids() {
            for inst in &f.block(b).insts {
                if let Inst::Phi { args, .. } = inst {
                    for (p, _) in args {
                        assert!(
                            preds[b.0 as usize].contains(p),
                            "stale φ-arg from {p} in {f}"
                        );
                    }
                }
            }
        }
    }

    /// `n = 10; k = 0; while (k < n) { t = n * 4; sink(t); k += 1 }` —
    /// `n * 4` is the invariant computation LICM must hoist. The `sink`
    /// call keeps `t` alive so DCE cannot take the shortcut.
    fn licm_example() -> MirFunction {
        MirFunction {
            name: "loopy".into(),
            params: 1, // v0 = n (unknown, so the loop is not folded away)
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 0,
                    }],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    // header: k < n
                    insts: vec![Inst::Bin {
                        op: BinOp::Lt,
                        dst: VReg(2),
                        lhs: VReg(1),
                        rhs: VReg(0),
                    }],
                    term: Term::Br {
                        cond: VReg(2),
                        then_block: BlockId(2),
                        else_block: BlockId(3),
                    },
                },
                Block {
                    // body: t = n * 4 (invariant); sink(t); k = k + 1
                    insts: vec![
                        Inst::Const {
                            dst: VReg(3),
                            value: 4,
                        },
                        Inst::Bin {
                            op: BinOp::Mul,
                            dst: VReg(4),
                            lhs: VReg(0),
                            rhs: VReg(3),
                        },
                        Inst::CallExtern {
                            dst: None,
                            ext: 0,
                            args: vec![VReg(4)],
                        },
                        Inst::Const {
                            dst: VReg(5),
                            value: 1,
                        },
                        Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(1),
                            lhs: VReg(1),
                            rhs: VReg(5),
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 6,
        }
    }

    #[test]
    fn licm_hoists_invariant_computation_to_preheader() {
        let mut f = licm_example();
        ssa::construct(&mut f);
        assert!(licm(&mut f, &md()));
        let loops = cfg::natural_loops(&f);
        assert_eq!(loops.len(), 1, "{f}");
        // The multiplication left the loop body...
        for &b in &loops[0].body {
            for inst in &f.block(b).insts {
                assert!(
                    !matches!(inst, Inst::Bin { op: BinOp::Mul, .. }),
                    "invariant Mul must be hoisted: {f}"
                );
            }
        }
        // ...into a block dominating the header.
        let idom = cfg::dominators(&f);
        let mul_block = f
            .block_ids()
            .find(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .any(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
            })
            .expect("Mul survives (its value feeds a call)");
        assert!(
            cfg::dominates(&idom, mul_block, loops[0].header),
            "hoisted code must dominate the loop header: {f}"
        );
        // Idempotent.
        assert!(!licm(&mut f, &md()), "{f}");
        // And the loop-varying add stayed put.
        let body_has_add = loops[0].body.iter().any(|b| {
            f.block(*b)
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
        });
        assert!(body_has_add, "k += 1 must stay in the loop: {f}");
    }

    #[test]
    fn licm_leaves_loads_and_calls_alone() {
        // A load from invariant address: a store in the loop could change
        // it, so it must not move (conservative: we never hoist loads).
        let mut f = licm_example();
        // Replace the Mul with a Load from an invariant address.
        f.blocks[2].insts[1] = Inst::Load {
            dst: VReg(4),
            addr: VReg(3),
        };
        ssa::construct(&mut f);
        licm(&mut f, &md());
        let loops = cfg::natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let body_has_load = loops[0].body.iter().any(|b| {
            f.block(*b)
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Load { .. }))
        });
        assert!(body_has_load, "loads must never be hoisted: {f}");
    }

    #[test]
    fn licm_inserts_phi_safe_preheader_for_multi_entry_headers() {
        // Two outside edges into the loop header with *different* values
        // for the header φ: preheader insertion must merge them with a
        // preheader φ, preserving SSA.
        let mut f = MirFunction {
            name: "multi".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::Const {
                            dst: VReg(1),
                            value: 5,
                        },
                        Inst::Const {
                            dst: VReg(2),
                            value: 9,
                        },
                    ],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Copy {
                        dst: VReg(3),
                        src: VReg(1),
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Copy {
                        dst: VReg(3),
                        src: VReg(2),
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    // loop header: k = φ(entry paths, latch); invariant
                    // work inside the body below.
                    insts: vec![
                        Inst::Const {
                            dst: VReg(4),
                            value: 7,
                        },
                        Inst::Bin {
                            op: BinOp::Mul,
                            dst: VReg(5),
                            lhs: VReg(0),
                            rhs: VReg(4),
                        },
                        Inst::CallExtern {
                            dst: None,
                            ext: 0,
                            args: vec![VReg(5)],
                        },
                        Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(3),
                            lhs: VReg(3),
                            rhs: VReg(4),
                        },
                        Inst::Bin {
                            op: BinOp::Lt,
                            dst: VReg(6),
                            lhs: VReg(3),
                            rhs: VReg(0),
                        },
                    ],
                    term: Term::Br {
                        cond: VReg(6),
                        then_block: BlockId(3),
                        else_block: BlockId(4),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 7,
        };
        ssa::construct(&mut f);
        assert!(licm(&mut f, &md()));
        // SSA still holds: every def unique, every φ-arg pred is a real
        // predecessor.
        let mut defs = BTreeSet::new();
        let preds = cfg::predecessors(&f);
        for b in f.block_ids() {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    assert!(defs.insert(d), "double def of {d}: {f}");
                }
                if let Inst::Phi { args, .. } = inst {
                    for (p, _) in args {
                        assert!(preds[b.0 as usize].contains(p), "{f}");
                    }
                }
            }
        }
        // The invariant Mul is out of every loop.
        for lp in cfg::natural_loops(&f) {
            for &b in &lp.body {
                assert!(
                    !f.block(b)
                        .insts
                        .iter()
                        .any(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. })),
                    "{f}"
                );
            }
        }
    }

    #[test]
    fn coalesce_copies_cleans_destruct_residue() {
        // The staged parallel copy destruct emits: t = src; dst = t.
        let mut f = MirFunction {
            name: "c".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VReg(1),
                        value: 3,
                    },
                    Inst::Copy {
                        dst: VReg(2),
                        src: VReg(1),
                    },
                    Inst::Copy {
                        dst: VReg(3),
                        src: VReg(2),
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(4),
                        lhs: VReg(3),
                        rhs: VReg(0),
                    },
                ],
                term: Term::Ret(Some(VReg(4))),
            }],
            next_vreg: 5,
        };
        assert!(coalesce_copies(&mut f, &md()));
        assert!(
            !f.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Copy { .. })),
            "both copies disappear: {f}"
        );
        assert_eq!(f.blocks[0].insts.len(), 2, "{f}");
    }

    #[test]
    fn coalesce_copies_preserves_swap_semantics() {
        // t1 = x; t2 = y; x = t2; y = t1 — the parallel-copy swap. The
        // pass must not break it (x gets old y, y gets old x).
        let mut f = MirFunction {
            name: "swap".into(),
            params: 2,
            returns_value: false,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: VReg(2),
                        src: VReg(0),
                    },
                    Inst::Copy {
                        dst: VReg(3),
                        src: VReg(1),
                    },
                    Inst::Copy {
                        dst: VReg(0),
                        src: VReg(3),
                    },
                    Inst::Copy {
                        dst: VReg(1),
                        src: VReg(2),
                    },
                    // Observe both.
                    Inst::CallExtern {
                        dst: None,
                        ext: 0,
                        args: vec![VReg(0), VReg(1)],
                    },
                ],
                term: Term::Ret(None),
            }],
            next_vreg: 4,
        };
        assert!(coalesce_copies(&mut f, &md()));
        // Semantics: find the extern call and check its args trace back
        // to the swapped sources via the remaining copies.
        let insts = &f.blocks[0].insts;
        let call = insts
            .iter()
            .find(|i| matches!(i, Inst::CallExtern { .. }))
            .expect("call kept");
        let Inst::CallExtern { args, .. } = call else {
            unreachable!()
        };
        // Simulate the block to validate the swap survived.
        let mut env: BTreeMap<VReg, i32> = BTreeMap::from([(VReg(0), 100), (VReg(1), 200)]);
        for inst in insts {
            match inst {
                Inst::Copy { dst, src } => {
                    let v = env[src];
                    env.insert(*dst, v);
                }
                Inst::CallExtern { .. } => break,
                _ => {}
            }
        }
        assert_eq!(env[&args[0]], 200, "x must hold old y: {f}");
        assert_eq!(env[&args[1]], 100, "y must hold old x: {f}");
    }

    #[test]
    fn merge_return_blocks_crossjumps_identical_exits() {
        // Two `return 0` blocks differing only in their local register
        // numbering must merge; the distinct `return 1` must not.
        let mut f = MirFunction {
            name: "xj".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 0,
                    }],
                    term: Term::Ret(Some(VReg(1))),
                },
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(3),
                        else_block: BlockId(4),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(2),
                        value: 0,
                    }],
                    term: Term::Ret(Some(VReg(2))),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(3),
                        value: 1,
                    }],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        assert!(merge_return_blocks(&mut f, &md()));
        assert_eq!(f.blocks.len(), 4, "one duplicate exit gone: {f}");
        let ret_zero = f
            .block_ids()
            .filter(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .any(|i| matches!(i, Inst::Const { value: 0, .. }))
                    && matches!(f.block(*b).term, Term::Ret(_))
            })
            .count();
        assert_eq!(ret_zero, 1, "{f}");
        // A block returning a *live-in* register must not merge with one
        // returning a local constant.
        assert!(!merge_return_blocks(&mut f, &md()), "idempotent: {f}");
    }

    #[test]
    fn merge_return_blocks_distinguishes_redefined_registers() {
        // Regression: canonical ids must come from a monotonic counter.
        // With `local.len()` as the id source, a redefinition keeps the
        // map size flat, so the next register collides: these two blocks
        // would canonicalize identically and merge — returning 1 where 5
        // was meant.
        let ret_block = |ret_reg: u32| Block {
            insts: vec![
                Inst::Const {
                    dst: VReg(1),
                    value: 0,
                },
                Inst::Const {
                    dst: VReg(1),
                    value: 1,
                },
                Inst::Const {
                    dst: VReg(2),
                    value: 5,
                },
            ],
            term: Term::Ret(Some(VReg(ret_reg))),
        };
        let mut f = MirFunction {
            name: "redef".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                ret_block(1), // returns 1
                ret_block(2), // returns 5
            ],
            next_vreg: 3,
        };
        assert!(
            !merge_return_blocks(&mut f, &md()),
            "blocks returning different values must not merge: {f}"
        );
        assert_eq!(f.blocks.len(), 3);
    }

    #[test]
    fn merge_return_blocks_keeps_livein_distinctions() {
        // return v0  vs  return v1 (both live-in): different code, no
        // merge even though the shapes match.
        let mut f = MirFunction {
            name: "li".into(),
            params: 2,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(0))),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 2,
        };
        assert!(!merge_return_blocks(&mut f, &md()), "{f}");
        assert_eq!(f.blocks.len(), 3);
    }

    #[test]
    fn o1_runs_two_outer_rounds_with_coalescing() {
        // The φ example needs the construct/destruct round trip; at -O1
        // the coalescer must clean the copy residue so a second round is
        // net-profitable (this was a single-round level before).
        let mut f = MirFunction {
            name: "o1".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 0,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 1,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 2,
        };
        let mut pm = PassManager::for_level(OptLevel::O1);
        pm.run_function(&mut f, &md());
        let stats = pm.stats();
        let cc = stats.get(pass::COPY_COALESCE).expect("coalesce ran");
        assert!(cc.runs >= 1, "{stats:?}");
        // No copy-of-copy chains survive at -O1 any more.
        for b in f.block_ids() {
            let copies = f
                .block(b)
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::Copy { .. }))
                .count();
            assert!(copies <= 1, "destruct residue must be coalesced: {f}");
        }
    }

    #[test]
    fn run_pipeline_records_program_passes() {
        let mut p = inline_program();
        let stats = run_pipeline(&mut p, OptLevel::O2);
        assert_eq!(stats.get(pass::INLINE).map(|s| s.changes), Some(1));
        assert_eq!(stats.get(pass::DEAD_FN_ELIM).map(|s| s.changes), Some(1));
        assert!(stats.get(pass::SIMPLIFY_CFG).is_some());
        assert!(!run_pipeline(&mut p.clone(), OptLevel::O0)
            .passes()
            .iter()
            .any(|s| s.runs > 0));
    }

    #[test]
    fn dce_sweeps_dead_phi_cycle() {
        // Regression: a self-sustaining dead φ-cycle. v8/v9 form a
        // loop-carried accumulator whose only users are each other, so
        // the old use-count sweep ("used anywhere") never retired them.
        // The live countdown v3/v4 drives the loop and must survive.
        let mut f = MirFunction {
            name: "phi_cycle".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::Const {
                            dst: VReg(0),
                            value: 1,
                        },
                        Inst::Const {
                            dst: VReg(1),
                            value: 0,
                        },
                        Inst::Const {
                            dst: VReg(2),
                            value: 5,
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![
                        Inst::Phi {
                            dst: VReg(3),
                            args: vec![(BlockId(0), VReg(2)), (BlockId(2), VReg(4))],
                        },
                        Inst::Phi {
                            dst: VReg(8),
                            args: vec![(BlockId(0), VReg(1)), (BlockId(2), VReg(9))],
                        },
                        Inst::Bin {
                            op: BinOp::Gt,
                            dst: VReg(5),
                            lhs: VReg(3),
                            rhs: VReg(1),
                        },
                    ],
                    term: Term::Br {
                        cond: VReg(5),
                        then_block: BlockId(2),
                        else_block: BlockId(3),
                    },
                },
                Block {
                    insts: vec![
                        Inst::Bin {
                            op: BinOp::Sub,
                            dst: VReg(4),
                            lhs: VReg(3),
                            rhs: VReg(0),
                        },
                        Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(9),
                            lhs: VReg(8),
                            rhs: VReg(0),
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 10,
        };
        assert!(dead_code_elim(&mut f, &md()), "the cycle must be swept");
        for b in f.block_ids() {
            for inst in &f.block(b).insts {
                let d = inst.def();
                assert!(
                    d != Some(VReg(8)) && d != Some(VReg(9)),
                    "dead φ-cycle survived: {f}"
                );
            }
        }
        // The live countdown is untouched and the pass is idempotent.
        assert!(f.blocks[1]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Phi { dst, .. } if *dst == VReg(3))));
        assert!(!dead_code_elim(&mut f, &md()), "{f}");
    }

    /// `store [Addr(0,0)] = v0; loads…` scaffolding for the memory-pass
    /// tests: one block, externs keep results observable.
    fn mem_fn(insts: Vec<Inst>, next_vreg: u32) -> MirFunction {
        MirFunction {
            name: "mem".into(),
            params: 1,
            returns_value: false,
            exported: true,
            blocks: vec![Block {
                insts,
                term: Term::Ret(None),
            }],
            next_vreg,
        }
    }

    #[test]
    fn store_load_forward_forwards_and_dedups() {
        let mut f = mem_fn(
            vec![
                Inst::Addr {
                    dst: VReg(1),
                    global: 0,
                    offset: 0,
                },
                Inst::Addr {
                    dst: VReg(2),
                    global: 0,
                    offset: 4,
                },
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(0),
                },
                // Same cell: forwards the stored value.
                Inst::Load {
                    dst: VReg(3),
                    addr: VReg(1),
                },
                // Disjoint cell (same global, other offset): first load
                // is the oracle, second is redundant.
                Inst::Load {
                    dst: VReg(4),
                    addr: VReg(2),
                },
                Inst::Load {
                    dst: VReg(5),
                    addr: VReg(2),
                },
                Inst::CallExtern {
                    dst: None,
                    ext: 0,
                    args: vec![VReg(3), VReg(4), VReg(5)],
                },
            ],
            6,
        );
        assert!(store_load_forward(&mut f, &md()));
        assert_eq!(
            f.blocks[0].insts[3],
            Inst::Copy {
                dst: VReg(3),
                src: VReg(0)
            },
            "{f}"
        );
        assert_eq!(
            f.blocks[0].insts[5],
            Inst::Copy {
                dst: VReg(5),
                src: VReg(4)
            },
            "redundant load must copy the first load: {f}"
        );
    }

    #[test]
    fn store_load_forward_clobbers_on_calls_but_not_externs() {
        let build = |clobber: Inst| {
            mem_fn(
                vec![
                    Inst::Addr {
                        dst: VReg(1),
                        global: 0,
                        offset: 0,
                    },
                    Inst::Store {
                        addr: VReg(1),
                        src: VReg(0),
                    },
                    clobber,
                    Inst::Load {
                        dst: VReg(3),
                        addr: VReg(1),
                    },
                    Inst::CallExtern {
                        dst: None,
                        ext: 0,
                        args: vec![VReg(3)],
                    },
                ],
                4,
            )
        };
        // A direct call may store anywhere mutable: no forwarding.
        let mut with_call = build(Inst::Call {
            dst: None,
            func: 1,
            args: vec![],
        });
        assert!(!store_load_forward(&mut with_call, &md()), "{with_call}");
        // An extern passes registers only: the cell survives.
        let mut with_ext = build(Inst::CallExtern {
            dst: None,
            ext: 0,
            args: vec![],
        });
        assert!(store_load_forward(&mut with_ext, &md()), "{with_ext}");
        assert_eq!(
            with_ext.blocks[0].insts[3],
            Inst::Copy {
                dst: VReg(3),
                src: VReg(0)
            },
            "{with_ext}"
        );
    }

    #[test]
    fn store_load_forward_rodata_survives_calls() {
        let program = Program {
            functions: vec![],
            globals: vec![GlobalData {
                name: "tbl".into(),
                size: 4,
                words: vec![Word::Int(7)],
                mutable: false,
            }],
            externs: vec![],
        };
        let model = mem::MemoryModel::of(&program);
        let mut f = mem_fn(
            vec![
                Inst::Addr {
                    dst: VReg(1),
                    global: 0,
                    offset: 0,
                },
                Inst::Load {
                    dst: VReg(2),
                    addr: VReg(1),
                },
                Inst::Call {
                    dst: None,
                    func: 1,
                    args: vec![],
                },
                Inst::Load {
                    dst: VReg(3),
                    addr: VReg(1),
                },
                Inst::CallExtern {
                    dst: None,
                    ext: 0,
                    args: vec![VReg(2), VReg(3)],
                },
            ],
            4,
        );
        assert!(store_load_forward(&mut f, &model));
        assert_eq!(
            f.blocks[0].insts[3],
            Inst::Copy {
                dst: VReg(3),
                src: VReg(2)
            },
            "rodata cell must survive the call: {f}"
        );
    }

    #[test]
    fn store_load_forward_base_store_invalidates_its_global_only() {
        let mut f = mem_fn(
            vec![
                Inst::Addr {
                    dst: VReg(1),
                    global: 0,
                    offset: 0,
                },
                // &g1 + v0: rooted run-time address into global 1.
                Inst::Addr {
                    dst: VReg(2),
                    global: 1,
                    offset: 0,
                },
                Inst::Bin {
                    op: BinOp::Add,
                    dst: VReg(3),
                    lhs: VReg(2),
                    rhs: VReg(0),
                },
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(0),
                },
                Inst::Store {
                    addr: VReg(3),
                    src: VReg(0),
                },
                Inst::Load {
                    dst: VReg(4),
                    addr: VReg(1),
                },
                Inst::CallExtern {
                    dst: None,
                    ext: 0,
                    args: vec![VReg(4)],
                },
            ],
            5,
        );
        // The g1-rooted store cannot touch g0's cell: still forwarded.
        assert!(store_load_forward(&mut f, &md()));
        assert_eq!(
            f.blocks[0].insts[5],
            Inst::Copy {
                dst: VReg(4),
                src: VReg(0)
            },
            "{f}"
        );
    }

    #[test]
    fn store_load_forward_respects_sub_word_overlap() {
        // store [g0+0]; store [g0+2] (partially overwrites bytes 2..4);
        // load [g0+0] must NOT be forwarded: the EM32 word access is
        // byte-addressed, so offsets less than a word apart alias.
        let mut f = mem_fn(
            vec![
                Inst::Addr {
                    dst: VReg(1),
                    global: 0,
                    offset: 0,
                },
                Inst::Addr {
                    dst: VReg(2),
                    global: 0,
                    offset: 2,
                },
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(0),
                },
                Inst::Store {
                    addr: VReg(2),
                    src: VReg(0),
                },
                Inst::Load {
                    dst: VReg(3),
                    addr: VReg(1),
                },
                Inst::CallExtern {
                    dst: None,
                    ext: 0,
                    args: vec![VReg(3)],
                },
            ],
            4,
        );
        assert!(
            !store_load_forward(&mut f, &md()),
            "sub-word overlapping store must kill the tracked cell: {f}"
        );
    }

    #[test]
    fn dead_store_elim_respects_sub_word_overlap() {
        // store [g0+0]; load [g0+2] (reads bytes 2..4 of the store);
        // store [g0+0]: the first store is observed, not dead.
        let mut f = mem_fn(
            vec![
                Inst::Addr {
                    dst: VReg(1),
                    global: 0,
                    offset: 0,
                },
                Inst::Addr {
                    dst: VReg(2),
                    global: 0,
                    offset: 2,
                },
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(0),
                },
                Inst::Load {
                    dst: VReg(3),
                    addr: VReg(2),
                },
                Inst::CallExtern {
                    dst: None,
                    ext: 0,
                    args: vec![VReg(3)],
                },
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(0),
                },
            ],
            4,
        );
        assert!(
            !dead_store_elim(&mut f, &md()),
            "a partially-read store must survive: {f}"
        );
    }

    #[test]
    fn dead_store_elim_drops_overwritten_unread_stores() {
        let mut f = mem_fn(
            vec![
                Inst::Addr {
                    dst: VReg(1),
                    global: 0,
                    offset: 0,
                },
                Inst::Const {
                    dst: VReg(2),
                    value: 7,
                },
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(2),
                }, // dead: overwritten below, never read
                Inst::CallExtern {
                    dst: None,
                    ext: 0,
                    args: vec![],
                }, // externs cannot read memory
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(0),
                },
            ],
            3,
        );
        assert!(dead_store_elim(&mut f, &md()));
        let stores = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert_eq!(stores, 1, "{f}");
        assert!(!dead_store_elim(&mut f, &md()), "idempotent: {f}");
    }

    #[test]
    fn dead_store_elim_keeps_stores_that_may_be_read() {
        let reader = |r: Inst| {
            mem_fn(
                vec![
                    Inst::Addr {
                        dst: VReg(1),
                        global: 0,
                        offset: 0,
                    },
                    Inst::Store {
                        addr: VReg(1),
                        src: VReg(0),
                    },
                    r,
                    Inst::Store {
                        addr: VReg(1),
                        src: VReg(0),
                    },
                ],
                8,
            )
        };
        // A call may read the cell; a load of the same cell does read it.
        for r in [
            Inst::Call {
                dst: None,
                func: 1,
                args: vec![],
            },
            Inst::Load {
                dst: VReg(7),
                addr: VReg(1),
            },
        ] {
            let mut f = reader(r);
            assert!(!dead_store_elim(&mut f, &md()), "{f}");
        }
        // The final store of a block is never dead (memory escapes).
        let mut tail = mem_fn(
            vec![
                Inst::Addr {
                    dst: VReg(1),
                    global: 0,
                    offset: 0,
                },
                Inst::Store {
                    addr: VReg(1),
                    src: VReg(0),
                },
            ],
            2,
        );
        assert!(!dead_store_elim(&mut tail, &md()));
    }

    /// A countdown loop whose body loads `g0[0]` every iteration; with
    /// `store_in_body`, the body also stores to that global.
    /// bb0: a = &g0; store a, v0; Br v0 → bb1 | bb2; both store (or not)
    /// and join in bb3, which loads the cell.
    fn diamond_mem_fn(store_then: Option<i32>, store_else: Option<i32>) -> MirFunction {
        let store_arm = |value: Option<i32>, base: u32| {
            let mut insts = vec![Inst::Addr {
                dst: VReg(base),
                global: 0,
                offset: 0,
            }];
            if let Some(v) = value {
                insts.push(Inst::Const {
                    dst: VReg(base + 1),
                    value: v,
                });
                insts.push(Inst::Store {
                    addr: VReg(base),
                    src: VReg(base + 1),
                });
            }
            insts
        };
        MirFunction {
            name: "diamond".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: store_arm(store_then, 1),
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: store_arm(store_else, 4),
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![
                        Inst::Addr {
                            dst: VReg(7),
                            global: 0,
                            offset: 0,
                        },
                        Inst::Load {
                            dst: VReg(8),
                            addr: VReg(7),
                        },
                    ],
                    term: Term::Ret(Some(VReg(8))),
                },
            ],
            next_vreg: 9,
        }
    }

    fn count_loads(f: &MirFunction) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count()
    }

    fn count_phis(f: &MirFunction) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Phi { .. }))
            .count()
    }

    #[test]
    fn avail_loads_flows_availability_and_kills_at_joins() {
        let f = diamond_mem_fn(Some(1), None);
        let addrs = mem::FnAddrs::analyze(&f);
        let avail = avail_loads(&f, &md(), &addrs);
        let cell = (0usize, 0i32);
        assert!(avail.universe().contains(&cell));
        // Stored on the then-arm only: available at its exit, not at the
        // else-arm's, so the join entry set is empty.
        assert!(avail.on_edge(BlockId(1), cell));
        assert!(!avail.on_edge(BlockId(2), cell));
        assert!(!avail.on_entry(BlockId(3)).contains(&cell));
        // Stored on both arms: available on join entry.
        let f2 = diamond_mem_fn(Some(1), Some(2));
        let addrs2 = mem::FnAddrs::analyze(&f2);
        let avail2 = avail_loads(&f2, &md(), &addrs2);
        assert!(avail2.on_entry(BlockId(3)).contains(&cell));
    }

    #[test]
    fn cross_block_forward_deletes_load_on_straight_line() {
        // store in bb0, load in bb1 (straight line): the load is deleted
        // and the return uses the stored value directly.
        let mut f = MirFunction {
            name: "line".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::Addr {
                            dst: VReg(1),
                            global: 0,
                            offset: 0,
                        },
                        Inst::Store {
                            addr: VReg(1),
                            src: VReg(0),
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![
                        Inst::Addr {
                            dst: VReg(2),
                            global: 0,
                            offset: 0,
                        },
                        Inst::Load {
                            dst: VReg(3),
                            addr: VReg(2),
                        },
                    ],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        assert!(cross_block_forward(&mut f, &md()));
        assert_eq!(count_loads(&f), 0, "{f}");
        assert_eq!(count_phis(&f), 0, "straight line needs no phi: {f}");
        assert_eq!(f.blocks[1].term, Term::Ret(Some(VReg(0))), "{f}");
    }

    #[test]
    fn cross_block_forward_merges_diamond_values_with_phi() {
        let mut f = diamond_mem_fn(Some(1), Some(2));
        assert!(cross_block_forward(&mut f, &md()));
        assert_eq!(count_loads(&f), 0, "{f}");
        assert_eq!(count_phis(&f), 1, "differing arm values need a phi: {f}");
        let Some(Inst::Phi { dst, args }) = f.blocks[3].insts.first() else {
            panic!("phi must sit at the join head: {f}");
        };
        assert_eq!(args.len(), 2, "{f}");
        assert_eq!(f.blocks[3].term, Term::Ret(Some(*dst)), "{f}");
    }

    #[test]
    fn cross_block_forward_collapses_loop_transparent_value_without_phi() {
        // store in bb0, load in the loop header bb1 whose body never
        // writes the cell: the back-edge value is the entry value, so the
        // loop phi is trivial and the load forwards straight to v0.
        let mut f = MirFunction {
            name: "looped".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::Addr {
                            dst: VReg(1),
                            global: 0,
                            offset: 0,
                        },
                        Inst::Store {
                            addr: VReg(1),
                            src: VReg(0),
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![
                        Inst::Addr {
                            dst: VReg(2),
                            global: 0,
                            offset: 0,
                        },
                        Inst::Load {
                            dst: VReg(3),
                            addr: VReg(2),
                        },
                    ],
                    term: Term::Br {
                        cond: VReg(3),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        assert!(cross_block_forward(&mut f, &md()));
        assert_eq!(count_loads(&f), 0, "{f}");
        assert_eq!(count_phis(&f), 0, "trivial loop phi must collapse: {f}");
        assert_eq!(f.blocks[2].term, Term::Ret(Some(VReg(0))), "{f}");
    }

    #[test]
    fn cross_block_forward_respects_call_clobbers() {
        // store in bb0, call in bb0, load in bb1: the call may overwrite
        // the (mutable-by-default) cell, so the load must stay.
        let mut f = MirFunction {
            name: "clob".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::Addr {
                            dst: VReg(1),
                            global: 0,
                            offset: 0,
                        },
                        Inst::Store {
                            addr: VReg(1),
                            src: VReg(0),
                        },
                        Inst::Call {
                            dst: None,
                            func: 0,
                            args: vec![],
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![
                        Inst::Addr {
                            dst: VReg(2),
                            global: 0,
                            offset: 0,
                        },
                        Inst::Load {
                            dst: VReg(3),
                            addr: VReg(2),
                        },
                    ],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        assert!(!cross_block_forward(&mut f, &md()));
        assert_eq!(count_loads(&f), 1, "{f}");
    }

    #[test]
    fn load_pre_compensates_the_lacking_diamond_arm() {
        // Stored on the then-arm only: PRE inserts the compensating load
        // in the else-arm and phi-merges, deleting the join's load.
        let mut f = diamond_mem_fn(Some(7), None);
        assert!(load_pre(&mut f, &md()));
        assert_eq!(count_phis(&f), 1, "{f}");
        assert_eq!(
            f.blocks[2]
                .insts
                .iter()
                .filter(|i| matches!(i, Inst::Load { .. }))
                .count(),
            1,
            "compensating load lands in the lacking arm: {f}"
        );
        assert!(
            !f.blocks[3]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Load { .. })),
            "the join's load is gone: {f}"
        );
        // Fully redundant now: a second run has nothing left to do.
        assert!(!load_pre(&mut f, &md()), "{f}");
    }

    #[test]
    fn load_pre_leaves_fully_unavailable_joins_alone() {
        let mut f = diamond_mem_fn(None, None);
        assert!(!load_pre(&mut f, &md()), "{f}");
        assert_eq!(count_loads(&f), 1, "{f}");
    }

    fn load_loop(store_in_body: bool) -> MirFunction {
        let mut body = vec![
            Inst::Addr {
                dst: VReg(4),
                global: 0,
                offset: 0,
            },
            Inst::Load {
                dst: VReg(5),
                addr: VReg(4),
            },
            Inst::CallExtern {
                dst: None,
                ext: 0,
                args: vec![VReg(5)],
            },
            Inst::Bin {
                op: BinOp::Sub,
                dst: VReg(0),
                lhs: VReg(0),
                rhs: VReg(1),
            },
        ];
        if store_in_body {
            body.insert(
                2,
                Inst::Store {
                    addr: VReg(4),
                    src: VReg(0),
                },
            );
        }
        MirFunction {
            name: "ll".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![
                        Inst::Const {
                            dst: VReg(0),
                            value: 3,
                        },
                        Inst::Const {
                            dst: VReg(1),
                            value: 1,
                        },
                        Inst::Const {
                            dst: VReg(2),
                            value: 0,
                        },
                    ],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Gt,
                        dst: VReg(3),
                        lhs: VReg(0),
                        rhs: VReg(2),
                    }],
                    term: Term::Br {
                        cond: VReg(3),
                        then_block: BlockId(2),
                        else_block: BlockId(3),
                    },
                },
                Block {
                    insts: body,
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            next_vreg: 6,
        }
    }

    fn loads_in_loop_bodies(f: &MirFunction) -> usize {
        let mut in_loops: BTreeSet<BlockId> = BTreeSet::new();
        for lp in cfg::natural_loops(f) {
            in_loops.extend(lp.body.iter().copied());
        }
        in_loops
            .iter()
            .map(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .filter(|i| matches!(i, Inst::Load { .. }))
                    .count()
            })
            .sum()
    }

    #[test]
    fn licm_hoists_clobber_free_loads() {
        let mut f = load_loop(false);
        ssa::construct(&mut f);
        assert!(licm(&mut f, &md()));
        assert_eq!(
            loads_in_loop_bodies(&f),
            0,
            "the invariant, unclobbered load must leave the loop: {f}"
        );
    }

    #[test]
    fn licm_keeps_loads_the_loop_clobbers() {
        let mut f = load_loop(true);
        ssa::construct(&mut f);
        licm(&mut f, &md());
        assert_eq!(
            loads_in_loop_bodies(&f),
            1,
            "a store to the cell pins the load in the body: {f}"
        );
    }
}
