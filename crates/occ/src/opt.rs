//! The mid-end: a fixed-point pass manager over SSA passes, plus the
//! program-level passes (inlining, dead-function elimination) that frame
//! it.
//!
//! # Architecture
//!
//! [`run_pipeline`] is the entry point. For `-O1` and above it builds a
//! [`PassManager`] with the SSA passes registered for the level and runs
//! every function through it. The pass manager drives each function
//! through bounded **outer rounds** of
//!
//! ```text
//! simplify_cfg  →  ssa::construct  →  [SSA passes to a fixed point]  →  ssa::destruct
//! ```
//!
//! and iterates the registered SSA passes inside each round until a full
//! sweep changes nothing (or [`PassManager::MAX_SSA_ROUNDS`] is hit). The
//! outer rounds matter because φ-free CFG simplification exposes work the
//! SSA passes could not see — threading two empty arms of a `Br` onto the
//! same join block, for example, creates the equal-target branch that
//! [`fold_terminators`] collapses in the next round.
//!
//! Every pass records a [`PassStats`] entry — `runs`, `changes` (runs
//! that rewrote something) and `insts_removed` — collected into the
//! [`PipelineStats`] that [`crate::compile`] exposes on the artifact.
//! This is the analogue of GCC's per-pass dump files the paper inspected
//! ("in the dead code elimination file, we have found that code related
//! to the unreachable state still exists"), made machine-readable so the
//! bench harness can report per-pass effect counts next to the size
//! tables.
//!
//! # The pass set
//!
//! SSA passes (function-local, registered per level):
//!
//! * [`constant_fold`] — constant propagation/folding with branch folding,
//! * [`copy_propagate`] — transitive copy propagation (`-O2`+),
//! * [`gvn_cse`] — dominator-scoped global value numbering / common
//!   subexpression elimination (`-O2`+),
//! * [`fold_terminators`] — terminator folding and SSA jump threading,
//! * [`dead_code_elim`] — removal of unused pure instructions.
//!
//! Program passes (`-O2`+, run once before the per-function loop):
//!
//! * [`inline_small_functions`] — bottom-up inlining of single-block
//!   callees,
//! * [`dead_function_elimination`] — call-graph reachability rooted at
//!   exported and **address-taken** functions. This is the pass the
//!   paper's §III.C probes: an unreachable state's handlers stay
//!   address-reachable (dispatch tables, switch cases over a runtime
//!   value), so the model-level fact "no incoming transition" does not
//!   survive code generation and the compiler must keep the code.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::cfg;
use crate::mir::{BinOp, BlockId, Inst, MirFunction, Program, Term, UnOp, VReg, Word};
use crate::ssa;
use crate::OptLevel;

// ---------------------------------------------------------------------
// Pass statistics
// ---------------------------------------------------------------------

/// Effect counters for one named pass, aggregated over every function and
/// round it ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStats {
    /// Canonical pass name (see the [`pass`] constants).
    pub name: &'static str,
    /// How many times the pass executed.
    pub runs: usize,
    /// Rewrites reported: for the SSA fixed-point passes, the number of
    /// executions that changed something (`changes <= runs`); the
    /// program-level passes report item counts instead — call sites
    /// inlined, functions removed — which can exceed `runs`.
    pub changes: usize,
    /// Net instructions removed across all executions (terminators count
    /// one instruction each; growth in a single run saturates to zero).
    pub insts_removed: usize,
}

/// Canonical pass names as they appear in [`PassStats::name`].
pub mod pass {
    /// Constant propagation/folding with branch folding.
    pub const CONST_FOLD: &str = "const-fold";
    /// Transitive copy propagation.
    pub const COPY_PROP: &str = "copy-prop";
    /// Global value numbering / common-subexpression elimination.
    pub const GVN_CSE: &str = "gvn-cse";
    /// Terminator folding and SSA jump threading.
    pub const TERM_FOLD: &str = "term-fold";
    /// Dead-code elimination.
    pub const DCE: &str = "dce";
    /// φ-free CFG simplification.
    pub const SIMPLIFY_CFG: &str = "simplify-cfg";
    /// Bottom-up inlining of small functions.
    pub const INLINE: &str = "inline";
    /// Call-graph dead-function elimination.
    pub const DEAD_FN_ELIM: &str = "dead-fn-elim";
}

/// Per-pass statistics for one whole [`run_pipeline`] invocation, in
/// first-execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    passes: Vec<PassStats>,
}

impl PipelineStats {
    /// All recorded passes in first-execution order.
    pub fn passes(&self) -> &[PassStats] {
        &self.passes
    }

    /// Looks up one pass by canonical name.
    pub fn get(&self, name: &str) -> Option<&PassStats> {
        self.passes.iter().find(|p| p.name == name)
    }

    /// Total instructions removed by all passes.
    pub fn total_insts_removed(&self) -> usize {
        self.passes.iter().map(|p| p.insts_removed).sum()
    }

    /// Renders one human-readable, column-aligned line per executed pass.
    pub fn render(&self) -> Vec<String> {
        self.passes
            .iter()
            .filter(|p| p.runs > 0)
            .map(|p| {
                format!(
                    "{:<14} runs {:>3}  changes {:>3}  insts removed {:>4}",
                    p.name, p.runs, p.changes, p.insts_removed
                )
            })
            .collect()
    }

    fn entry(&mut self, name: &'static str) -> &mut PassStats {
        if let Some(i) = self.passes.iter().position(|p| p.name == name) {
            return &mut self.passes[i];
        }
        self.passes.push(PassStats {
            name,
            ..PassStats::default()
        });
        self.passes.last_mut().expect("just pushed")
    }

    fn record(&mut self, name: &'static str, changed: bool, insts_removed: usize) {
        let st = self.entry(name);
        st.runs += 1;
        if changed {
            st.changes += 1;
        }
        st.insts_removed += insts_removed;
    }
}

// ---------------------------------------------------------------------
// The pass manager
// ---------------------------------------------------------------------

/// A function-local SSA pass: rewrites the function, returns `true` if
/// anything changed.
pub type SsaPass = fn(&mut MirFunction) -> bool;

/// Runs registered SSA passes over functions to a bounded fixed point and
/// records per-pass [`PassStats`].
#[derive(Debug, Default)]
pub struct PassManager {
    ssa_passes: Vec<(&'static str, SsaPass)>,
    outer_rounds: usize,
    stats: PipelineStats,
}

impl PassManager {
    /// Bound on SSA-pass sweeps inside one outer round; a sweep that
    /// changes nothing ends the fixed-point loop early, so this only
    /// caps pathological ping-ponging between passes.
    pub const MAX_SSA_ROUNDS: usize = 8;

    /// An empty manager running a single outer round.
    pub fn new() -> PassManager {
        PassManager {
            ssa_passes: Vec::new(),
            outer_rounds: 1,
            stats: PipelineStats::default(),
        }
    }

    /// The standard pass roster for `level`.
    pub fn for_level(level: OptLevel) -> PassManager {
        let mut pm = PassManager::new();
        match level {
            OptLevel::O0 => {}
            OptLevel::O1 => {
                pm.register(pass::CONST_FOLD, constant_fold);
                pm.register(pass::TERM_FOLD, fold_terminators);
                pm.register(pass::DCE, dead_code_elim);
            }
            OptLevel::O2 | OptLevel::Os => {
                // Extra outer rounds let φ-free CFG cleanup and the SSA
                // passes feed each other; copy propagation erases the
                // copies each construct/destruct round introduces.
                pm.outer_rounds = 3;
                pm.register(pass::CONST_FOLD, constant_fold);
                pm.register(pass::COPY_PROP, copy_propagate);
                pm.register(pass::GVN_CSE, gvn_cse);
                pm.register(pass::TERM_FOLD, fold_terminators);
                pm.register(pass::DCE, dead_code_elim);
            }
        }
        pm
    }

    /// Registers an SSA pass under its reporting name.
    pub fn register(&mut self, name: &'static str, p: SsaPass) -> &mut PassManager {
        self.ssa_passes.push((name, p));
        self
    }

    /// Overrides the number of outer rounds (φ-free simplify + SSA
    /// fixed point) per function.
    pub fn with_outer_rounds(mut self, rounds: usize) -> PassManager {
        self.outer_rounds = rounds.max(1);
        self
    }

    /// Runs every function of `program` through [`PassManager::run_function`].
    pub fn run_program(&mut self, program: &mut Program) {
        for f in &mut program.functions {
            self.run_function(f);
        }
    }

    /// Optimizes one function: bounded outer rounds of φ-free CFG
    /// simplification around an SSA fixed point, then a final cleanup.
    /// Returns `true` if anything changed.
    pub fn run_function(&mut self, f: &mut MirFunction) -> bool {
        let mut any = false;
        for _ in 0..self.outer_rounds {
            any |= self.simplify(f);
            if self.ssa_passes.is_empty() {
                break;
            }
            ssa::construct(f);
            let ssa_changed = self.ssa_fixpoint(f);
            ssa::destruct(f);
            any |= ssa_changed;
            if !ssa_changed {
                break;
            }
        }
        any |= self.simplify(f);
        any
    }

    /// The collected statistics so far.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Consumes the manager, returning its statistics.
    pub fn into_stats(self) -> PipelineStats {
        self.stats
    }

    fn simplify(&mut self, f: &mut MirFunction) -> bool {
        let before = f.inst_count();
        let changed = simplify_cfg(f);
        let removed = before.saturating_sub(f.inst_count());
        self.stats.record(pass::SIMPLIFY_CFG, changed, removed);
        changed
    }

    fn ssa_fixpoint(&mut self, f: &mut MirFunction) -> bool {
        let mut any = false;
        for _ in 0..Self::MAX_SSA_ROUNDS {
            let mut round_changed = false;
            for i in 0..self.ssa_passes.len() {
                let (name, p) = self.ssa_passes[i];
                let before = f.inst_count();
                let changed = p(f);
                let removed = before.saturating_sub(f.inst_count());
                self.stats.record(name, changed, removed);
                round_changed |= changed;
            }
            if !round_changed {
                break;
            }
            any = true;
        }
        any
    }
}

/// Runs the pipeline for `level`, returning per-pass statistics.
pub fn run_pipeline(program: &mut Program, level: OptLevel) -> PipelineStats {
    let mut pm = PassManager::for_level(level);
    if level >= OptLevel::O2 {
        let threshold = if level == OptLevel::Os { 10 } else { 24 };
        let inlined = inline_small_functions(program, threshold);
        let st = pm.stats.entry(pass::INLINE);
        st.runs += 1;
        st.changes += inlined;
        let before: usize = program.functions.iter().map(MirFunction::inst_count).sum();
        let removed_fns = dead_function_elimination(program);
        let after: usize = program.functions.iter().map(MirFunction::inst_count).sum();
        pm.stats.record(
            pass::DEAD_FN_ELIM,
            !removed_fns.is_empty(),
            before.saturating_sub(after),
        );
        let st = pm.stats.entry(pass::DEAD_FN_ELIM);
        st.changes = st.changes.max(removed_fns.len());
    }
    if level > OptLevel::O0 {
        pm.run_program(program);
    }
    pm.into_stats()
}

// ---------------------------------------------------------------------
// Constant propagation + folding + branch folding (on SSA)
// ---------------------------------------------------------------------

/// Propagates and folds constants; folds constant branches. Returns `true`
/// if anything changed.
pub fn constant_fold(f: &mut MirFunction) -> bool {
    let mut known: BTreeMap<VReg, i32> = BTreeMap::new();
    let mut changed = false;
    // SSA: each def has one value; iterate to a fixpoint to flow through
    // φs and copies in any block order.
    loop {
        let mut grew = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            for inst in &f.block(b).insts {
                let Some(dst) = inst.def() else { continue };
                if known.contains_key(&dst) {
                    continue;
                }
                let value = match inst {
                    Inst::Const { value, .. } => Some(*value),
                    Inst::Copy { src, .. } => known.get(src).copied(),
                    Inst::Un { op, src, .. } => known.get(src).map(|v| op.eval(*v)),
                    Inst::Bin { op, lhs, rhs, .. } => match (known.get(lhs), known.get(rhs)) {
                        (Some(a), Some(b)) => Some(op.eval(*a, *b)),
                        _ => None,
                    },
                    Inst::Phi { args, .. } => {
                        let vals: Option<BTreeSet<i32>> =
                            args.iter().map(|(_, v)| known.get(v).copied()).collect();
                        vals.and_then(|s| {
                            if s.len() == 1 {
                                s.into_iter().next()
                            } else {
                                None
                            }
                        })
                    }
                    _ => None,
                };
                if let Some(v) = value {
                    known.insert(dst, v);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Rewrite: folded instructions become Consts; constant branches become
    // gotos.
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        for inst in &mut blk.insts {
            let Some(dst) = inst.def() else { continue };
            if let Some(v) = known.get(&dst) {
                let replace = !matches!(inst, Inst::Const { .. })
                    && inst.is_pure()
                    && !matches!(inst, Inst::Load { .. });
                if replace {
                    *inst = Inst::Const { dst, value: *v };
                    changed = true;
                }
            }
        }
        match &blk.term {
            Term::Br {
                cond,
                then_block,
                else_block,
            } => {
                if let Some(v) = known.get(cond) {
                    blk.term = Term::Goto(if *v != 0 { *then_block } else { *else_block });
                    changed = true;
                }
            }
            Term::Switch {
                val,
                cases,
                default,
            } => {
                if let Some(v) = known.get(val) {
                    let target = cases
                        .iter()
                        .find(|(c, _)| c == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    blk.term = Term::Goto(target);
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

// ---------------------------------------------------------------------
// Copy propagation (on SSA)
// ---------------------------------------------------------------------

/// Replaces uses of copies with their (transitively resolved) sources.
pub fn copy_propagate(f: &mut MirFunction) -> bool {
    let mut alias: BTreeMap<VReg, VReg> = BTreeMap::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        for inst in &f.block(b).insts {
            if let Inst::Copy { dst, src } = inst {
                alias.insert(*dst, *src);
            }
        }
    }
    if alias.is_empty() {
        return false;
    }
    let resolve = |mut v: VReg| {
        let mut hops = 0;
        while let Some(&next) = alias.get(&v) {
            v = next;
            hops += 1;
            if hops > alias.len() {
                break; // defensive: cycles cannot occur in SSA
            }
        }
        v
    };
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        for inst in &mut blk.insts {
            inst.map_uses(&mut |v| {
                let r = resolve(v);
                if r != v {
                    changed = true;
                }
                r
            });
        }
        blk.term.map_uses(&mut |v| {
            let r = resolve(v);
            if r != v {
                changed = true;
            }
            r
        });
    }
    changed
}

// ---------------------------------------------------------------------
// Global value numbering / common-subexpression elimination (on SSA)
// ---------------------------------------------------------------------

/// A value-number key for a pure, memory-free computation. `Const` is
/// deliberately absent: re-materializing an immediate is as cheap as a
/// copy, and CSE-ing constants would ping-pong with [`constant_fold`]
/// (which rewrites known-value copies back into constants).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum GvnKey {
    Un(UnOp, VReg),
    Bin(BinOp, VReg, VReg),
    Addr(usize, i32),
    FnAddr(usize),
}

/// Dominator-scoped global value numbering / common-subexpression
/// elimination. A pure, memory-free instruction recomputing a value
/// already available from a dominating definition is replaced by a
/// `Copy` from that definition; copy propagation and DCE then erase the
/// leftovers. Operands are canonicalized through already-discovered
/// value leaders (and by operand order for commutative operators), so
/// second-order redundancies fall in one sweep. Returns `true` if
/// anything changed.
pub fn gvn_cse(f: &mut MirFunction) -> bool {
    let idom = cfg::dominators(f);
    let children = cfg::dominator_tree_children(&idom);
    let mut table: BTreeMap<GvnKey, VReg> = BTreeMap::new();
    let mut leader: BTreeMap<VReg, VReg> = BTreeMap::new();
    let mut changed = false;
    gvn_walk(
        f,
        BlockId(0),
        &children,
        &mut table,
        &mut leader,
        &mut changed,
    );
    changed
}

fn gvn_leader(leader: &BTreeMap<VReg, VReg>, v: VReg) -> VReg {
    leader.get(&v).copied().unwrap_or(v)
}

fn gvn_walk(
    f: &mut MirFunction,
    b: BlockId,
    children: &BTreeMap<BlockId, Vec<BlockId>>,
    table: &mut BTreeMap<GvnKey, VReg>,
    leader: &mut BTreeMap<VReg, VReg>,
    changed: &mut bool,
) {
    // Keys this block introduced; they go out of scope (become
    // non-dominating) when the walk leaves the block's subtree.
    let mut added: Vec<GvnKey> = Vec::new();
    for i in 0..f.block(b).insts.len() {
        let inst = f.block(b).insts[i].clone();
        let key = match &inst {
            Inst::Copy { dst, src } => {
                let l = gvn_leader(leader, *src);
                leader.insert(*dst, l);
                continue;
            }
            Inst::Un { op, src, .. } => Some(GvnKey::Un(*op, gvn_leader(leader, *src))),
            Inst::Bin { op, lhs, rhs, .. } => {
                let (mut a, mut c) = (gvn_leader(leader, *lhs), gvn_leader(leader, *rhs));
                if op.commutative() && c < a {
                    std::mem::swap(&mut a, &mut c);
                }
                Some(GvnKey::Bin(*op, a, c))
            }
            Inst::Addr { global, offset, .. } => Some(GvnKey::Addr(*global, *offset)),
            Inst::FnAddr { func, .. } => Some(GvnKey::FnAddr(*func)),
            _ => None,
        };
        let (Some(key), Some(dst)) = (key, inst.def()) else {
            continue;
        };
        if let Some(&rep) = table.get(&key) {
            f.block_mut(b).insts[i] = Inst::Copy { dst, src: rep };
            leader.insert(dst, gvn_leader(leader, rep));
            *changed = true;
        } else {
            table.insert(key.clone(), dst);
            added.push(key);
        }
    }
    if let Some(kids) = children.get(&b) {
        for &k in kids {
            gvn_walk(f, k, children, table, leader, changed);
        }
    }
    for k in added {
        table.remove(&k);
    }
}

// ---------------------------------------------------------------------
// Terminator folding + SSA jump threading
// ---------------------------------------------------------------------

/// Folds redundant terminators and threads jumps, on SSA form:
///
/// * a `Br` whose arms share a target becomes a `Goto`,
/// * `Switch` cases targeting the default block are dropped; a `Switch`
///   whose every arm agrees becomes a `Goto`,
/// * edges through an empty block ending in `Goto` are retargeted to its
///   destination when every φ in the destination agrees on the merged
///   value (SSA-safe jump threading).
///
/// φ-arguments of blocks that lose duplicate incoming edges are
/// deduplicated, and blocks made unreachable are removed. Returns `true`
/// if anything changed.
pub fn fold_terminators(f: &mut MirFunction) -> bool {
    let mut changed = false;

    // 1. Collapse redundant multi-way terminators.
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        let folded = match &mut blk.term {
            Term::Br {
                then_block,
                else_block,
                ..
            } if then_block == else_block => Some(*then_block),
            Term::Switch { cases, default, .. } => {
                let d = *default;
                let before = cases.len();
                cases.retain(|(_, t)| *t != d);
                if cases.len() != before {
                    changed = true;
                }
                if cases.is_empty() {
                    Some(d)
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(t) = folded {
            blk.term = Term::Goto(t);
            changed = true;
        }
    }

    // 2. Thread edges through empty forwarding blocks. One retarget per
    // search so predecessor lists stay fresh; chains converge within the
    // loop.
    loop {
        let preds = cfg::predecessors(f);
        let mut acted = false;
        'search: for s in f.block_ids().collect::<Vec<_>>() {
            if s == BlockId(0) || !f.block(s).insts.is_empty() {
                continue;
            }
            let Term::Goto(t) = f.block(s).term else {
                continue;
            };
            if t == s {
                continue;
            }
            let sp = preds[s.0 as usize].clone();
            if sp.is_empty() {
                continue; // already unreachable; removed below
            }
            // φ-safety: the value joining `t` via `s` must agree with any
            // existing entry for a predecessor about to be merged in.
            for inst in &f.block(t).insts {
                let Inst::Phi { args, .. } = inst else {
                    continue;
                };
                let Some(via_s) = args.iter().find(|(p, _)| *p == s).map(|(_, v)| *v) else {
                    continue 'search;
                };
                for p in &sp {
                    if args.iter().any(|(q, w)| q == p && *w != via_s) {
                        continue 'search;
                    }
                }
            }
            // Rewrite φs in `t`: the `s` entry becomes one entry per
            // incoming predecessor (skipping those already present).
            for inst in &mut f.block_mut(t).insts {
                let Inst::Phi { args, .. } = inst else {
                    continue;
                };
                let Some(pos) = args.iter().position(|(p, _)| *p == s) else {
                    continue;
                };
                let (_, via_s) = args.remove(pos);
                for p in &sp {
                    if !args.iter().any(|(q, _)| q == p) {
                        args.push((*p, via_s));
                    }
                }
            }
            acted = true;
            changed = true;
            for p in &sp {
                f.block_mut(*p)
                    .term
                    .map_succs(&mut |x| if x == s { t } else { x });
            }
            break;
        }
        if !acted {
            break;
        }
    }

    if changed {
        dedup_phi_args(f);
        ssa::remove_unreachable_blocks(f);
    }
    changed
}

/// Removes duplicate φ-arguments for the same predecessor. Duplicate
/// entries only arise from collapsed duplicate edges (a folded
/// equal-target `Br`, dropped `Switch` arms), where both slots carry the
/// same renamed value, so keeping the first is sound.
fn dedup_phi_args(f: &mut MirFunction) {
    for b in f.block_ids().collect::<Vec<_>>() {
        for inst in &mut f.block_mut(b).insts {
            if let Inst::Phi { args, .. } = inst {
                let mut seen: BTreeSet<BlockId> = BTreeSet::new();
                args.retain(|(p, _)| seen.insert(*p));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Dead code elimination (on SSA)
// ---------------------------------------------------------------------

/// Removes pure instructions whose results are never used. This is the
/// per-function analogue of the paper's "dead code elimination" dump: it
/// cannot remove state-machine handler bodies because they are reached
/// through stores, calls and address-taken tables.
pub fn dead_code_elim(f: &mut MirFunction) -> bool {
    let mut changed = false;
    loop {
        let mut used: BTreeSet<VReg> = BTreeSet::new();
        for b in f.block_ids() {
            for inst in &f.block(b).insts {
                used.extend(inst.uses());
            }
            used.extend(f.block(b).term.uses());
        }
        let mut removed = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            let blk = f.block_mut(b);
            let before = blk.insts.len();
            blk.insts.retain(|inst| {
                if !inst.is_pure() {
                    return true;
                }
                match inst.def() {
                    Some(d) => used.contains(&d),
                    None => true,
                }
            });
            if blk.insts.len() != before {
                removed = true;
            }
        }
        if !removed {
            break;
        }
        changed = true;
    }
    changed
}

// ---------------------------------------------------------------------
// CFG simplification (φ-free form only)
// ---------------------------------------------------------------------

/// Removes unreachable blocks, threads empty forwarding blocks and merges
/// every eligible straight-line chain in one sweep. Must run on φ-free
/// functions. Returns `true` if anything changed.
pub fn simplify_cfg(f: &mut MirFunction) -> bool {
    let mut any = false;
    loop {
        let blocks_before = f.blocks.len();
        ssa::remove_unreachable_blocks(f);
        let mut changed = f.blocks.len() != blocks_before;

        // Thread jumps through empty forwarding blocks.
        let mut forward: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        for b in f.block_ids() {
            if b == BlockId(0) {
                continue;
            }
            let blk = f.block(b);
            if blk.insts.is_empty() {
                if let Term::Goto(t) = blk.term {
                    if t != b {
                        forward.insert(b, t);
                    }
                }
            }
        }
        if !forward.is_empty() {
            let resolve = |mut b: BlockId| {
                let mut hops = 0;
                while let Some(&n) = forward.get(&b) {
                    b = n;
                    hops += 1;
                    if hops > forward.len() {
                        break;
                    }
                }
                b
            };
            for b in f.block_ids().collect::<Vec<_>>() {
                let mut term = f.block(b).term.clone();
                term.map_succs(&mut |s| {
                    let r = resolve(s);
                    if r != s {
                        changed = true;
                    }
                    r
                });
                f.block_mut(b).term = term;
            }
        }

        // Merge b <- c when c is b's unique successor and b its unique
        // predecessor — following each chain to its end, every chain in
        // one sweep. Consumed blocks become unreachable and are dropped
        // at the top of the next round; predecessor *counts* stay valid
        // throughout the sweep because merging only moves an edge's
        // origin, never adds or removes edges.
        let preds = cfg::predecessors(f);
        let mut consumed: BTreeSet<BlockId> = BTreeSet::new();
        for b in f.block_ids().collect::<Vec<_>>() {
            if consumed.contains(&b) {
                continue;
            }
            while let Term::Goto(c) = f.block(b).term {
                if c == b
                    || c == BlockId(0)
                    || consumed.contains(&c)
                    || preds[c.0 as usize].len() != 1
                {
                    break;
                }
                let mut tail = std::mem::take(&mut f.block_mut(c).insts);
                let tail_term = f.block(c).term.clone();
                let blk = f.block_mut(b);
                blk.insts.append(&mut tail);
                blk.term = tail_term;
                consumed.insert(c);
                changed = true;
            }
        }

        if !changed {
            ssa::remove_unreachable_blocks(f);
            return any;
        }
        any = true;
    }
}

// ---------------------------------------------------------------------
// Inlining (pre-SSA, straight-line callees)
// ---------------------------------------------------------------------

/// Inlines calls to single-block functions of at most `max_insts`
/// instructions. Returns the number of call sites inlined.
pub fn inline_small_functions(program: &mut Program, max_insts: usize) -> usize {
    // Snapshot eligible callees.
    let mut eligible: BTreeMap<usize, (usize, Vec<Inst>, Option<VReg>, u32)> = BTreeMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        if f.blocks.len() != 1 || f.blocks[0].insts.len() > max_insts {
            continue;
        }
        let Term::Ret(ret) = f.blocks[0].term.clone() else {
            continue;
        };
        // Self-recursive single-block functions are not eligible.
        let self_call = f.blocks[0]
            .insts
            .iter()
            .any(|inst| matches!(inst, Inst::Call { func, .. } if *func == i));
        if self_call {
            continue;
        }
        eligible.insert(i, (f.params, f.blocks[0].insts.clone(), ret, f.next_vreg));
    }
    if eligible.is_empty() {
        return 0;
    }
    let mut inlined = 0;
    for ci in 0..program.functions.len() {
        for bi in 0..program.functions[ci].blocks.len() {
            let mut new_insts: Vec<Inst> = Vec::new();
            let insts = program.functions[ci].blocks[bi].insts.clone();
            for inst in insts {
                let Inst::Call { dst, func, args } = &inst else {
                    new_insts.push(inst);
                    continue;
                };
                // Do not inline into the callee itself.
                let Some((params, body, ret, callee_vregs)) = eligible.get(func) else {
                    new_insts.push(inst);
                    continue;
                };
                if *func == ci {
                    new_insts.push(inst);
                    continue;
                }
                // Map callee registers into the caller's space: parameters
                // become the argument registers, every other callee
                // register gets a compact fresh slot (`next_vreg` grows by
                // exactly the callee's non-parameter register count).
                let base = program.functions[ci].next_vreg;
                let extra = callee_vregs.saturating_sub(*params as u32);
                program.functions[ci].next_vreg += extra;
                let map = |v: VReg| {
                    if (v.0 as usize) < *params {
                        args[v.0 as usize]
                    } else {
                        VReg(base + (v.0 - *params as u32))
                    }
                };
                for callee_inst in body {
                    let mut copy = callee_inst.clone();
                    copy.map_uses(&mut |v| map(v));
                    if let Some(d) = copy.def_mut() {
                        *d = map(*d);
                    }
                    new_insts.push(copy);
                }
                if let (Some(d), Some(r)) = (dst, ret) {
                    new_insts.push(Inst::Copy {
                        dst: *d,
                        src: map(*r),
                    });
                }
                inlined += 1;
            }
            program.functions[ci].blocks[bi].insts = new_insts;
        }
    }
    inlined
}

// ---------------------------------------------------------------------
// Dead function elimination (call-graph reachability)
// ---------------------------------------------------------------------

/// Removes functions unreachable from the roots: exported functions and
/// every address-taken function (via [`Inst::FnAddr`] or function addresses
/// stored in global data). Returns removed names.
pub fn dead_function_elimination(program: &mut Program) -> Vec<String> {
    let n = program.functions.len();
    let mut live = vec![false; n];
    let mut work: Vec<usize> = Vec::new();
    for (i, f) in program.functions.iter().enumerate() {
        if f.exported {
            live[i] = true;
            work.push(i);
        }
    }
    // Address-taken through global data (const dispatch tables!): these are
    // roots because an indirect call may reach them at run time.
    for g in &program.globals {
        for w in &g.words {
            if let Word::FnAddr(i) = w {
                if !live[*i] {
                    live[*i] = true;
                    work.push(*i);
                }
            }
        }
    }
    while let Some(i) = work.pop() {
        for b in &program.functions[i].blocks {
            for inst in &b.insts {
                let callee = match inst {
                    Inst::Call { func, .. } => Some(*func),
                    Inst::FnAddr { func, .. } => Some(*func),
                    _ => None,
                };
                if let Some(c) = callee {
                    if !live[c] {
                        live[c] = true;
                        work.push(c);
                    }
                }
            }
        }
    }
    if live.iter().all(|l| *l) {
        return Vec::new();
    }
    // Remap indices.
    let mut remap = vec![usize::MAX; n];
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (i, f) in program.functions.drain(..).enumerate() {
        if live[i] {
            remap[i] = kept.len();
            kept.push(f);
        } else {
            removed.push(f.name);
        }
    }
    for f in &mut kept {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                match inst {
                    Inst::Call { func, .. } | Inst::FnAddr { func, .. } => {
                        *func = remap[*func];
                    }
                    _ => {}
                }
            }
        }
    }
    for g in &mut program.globals {
        for w in &mut g.words {
            if let Word::FnAddr(i) = w {
                *i = remap[*i];
            }
        }
    }
    program.functions = kept;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{BinOp, Block, GlobalData};

    fn const_add_fn() -> MirFunction {
        MirFunction {
            name: "f".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VReg(0),
                        value: 40,
                    },
                    Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(2),
                        lhs: VReg(0),
                        rhs: VReg(1),
                    },
                ],
                term: Term::Ret(Some(VReg(2))),
            }],
            next_vreg: 3,
        }
    }

    #[test]
    fn constant_folding_collapses_math() {
        let mut f = const_add_fn();
        ssa::construct(&mut f);
        assert!(constant_fold(&mut f));
        dead_code_elim(&mut f);
        ssa::destruct(&mut f);
        simplify_cfg(&mut f);
        // One Const remains, feeding the return.
        let consts: Vec<i32> = f.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&42), "{f}");
        assert!(f.blocks[0].insts.len() <= 2, "{f}");
    }

    #[test]
    fn branch_folding_removes_dead_arm() {
        let mut f = MirFunction {
            name: "g".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(0),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 10,
                    }],
                    term: Term::Ret(Some(VReg(1))),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(2),
                        value: 20,
                    }],
                    term: Term::Ret(Some(VReg(2))),
                },
            ],
            next_vreg: 3,
        };
        ssa::construct(&mut f);
        constant_fold(&mut f);
        ssa::destruct(&mut f);
        simplify_cfg(&mut f);
        assert!(f.blocks.len() <= 2, "constant branch leaves one path: {f}");
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut f = MirFunction {
            name: "h".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VReg(0),
                        value: 5,
                    },
                    Inst::Addr {
                        dst: VReg(1),
                        global: 0,
                        offset: 0,
                    },
                    Inst::Store {
                        addr: VReg(1),
                        src: VReg(0),
                    },
                    Inst::Const {
                        dst: VReg(2),
                        value: 99,
                    }, // dead
                ],
                term: Term::Ret(None),
            }],
            next_vreg: 3,
        };
        assert!(dead_code_elim(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Store { .. })));
    }

    fn two_fn_program(exported_second: bool) -> Program {
        Program {
            functions: vec![
                MirFunction {
                    name: "root".into(),
                    params: 0,
                    returns_value: false,
                    exported: true,
                    blocks: vec![Block {
                        insts: vec![],
                        term: Term::Ret(None),
                    }],
                    next_vreg: 0,
                },
                MirFunction {
                    name: "orphan".into(),
                    params: 0,
                    returns_value: false,
                    exported: exported_second,
                    blocks: vec![Block {
                        insts: vec![],
                        term: Term::Ret(None),
                    }],
                    next_vreg: 0,
                },
            ],
            globals: vec![],
            externs: vec![],
        }
    }

    #[test]
    fn dead_function_elimination_drops_orphans() {
        let mut p = two_fn_program(false);
        let removed = dead_function_elimination(&mut p);
        assert_eq!(removed, vec!["orphan".to_string()]);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn address_taken_functions_survive() {
        // The paper's crucial case: a function only referenced from a const
        // table must be kept.
        let mut p = two_fn_program(false);
        p.globals.push(GlobalData {
            name: "tbl".into(),
            size: 4,
            words: vec![Word::FnAddr(1)],
            mutable: false,
        });
        let removed = dead_function_elimination(&mut p);
        assert!(removed.is_empty());
        assert_eq!(p.functions.len(), 2);
    }

    fn inline_program() -> Program {
        Program {
            functions: vec![
                MirFunction {
                    name: "caller".into(),
                    params: 0,
                    returns_value: true,
                    exported: true,
                    blocks: vec![Block {
                        insts: vec![
                            Inst::Const {
                                dst: VReg(0),
                                value: 20,
                            },
                            Inst::Call {
                                dst: Some(VReg(1)),
                                func: 1,
                                args: vec![VReg(0)],
                            },
                        ],
                        term: Term::Ret(Some(VReg(1))),
                    }],
                    next_vreg: 2,
                },
                MirFunction {
                    name: "double".into(),
                    params: 1,
                    returns_value: true,
                    exported: false,
                    blocks: vec![Block {
                        insts: vec![Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(1),
                            lhs: VReg(0),
                            rhs: VReg(0),
                        }],
                        term: Term::Ret(Some(VReg(1))),
                    }],
                    next_vreg: 2,
                },
            ],
            globals: vec![],
            externs: vec![],
        }
    }

    #[test]
    fn inline_splices_single_block_callee() {
        let mut p = inline_program();
        assert_eq!(inline_small_functions(&mut p, 8), 1);
        let caller = &p.functions[0];
        assert!(
            !caller.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Call { .. })),
            "{caller}"
        );
        // And the callee is now removable.
        let removed = dead_function_elimination(&mut p);
        assert_eq!(removed, vec!["double".to_string()]);
    }

    #[test]
    fn inline_remaps_vregs_compactly() {
        // Regression: the callee has 1 param and 1 local register, so the
        // caller's register space must grow by exactly 1 per call site —
        // not by the callee's full register count keyed off raw ids.
        let mut p = inline_program();
        let before = p.functions[0].next_vreg;
        assert_eq!(inline_small_functions(&mut p, 8), 1);
        let caller = &p.functions[0];
        assert_eq!(
            caller.next_vreg,
            before + 1,
            "non-param callee registers must be remapped compactly: {caller}"
        );
        // Every register referenced by the caller is inside its space.
        for b in &caller.blocks {
            for inst in &b.insts {
                for u in inst.uses() {
                    assert!(u.0 < caller.next_vreg, "{u} out of range: {caller}");
                }
                if let Some(d) = inst.def() {
                    assert!(d.0 < caller.next_vreg, "{d} out of range: {caller}");
                }
            }
        }
    }

    #[test]
    fn simplify_cfg_threads_and_merges() {
        let mut f = MirFunction {
            name: "s".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(2)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            next_vreg: 0,
        };
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1, "{f}");
    }

    #[test]
    fn simplify_cfg_merges_long_chain_in_one_sweep() {
        // Regression: the merge step used to stop after the first merged
        // pair per round; a long straight-line chain must collapse fully,
        // preserving instruction order.
        let n = 12u32;
        let mut blocks: Vec<Block> = (0..n)
            .map(|i| Block {
                insts: vec![Inst::Const {
                    dst: VReg(i),
                    value: i as i32,
                }],
                term: Term::Goto(BlockId(i + 1)),
            })
            .collect();
        blocks.push(Block {
            insts: vec![],
            term: Term::Ret(None),
        });
        let mut f = MirFunction {
            name: "chain".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks,
            next_vreg: n,
        };
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1, "{f}");
        let values: Vec<i32> = f.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(values, (0..n as i32).collect::<Vec<_>>(), "{f}");
    }

    #[test]
    fn gvn_cse_replaces_redundant_expressions() {
        // v2 = v0 + v1 ; v3 = v1 + v0 (commutative dup) ; v4 = v2 * v3.
        let mut f = MirFunction {
            name: "cse".into(),
            params: 2,
            returns_value: true,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(2),
                        lhs: VReg(0),
                        rhs: VReg(1),
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(3),
                        lhs: VReg(1),
                        rhs: VReg(0),
                    },
                    Inst::Bin {
                        op: BinOp::Mul,
                        dst: VReg(4),
                        lhs: VReg(2),
                        rhs: VReg(3),
                    },
                ],
                term: Term::Ret(Some(VReg(4))),
            }],
            next_vreg: 5,
        };
        ssa::construct(&mut f);
        assert!(gvn_cse(&mut f));
        let adds = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(adds, 1, "commutative duplicate must become a copy: {f}");
        // After copy propagation + DCE the copy disappears entirely.
        copy_propagate(&mut f);
        dead_code_elim(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 2, "{f}");
    }

    #[test]
    fn gvn_cse_respects_dominance() {
        // The same expression computed in two sibling branches must NOT be
        // CSE'd (neither def dominates the other).
        let mut f = MirFunction {
            name: "sib".into(),
            params: 2,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Mul,
                        dst: VReg(2),
                        lhs: VReg(1),
                        rhs: VReg(1),
                    }],
                    term: Term::Ret(Some(VReg(2))),
                },
                Block {
                    insts: vec![Inst::Bin {
                        op: BinOp::Mul,
                        dst: VReg(3),
                        lhs: VReg(1),
                        rhs: VReg(1),
                    }],
                    term: Term::Ret(Some(VReg(3))),
                },
            ],
            next_vreg: 4,
        };
        ssa::construct(&mut f);
        assert!(!gvn_cse(&mut f), "sibling defs must not be merged: {f}");
    }

    #[test]
    fn fold_terminators_collapses_equal_targets() {
        let mut f = MirFunction {
            name: "eq".into(),
            params: 1,
            returns_value: false,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(1),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Switch {
                        val: VReg(0),
                        cases: vec![(1, BlockId(2)), (2, BlockId(2))],
                        default: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            next_vreg: 1,
        };
        assert!(fold_terminators(&mut f));
        for b in f.block_ids() {
            assert!(
                matches!(f.block(b).term, Term::Goto(_) | Term::Ret(_)),
                "all conditional terminators fold away: {f}"
            );
        }
    }

    #[test]
    fn fold_terminators_threads_empty_blocks_through_phis() {
        // bb0 -Br-> bb1 (empty, Goto bb3) / bb2 (v=2, Goto bb3); bb3 has a
        // φ. Threading bb0->bb1->bb3 must keep the φ consistent.
        let mut f = MirFunction {
            name: "thread".into(),
            params: 1,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    }],
                    term: Term::Goto(BlockId(3)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(Some(VReg(1))),
                },
            ],
            next_vreg: 2,
        };
        ssa::construct(&mut f);
        assert!(fold_terminators(&mut f));
        // The empty forwarding block is gone; the φ still has one argument
        // per incoming edge.
        let preds = cfg::predecessors(&f);
        for b in f.block_ids() {
            for inst in &f.block(b).insts {
                if let Inst::Phi { args, .. } = inst {
                    let mut expect: Vec<BlockId> = preds[b.0 as usize].clone();
                    expect.sort();
                    expect.dedup();
                    let mut got: Vec<BlockId> = args.iter().map(|(p, _)| *p).collect();
                    got.sort();
                    assert_eq!(got, expect, "{f}");
                }
            }
        }
    }

    #[test]
    fn pass_manager_reaches_fixed_point_and_records_stats() {
        let mut pm = PassManager::for_level(OptLevel::O2);
        let mut f = const_add_fn();
        assert!(pm.run_function(&mut f));
        let stats = pm.stats();
        let cf = stats.get(pass::CONST_FOLD).expect("const-fold ran");
        assert!(cf.runs > 0 && cf.changes > 0, "{stats:?}");
        let dce = stats.get(pass::DCE).expect("dce ran");
        assert!(dce.insts_removed > 0, "{stats:?}");
        // Idempotence: a second run over the optimized function reports no
        // change and keeps the structure (SSA reconstruction renumbers
        // registers, so compare shape, not names).
        let (blocks, insts) = (f.blocks.len(), f.inst_count());
        let mut pm2 = PassManager::for_level(OptLevel::O2);
        assert!(!pm2.run_function(&mut f));
        assert_eq!(
            (f.blocks.len(), f.inst_count()),
            (blocks, insts),
            "fixed point must be structurally stable: {f}"
        );
    }

    #[test]
    fn run_pipeline_records_program_passes() {
        let mut p = inline_program();
        let stats = run_pipeline(&mut p, OptLevel::O2);
        assert_eq!(stats.get(pass::INLINE).map(|s| s.changes), Some(1));
        assert_eq!(stats.get(pass::DEAD_FN_ELIM).map(|s| s.changes), Some(1));
        assert!(stats.get(pass::SIMPLIFY_CFG).is_some());
        assert!(!run_pipeline(&mut p.clone(), OptLevel::O0)
            .passes()
            .iter()
            .any(|s| s.runs > 0));
    }
}
