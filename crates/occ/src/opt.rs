//! Mid-end optimization passes and the per-level pipelines.
//!
//! The pass set mirrors the paper's description of GCC: "more than 100"
//! passes distilled to the ones that matter for the experiments — constant
//! propagation/folding with branch folding, dead-code elimination, copy
//! propagation, CFG simplification, bottom-up inlining of small functions,
//! and call-graph **dead-function elimination**. The latter is the pass the
//! paper's §III.C probes: it roots at exported and address-taken functions,
//! so an unreachable state's handlers (address-taken through dispatch
//! tables or reachable through switch cases over a runtime value) are never
//! removed — the model-level fact "no incoming transition" does not survive
//! code generation.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::mir::{BlockId, Inst, MirFunction, Program, Term, VReg, Word};
use crate::ssa;
use crate::OptLevel;

/// Runs the pipeline for `level`, logging pass effects.
pub fn run_pipeline(program: &mut Program, level: OptLevel, log: &mut Vec<String>) {
    match level {
        OptLevel::O0 => {
            log.push("O0: no mid-end passes".to_string());
        }
        OptLevel::O1 => {
            per_function(program, level, log);
        }
        OptLevel::O2 | OptLevel::Os => {
            let threshold = if level == OptLevel::Os { 10 } else { 24 };
            let inlined = inline_small_functions(program, threshold);
            log.push(format!(
                "inline: {inlined} call sites (threshold {threshold})"
            ));
            let removed = dead_function_elimination(program);
            log.push(format!(
                "dead-function-elimination: removed [{}]",
                removed.join(", ")
            ));
            per_function(program, level, log);
        }
    }
}

fn per_function(program: &mut Program, level: OptLevel, log: &mut Vec<String>) {
    for f in &mut program.functions {
        let before = f.inst_count();
        simplify_cfg(f);
        ssa::construct(f);
        let mut rounds = 0;
        loop {
            rounds += 1;
            let mut changed = constant_fold(f);
            if level >= OptLevel::O2 {
                changed |= copy_propagate(f);
            }
            changed |= dead_code_elim(f);
            if !changed || rounds >= 4 {
                break;
            }
        }
        ssa::destruct(f);
        simplify_cfg(f);
        let after = f.inst_count();
        log.push(format!(
            "{}: {} -> {} instructions ({} SSA rounds)",
            f.name, before, after, rounds
        ));
    }
}

// ---------------------------------------------------------------------
// Constant propagation + folding + branch folding (on SSA)
// ---------------------------------------------------------------------

/// Propagates and folds constants; folds constant branches. Returns `true`
/// if anything changed.
pub fn constant_fold(f: &mut MirFunction) -> bool {
    let mut known: BTreeMap<VReg, i32> = BTreeMap::new();
    let mut changed = false;
    // SSA: each def has one value; iterate to a fixpoint to flow through
    // φs and copies in any block order.
    loop {
        let mut grew = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            for inst in &f.block(b).insts {
                let Some(dst) = inst.def() else { continue };
                if known.contains_key(&dst) {
                    continue;
                }
                let value = match inst {
                    Inst::Const { value, .. } => Some(*value),
                    Inst::Copy { src, .. } => known.get(src).copied(),
                    Inst::Un { op, src, .. } => known.get(src).map(|v| op.eval(*v)),
                    Inst::Bin { op, lhs, rhs, .. } => match (known.get(lhs), known.get(rhs)) {
                        (Some(a), Some(b)) => Some(op.eval(*a, *b)),
                        _ => None,
                    },
                    Inst::Phi { args, .. } => {
                        let vals: Option<BTreeSet<i32>> =
                            args.iter().map(|(_, v)| known.get(v).copied()).collect();
                        vals.and_then(|s| {
                            if s.len() == 1 {
                                s.into_iter().next()
                            } else {
                                None
                            }
                        })
                    }
                    _ => None,
                };
                if let Some(v) = value {
                    known.insert(dst, v);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Rewrite: folded instructions become Consts; constant branches become
    // gotos.
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        for inst in &mut blk.insts {
            let Some(dst) = inst.def() else { continue };
            if let Some(v) = known.get(&dst) {
                let replace = !matches!(inst, Inst::Const { .. })
                    && inst.is_pure()
                    && !matches!(inst, Inst::Load { .. });
                if replace {
                    *inst = Inst::Const { dst, value: *v };
                    changed = true;
                }
            }
        }
        match &blk.term {
            Term::Br {
                cond,
                then_block,
                else_block,
            } => {
                if let Some(v) = known.get(cond) {
                    blk.term = Term::Goto(if *v != 0 { *then_block } else { *else_block });
                    changed = true;
                }
            }
            Term::Switch {
                val,
                cases,
                default,
            } => {
                if let Some(v) = known.get(val) {
                    let target = cases
                        .iter()
                        .find(|(c, _)| c == v)
                        .map(|(_, t)| *t)
                        .unwrap_or(*default);
                    blk.term = Term::Goto(target);
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

// ---------------------------------------------------------------------
// Copy propagation (on SSA)
// ---------------------------------------------------------------------

/// Replaces uses of copies with their (transitively resolved) sources.
pub fn copy_propagate(f: &mut MirFunction) -> bool {
    let mut alias: BTreeMap<VReg, VReg> = BTreeMap::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        for inst in &f.block(b).insts {
            if let Inst::Copy { dst, src } = inst {
                alias.insert(*dst, *src);
            }
        }
    }
    if alias.is_empty() {
        return false;
    }
    let resolve = |mut v: VReg| {
        let mut hops = 0;
        while let Some(&next) = alias.get(&v) {
            v = next;
            hops += 1;
            if hops > alias.len() {
                break; // defensive: cycles cannot occur in SSA
            }
        }
        v
    };
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        for inst in &mut blk.insts {
            inst.map_uses(&mut |v| {
                let r = resolve(v);
                if r != v {
                    changed = true;
                }
                r
            });
        }
        blk.term.map_uses(&mut |v| {
            let r = resolve(v);
            if r != v {
                changed = true;
            }
            r
        });
    }
    changed
}

// ---------------------------------------------------------------------
// Dead code elimination (on SSA)
// ---------------------------------------------------------------------

/// Removes pure instructions whose results are never used. This is the
/// per-function analogue of the paper's "dead code elimination" dump: it
/// cannot remove state-machine handler bodies because they are reached
/// through stores, calls and address-taken tables.
pub fn dead_code_elim(f: &mut MirFunction) -> bool {
    let mut changed = false;
    loop {
        let mut used: BTreeSet<VReg> = BTreeSet::new();
        for b in f.block_ids() {
            for inst in &f.block(b).insts {
                used.extend(inst.uses());
            }
            used.extend(f.block(b).term.uses());
        }
        let mut removed = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            let blk = f.block_mut(b);
            let before = blk.insts.len();
            blk.insts.retain(|inst| {
                if !inst.is_pure() {
                    return true;
                }
                match inst.def() {
                    Some(d) => used.contains(&d),
                    None => true,
                }
            });
            if blk.insts.len() != before {
                removed = true;
            }
        }
        if !removed {
            break;
        }
        changed = true;
    }
    changed
}

// ---------------------------------------------------------------------
// CFG simplification (φ-free form only)
// ---------------------------------------------------------------------

/// Removes unreachable blocks, threads empty forwarding blocks and merges
/// straight-line chains. Must run on φ-free functions.
pub fn simplify_cfg(f: &mut MirFunction) {
    loop {
        ssa::remove_unreachable_blocks(f);
        let mut changed = false;

        // Thread jumps through empty forwarding blocks.
        let mut forward: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        for b in f.block_ids() {
            if b == BlockId(0) {
                continue;
            }
            let blk = f.block(b);
            if blk.insts.is_empty() {
                if let Term::Goto(t) = blk.term {
                    if t != b {
                        forward.insert(b, t);
                    }
                }
            }
        }
        if !forward.is_empty() {
            let resolve = |mut b: BlockId| {
                let mut hops = 0;
                while let Some(&n) = forward.get(&b) {
                    b = n;
                    hops += 1;
                    if hops > forward.len() {
                        break;
                    }
                }
                b
            };
            for b in f.block_ids().collect::<Vec<_>>() {
                let mut term = f.block(b).term.clone();
                term.map_succs(&mut |s| {
                    let r = resolve(s);
                    if r != s {
                        changed = true;
                    }
                    r
                });
                f.block_mut(b).term = term;
            }
        }

        // Merge b -> c when c is b's unique successor and b its unique
        // predecessor.
        let preds = crate::cfg::predecessors(f);
        let mut merged = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            let Term::Goto(c) = f.block(b).term else {
                continue;
            };
            if c == b || preds[c.0 as usize].len() != 1 {
                continue;
            }
            let mut tail = f.block(c).insts.clone();
            let tail_term = f.block(c).term.clone();
            let blk = f.block_mut(b);
            blk.insts.append(&mut tail);
            blk.term = tail_term;
            // c becomes unreachable and is dropped next round.
            merged = true;
            changed = true;
            break;
        }
        let _ = merged;

        if !changed {
            ssa::remove_unreachable_blocks(f);
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Inlining (pre-SSA, straight-line callees)
// ---------------------------------------------------------------------

/// Inlines calls to single-block functions of at most `max_insts`
/// instructions. Returns the number of call sites inlined.
pub fn inline_small_functions(program: &mut Program, max_insts: usize) -> usize {
    // Snapshot eligible callees.
    let mut eligible: BTreeMap<usize, (usize, Vec<Inst>, Option<VReg>, u32)> = BTreeMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        if f.blocks.len() != 1 || f.blocks[0].insts.len() > max_insts {
            continue;
        }
        let Term::Ret(ret) = f.blocks[0].term.clone() else {
            continue;
        };
        // Self-recursive single-block functions are not eligible.
        let self_call = f.blocks[0]
            .insts
            .iter()
            .any(|inst| matches!(inst, Inst::Call { func, .. } if *func == i));
        if self_call {
            continue;
        }
        eligible.insert(i, (f.params, f.blocks[0].insts.clone(), ret, f.next_vreg));
    }
    if eligible.is_empty() {
        return 0;
    }
    let mut inlined = 0;
    for ci in 0..program.functions.len() {
        for bi in 0..program.functions[ci].blocks.len() {
            let mut new_insts: Vec<Inst> = Vec::new();
            let insts = program.functions[ci].blocks[bi].insts.clone();
            for inst in insts {
                let Inst::Call { dst, func, args } = &inst else {
                    new_insts.push(inst);
                    continue;
                };
                // Do not inline into the callee itself.
                let Some((params, body, ret, callee_vregs)) = eligible.get(func) else {
                    new_insts.push(inst);
                    continue;
                };
                if *func == ci {
                    new_insts.push(inst);
                    continue;
                }
                // Map callee registers into the caller's space.
                let base = program.functions[ci].next_vreg;
                program.functions[ci].next_vreg += *callee_vregs;
                let map = |v: VReg| {
                    if (v.0 as usize) < *params {
                        args[v.0 as usize]
                    } else {
                        VReg(base + v.0)
                    }
                };
                for callee_inst in body {
                    let mut copy = callee_inst.clone();
                    copy.map_uses(&mut |v| map(v));
                    // Remap the definition too.
                    match &mut copy {
                        Inst::Const { dst, .. }
                        | Inst::Copy { dst, .. }
                        | Inst::Un { dst, .. }
                        | Inst::Bin { dst, .. }
                        | Inst::Load { dst, .. }
                        | Inst::Addr { dst, .. }
                        | Inst::FnAddr { dst, .. }
                        | Inst::Phi { dst, .. } => *dst = map(*dst),
                        Inst::Call { dst, .. }
                        | Inst::CallExtern { dst, .. }
                        | Inst::CallInd { dst, .. } => {
                            if let Some(d) = dst {
                                *d = map(*d);
                            }
                        }
                        Inst::Store { .. } => {}
                    }
                    new_insts.push(copy);
                }
                if let (Some(d), Some(r)) = (dst, ret) {
                    new_insts.push(Inst::Copy {
                        dst: *d,
                        src: map(*r),
                    });
                }
                inlined += 1;
            }
            program.functions[ci].blocks[bi].insts = new_insts;
        }
    }
    inlined
}

// ---------------------------------------------------------------------
// Dead function elimination (call-graph reachability)
// ---------------------------------------------------------------------

/// Removes functions unreachable from the roots: exported functions and
/// every address-taken function (via [`Inst::FnAddr`] or function addresses
/// stored in global data). Returns removed names.
pub fn dead_function_elimination(program: &mut Program) -> Vec<String> {
    let n = program.functions.len();
    let mut live = vec![false; n];
    let mut work: Vec<usize> = Vec::new();
    for (i, f) in program.functions.iter().enumerate() {
        if f.exported {
            live[i] = true;
            work.push(i);
        }
    }
    // Address-taken through global data (const dispatch tables!): these are
    // roots because an indirect call may reach them at run time.
    for g in &program.globals {
        for w in &g.words {
            if let Word::FnAddr(i) = w {
                if !live[*i] {
                    live[*i] = true;
                    work.push(*i);
                }
            }
        }
    }
    while let Some(i) = work.pop() {
        for b in &program.functions[i].blocks {
            for inst in &b.insts {
                let callee = match inst {
                    Inst::Call { func, .. } => Some(*func),
                    Inst::FnAddr { func, .. } => Some(*func),
                    _ => None,
                };
                if let Some(c) = callee {
                    if !live[c] {
                        live[c] = true;
                        work.push(c);
                    }
                }
            }
        }
    }
    if live.iter().all(|l| *l) {
        return Vec::new();
    }
    // Remap indices.
    let mut remap = vec![usize::MAX; n];
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (i, f) in program.functions.drain(..).enumerate() {
        if live[i] {
            remap[i] = kept.len();
            kept.push(f);
        } else {
            removed.push(f.name);
        }
    }
    for f in &mut kept {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                match inst {
                    Inst::Call { func, .. } | Inst::FnAddr { func, .. } => {
                        *func = remap[*func];
                    }
                    _ => {}
                }
            }
        }
    }
    for g in &mut program.globals {
        for w in &mut g.words {
            if let Word::FnAddr(i) = w {
                *i = remap[*i];
            }
        }
    }
    program.functions = kept;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mir::{BinOp, Block, GlobalData};

    fn const_add_fn() -> MirFunction {
        MirFunction {
            name: "f".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VReg(0),
                        value: 40,
                    },
                    Inst::Const {
                        dst: VReg(1),
                        value: 2,
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(2),
                        lhs: VReg(0),
                        rhs: VReg(1),
                    },
                ],
                term: Term::Ret(Some(VReg(2))),
            }],
            next_vreg: 3,
        }
    }

    #[test]
    fn constant_folding_collapses_math() {
        let mut f = const_add_fn();
        ssa::construct(&mut f);
        assert!(constant_fold(&mut f));
        dead_code_elim(&mut f);
        ssa::destruct(&mut f);
        simplify_cfg(&mut f);
        // One Const remains, feeding the return.
        let consts: Vec<i32> = f.blocks[0]
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Const { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&42), "{f}");
        assert!(f.blocks[0].insts.len() <= 2, "{f}");
    }

    #[test]
    fn branch_folding_removes_dead_arm() {
        let mut f = MirFunction {
            name: "g".into(),
            params: 0,
            returns_value: true,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(0),
                        value: 1,
                    }],
                    term: Term::Br {
                        cond: VReg(0),
                        then_block: BlockId(1),
                        else_block: BlockId(2),
                    },
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(1),
                        value: 10,
                    }],
                    term: Term::Ret(Some(VReg(1))),
                },
                Block {
                    insts: vec![Inst::Const {
                        dst: VReg(2),
                        value: 20,
                    }],
                    term: Term::Ret(Some(VReg(2))),
                },
            ],
            next_vreg: 3,
        };
        ssa::construct(&mut f);
        constant_fold(&mut f);
        ssa::destruct(&mut f);
        simplify_cfg(&mut f);
        assert!(f.blocks.len() <= 2, "constant branch leaves one path: {f}");
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut f = MirFunction {
            name: "h".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VReg(0),
                        value: 5,
                    },
                    Inst::Addr {
                        dst: VReg(1),
                        global: 0,
                        offset: 0,
                    },
                    Inst::Store {
                        addr: VReg(1),
                        src: VReg(0),
                    },
                    Inst::Const {
                        dst: VReg(2),
                        value: 99,
                    }, // dead
                ],
                term: Term::Ret(None),
            }],
            next_vreg: 3,
        };
        assert!(dead_code_elim(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Store { .. })));
    }

    fn two_fn_program(exported_second: bool) -> Program {
        Program {
            functions: vec![
                MirFunction {
                    name: "root".into(),
                    params: 0,
                    returns_value: false,
                    exported: true,
                    blocks: vec![Block {
                        insts: vec![],
                        term: Term::Ret(None),
                    }],
                    next_vreg: 0,
                },
                MirFunction {
                    name: "orphan".into(),
                    params: 0,
                    returns_value: false,
                    exported: exported_second,
                    blocks: vec![Block {
                        insts: vec![],
                        term: Term::Ret(None),
                    }],
                    next_vreg: 0,
                },
            ],
            globals: vec![],
            externs: vec![],
        }
    }

    #[test]
    fn dead_function_elimination_drops_orphans() {
        let mut p = two_fn_program(false);
        let removed = dead_function_elimination(&mut p);
        assert_eq!(removed, vec!["orphan".to_string()]);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn address_taken_functions_survive() {
        // The paper's crucial case: a function only referenced from a const
        // table must be kept.
        let mut p = two_fn_program(false);
        p.globals.push(GlobalData {
            name: "tbl".into(),
            size: 4,
            words: vec![Word::FnAddr(1)],
            mutable: false,
        });
        let removed = dead_function_elimination(&mut p);
        assert!(removed.is_empty());
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn inline_splices_single_block_callee() {
        let mut p = Program {
            functions: vec![
                MirFunction {
                    name: "caller".into(),
                    params: 0,
                    returns_value: true,
                    exported: true,
                    blocks: vec![Block {
                        insts: vec![
                            Inst::Const {
                                dst: VReg(0),
                                value: 20,
                            },
                            Inst::Call {
                                dst: Some(VReg(1)),
                                func: 1,
                                args: vec![VReg(0)],
                            },
                        ],
                        term: Term::Ret(Some(VReg(1))),
                    }],
                    next_vreg: 2,
                },
                MirFunction {
                    name: "double".into(),
                    params: 1,
                    returns_value: true,
                    exported: false,
                    blocks: vec![Block {
                        insts: vec![Inst::Bin {
                            op: BinOp::Add,
                            dst: VReg(1),
                            lhs: VReg(0),
                            rhs: VReg(0),
                        }],
                        term: Term::Ret(Some(VReg(1))),
                    }],
                    next_vreg: 2,
                },
            ],
            globals: vec![],
            externs: vec![],
        };
        assert_eq!(inline_small_functions(&mut p, 8), 1);
        let caller = &p.functions[0];
        assert!(
            !caller.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Call { .. })),
            "{caller}"
        );
        // And the callee is now removable.
        let removed = dead_function_elimination(&mut p);
        assert_eq!(removed, vec!["double".to_string()]);
    }

    #[test]
    fn simplify_cfg_threads_and_merges() {
        let mut f = MirFunction {
            name: "s".into(),
            params: 0,
            returns_value: false,
            exported: true,
            blocks: vec![
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(1)),
                },
                Block {
                    insts: vec![],
                    term: Term::Goto(BlockId(2)),
                },
                Block {
                    insts: vec![],
                    term: Term::Ret(None),
                },
            ],
            next_vreg: 0,
        };
        simplify_cfg(&mut f);
        assert_eq!(f.blocks.len(), 1, "{f}");
    }
}
